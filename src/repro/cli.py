"""Command-line interface.

Five subcommands cover the lifecycle of a study:

* ``repro-study run`` — simulate a campaign and archive the dataset
  (``--report`` also prints the report, folded incrementally from the
  streaming merge without re-reading the archive; ``--backend``
  selects the storage layout, ``--checkpoint``/``--resume`` make the
  run durable and crash-resumable via per-shard manifests);
* ``repro-study report`` — print the paper's tables/figures from a
  dataset (or re-simulate when none is given);
* ``repro-study validate`` — integrity-check an archived dataset
  (``--manifests`` also verifies per-shard checkpoint manifests
  against the bytes on disk);
* ``repro-study reconcile`` — heal a checkpointed campaign: verify
  every shard against its manifest, quarantine and re-run anything
  missing/truncated/corrupt, re-merge the archive;
* ``repro-study export`` — dump every figure's series as CSV.

Plus ``verify`` (check paper claims against a fresh campaign) and
``bench`` (campaign throughput serial vs parallel, substrate
microbenchmarks; writes ``BENCH_campaign.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.export import export_study_figures
from repro.core.errors import DatasetError
from repro.measure.backends import BACKEND_CHOICES
from repro.measure.campaign import EXECUTOR_CHOICES
from repro.measure.records import Dataset
from repro.measure.validate import validate_dataset, verify_manifests


def _study_from_args(args) -> CellularDNSStudy:
    from repro.core.world import WorldConfig

    world = WorldConfig()
    scenario_ref = getattr(args, "scenario", None)
    if scenario_ref:
        from repro.core.faults import load_scenario

        world.scenario = load_scenario(scenario_ref)
    config = StudyConfig(
        seed=args.seed,
        device_scale=args.scale,
        duration_days=args.days,
        interval_hours=args.interval_hours,
        workers=getattr(args, "workers", 0),
        shards=getattr(args, "shards", 0),
        executor=getattr(args, "executor", "auto"),
        world=world,
    )
    return CellularDNSStudy(config)


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 158-client population")
    parser.add_argument("--days", type=float, default=60.0)
    parser.add_argument("--interval-hours", type=float, default=12.0)
    parser.add_argument(
        "--scenario", default=None, metavar="NAME|PATH",
        help="fault scenario the campaign runs under: a bundled name "
             "(baseline, resolver-outage, lossy-2g, egress-failover) or "
             "a JSON scenario file; omitted/baseline is fault-free",
    )


def _cmd_run(args) -> int:
    study = _study_from_args(args)
    if getattr(args, "executor", "auto") == "auto":
        # Surface why auto picked what it picked (and the measured
        # bootstrap/simulate estimates it weighed).
        print(study.executor_decision.describe(), file=sys.stderr)
    print(f"Simulating {len(study.campaign.devices)} devices for "
          f"{args.days:.0f} days...", file=sys.stderr)
    backend = args.backend
    checkpointed = args.checkpoint or args.resume or args.checkpoint_dir
    sink = None
    if args.report:
        # Pipelined campaign→report: the analysis accumulator rides the
        # streaming merge, folding each record as its line is written.
        # The report renders from the accumulated projections with zero
        # re-read of the output file; the archived bytes (and content
        # hash) are identical to the plain run.
        from repro.analysis.engine import ProjectionAccumulator

        sink = ProjectionAccumulator()
    if checkpointed:
        # Durable mode: per-shard commits with manifest sidecars, so a
        # crash loses at most one uncommitted shard and --resume
        # finishes the run byte-identically.
        from repro.measure.checkpoint import (
            CampaignInterrupted, run_checkpointed,
        )

        try:
            result = run_checkpointed(
                study.campaign,
                args.output,
                backend=backend or "jsonl",
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                sink=sink,
            )
        except CampaignInterrupted as exc:
            print(f"INTERRUPTED: {exc} — re-run with --resume to finish",
                  file=sys.stderr)
            return 1
        except DatasetError as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 1
        if result["resumed_shards"]:
            print(
                f"Resumed {result['resumed_shards']} committed shards, "
                f"executed {result['executed_shards']} of "
                f"{result['total_shards']}",
                file=sys.stderr,
            )
    elif args.report or backend:
        result = study.campaign.run_streaming(
            args.output, sink=sink, backend=backend
        )
    else:
        dataset = study.dataset
        written = dataset.save(args.output)
        print(f"Wrote {written} experiments to {args.output}")
        return 0
    if sink is not None:
        from repro.analysis.engine import StreamedDataset

        study.use_dataset(
            StreamedDataset(
                sink.finalize(),
                result["content_hash"],
                result["experiments"],
                metadata=result["metadata"],
            )
        )
        print(study.regenerate_report().text)
    print(f"Wrote {result['experiments']} experiments to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.result_cache import AnalysisResultCache

    study = _study_from_args(args)
    if args.dataset:
        study.use_dataset(Dataset.load(args.dataset))
    cache = (
        AnalysisResultCache(args.analysis_cache)
        if args.analysis_cache
        else None
    )
    result = study.regenerate_report(cache=cache)
    print(result.text)
    if result.cached:
        print(
            f"(replayed from {args.analysis_cache}: dataset "
            f"{result.dataset_hash[:12]} unchanged)",
            file=sys.stderr,
        )
    return 0


def _cmd_validate(args) -> int:
    import os

    dataset = Dataset.load(args.dataset)
    report = validate_dataset(dataset)
    print(report.summary())
    for finding in report.findings[: args.max_findings]:
        print(f"  {finding}")
    if len(report.findings) > args.max_findings:
        print(f"  ... and {len(report.findings) - args.max_findings} more")
    manifests_ok = True
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.manifests:
        from repro.measure.checkpoint import default_checkpoint_dir

        checkpoint_dir = default_checkpoint_dir(args.dataset)
    if checkpoint_dir is None:
        # Auto-detect: a sibling .shards directory means the archive was
        # written by a checkpointed run — verify it without being asked.
        from repro.measure.checkpoint import default_checkpoint_dir

        candidate = default_checkpoint_dir(args.dataset)
        if os.path.isdir(candidate):
            checkpoint_dir = candidate
    if checkpoint_dir is not None:
        verification = verify_manifests(args.dataset, checkpoint_dir)
        print(f"checkpoint manifests ({verification.checkpoint_dir}):")
        print(verification.table())
        manifests_ok = verification.ok
    return 0 if report.ok and manifests_ok else 1


def _cmd_reconcile(args) -> int:
    from repro.measure.checkpoint import reconcile

    study = _study_from_args(args)
    report = reconcile(
        study.campaign,
        args.output,
        backend=args.backend or "jsonl",
        checkpoint_dir=args.checkpoint_dir,
    )
    print(report.table())
    print(report.summary())
    return 0


def _cmd_verify(args) -> int:
    from repro.analysis.claims import render_verification, verify_claims

    study = _study_from_args(args)
    results = verify_claims(study)
    print(render_verification(results))
    return 0 if all(result.passed for result in results) else 1


def _cmd_bench(args) -> int:
    from repro.measure.bench import (
        BENCH_OUTPUT, BenchScale, bench_analysis, format_report,
        run_benchmarks, smoke_scale,
    )

    if args.analysis:
        # Analysis fast path only (make bench-analysis): quick enough
        # for CI, with the byte-identity check as the pass/fail signal.
        scale = smoke_scale(seed=args.seed, workers=args.workers)
        analysis = bench_analysis(scale)
        fused_s = analysis["tables_s"] + analysis["figures_s"]
        reference_s = (
            analysis["reference_tables_s"] + analysis["reference_figures_s"]
        )
        print(f"analysis: regen {fused_s:.3f}s vs reference "
              f"{reference_s:.3f}s ({analysis['regeneration_speedup']}x, "
              f"{analysis['us_per_record']}us/record)")
        print(f"scan {analysis['engine_scan_s']}s | "
              f"ingest {analysis['load_s']}s vs "
              f"{analysis['load_reference_s']}s "
              f"({analysis['load_speedup']}x) | "
              f"cache hit {analysis['cache_hit_s']}s | "
              f"byte identical: {analysis['byte_identical']}")
        if args.output:
            import json as _json

            with open(args.output, "w", encoding="utf-8") as handle:
                _json.dump({"analysis": analysis}, handle, indent=2)
                handle.write("\n")
            print(f"Wrote {args.output}")
        if not analysis["byte_identical"]:
            print("FAIL: fused analysis output diverged from the "
                  "reference walks", file=sys.stderr)
            return 1
        return 0

    if args.smoke:
        scale = smoke_scale(seed=args.seed, workers=args.workers)
        output = args.output  # None skips writing: smoke must not
        # overwrite the tracked full-scale report.
    else:
        scale = BenchScale(
            seed=args.seed,
            device_scale=args.scale,
            duration_days=args.days,
            interval_hours=args.interval_hours,
            workers=args.workers,
        )
        output = BENCH_OUTPUT if args.output is None else args.output
    report = run_benchmarks(scale, output_path=output)
    print(format_report(report))
    if output:
        print(f"Wrote {output}")
    if not report["campaign"]["hash_match"]:
        print("FAIL: parallel dataset hash diverged from serial",
              file=sys.stderr)
        return 1
    return 0


def _cmd_export(args) -> int:
    study = _study_from_args(args)
    if args.dataset:
        study.use_dataset(Dataset.load(args.dataset))
    paths = export_study_figures(study, args.output_dir)
    print(f"Exported {len(paths)} CSV files to {args.output_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduction of 'Behind the Curtain' (IMC 2014)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate a campaign to JSONL")
    _add_scale_arguments(run)
    run.add_argument("--output", "-o", default="campaign.jsonl")
    run.add_argument(
        "--workers", type=int, default=0,
        help="worker pool size when a multiprocess path runs (0 = auto)",
    )
    run.add_argument(
        "--shards", type=int, default=0,
        help="sub-carrier shard tasks for the sharded executor "
             "(0 = one task per device range; output identical at any "
             "value)",
    )
    run.add_argument(
        "--executor", choices=list(EXECUTOR_CHOICES), default="auto",
        help="execution strategy; auto never goes multiprocess on one "
             "core (output identical either way)",
    )
    run.add_argument(
        "--report", action="store_true",
        help="also print the full report, computed incrementally from "
             "the streaming merge (each record folded as it is written; "
             "the output file is never re-read); archived bytes are "
             "identical to a plain run",
    )
    run.add_argument(
        "--backend", choices=list(BACKEND_CHOICES), default=None,
        help="dataset storage backend; default infers from the output "
             "extension with JSONL (the byte reference) as fallback — "
             "the content hash is identical under every backend",
    )
    run.add_argument(
        "--checkpoint", action="store_true",
        help="run durably: commit each shard with a fsync'd manifest "
             "sidecar under <output>.shards/, so a crash loses at most "
             "the uncommitted shards and --resume finishes the run",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume a checkpointed run: replay committed shards from "
             "their manifests, execute only the missing ones; the "
             "finished archive is byte-identical to an uninterrupted run",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint directory (default: <output>.shards)",
    )
    run.set_defaults(handler=_cmd_run)

    report = commands.add_parser("report", help="print the paper's artifacts")
    _add_scale_arguments(report)
    report.add_argument("--dataset", help="analyse an archived dataset instead")
    report.add_argument(
        "--analysis-cache", default=None, metavar="PATH",
        help="file-backed result cache keyed by dataset content hash; "
             "re-running over an unchanged dataset replays the rendered "
             "report instead of recomputing it",
    )
    report.set_defaults(handler=_cmd_report)

    validate = commands.add_parser("validate", help="integrity-check a dataset")
    validate.add_argument("dataset")
    validate.add_argument("--max-findings", type=int, default=20)
    validate.add_argument(
        "--manifests", action="store_true",
        help="also verify per-shard checkpoint manifests against the "
             "shard bytes and the archive (auto-detected when a "
             "<dataset>.shards directory exists)",
    )
    validate.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint directory to verify (default: <dataset>.shards)",
    )
    validate.set_defaults(handler=_cmd_validate)

    reconcile = commands.add_parser(
        "reconcile",
        help="heal a checkpointed campaign: verify every shard against "
             "its manifest, quarantine + re-run anything missing or "
             "corrupt (evidence is never deleted), re-merge the archive",
    )
    _add_scale_arguments(reconcile)
    reconcile.add_argument("--output", "-o", default="campaign.jsonl",
                           help="the checkpointed campaign's archive path")
    reconcile.add_argument(
        "--workers", type=int, default=0,
        help="worker pool size for re-running shards (0 = auto)",
    )
    reconcile.add_argument(
        "--shards", type=int, default=0,
        help="shard plan of the original run (must match its manifest)",
    )
    reconcile.add_argument(
        "--executor", choices=list(EXECUTOR_CHOICES), default="auto",
    )
    reconcile.add_argument(
        "--backend", choices=list(BACKEND_CHOICES), default=None,
        help="storage backend of the checkpointed run (default jsonl)",
    )
    reconcile.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint directory (default: <output>.shards)",
    )
    reconcile.set_defaults(handler=_cmd_reconcile)

    export = commands.add_parser("export", help="export figure series as CSV")
    _add_scale_arguments(export)
    export.add_argument("--dataset", help="analyse an archived dataset instead")
    export.add_argument("--output-dir", "-o", default="figures")
    export.set_defaults(handler=_cmd_export)

    verify = commands.add_parser(
        "verify", help="check every paper claim against a fresh campaign"
    )
    _add_scale_arguments(verify)
    verify.set_defaults(handler=_cmd_verify)

    bench = commands.add_parser(
        "bench", help="measure campaign throughput and substrate primitives"
    )
    bench.add_argument("--seed", type=int, default=2014)
    bench.add_argument("--scale", type=float, default=0.5)
    bench.add_argument("--days", type=float, default=7.0)
    bench.add_argument("--interval-hours", type=float, default=12.0)
    bench.add_argument(
        "--workers", type=int, default=0,
        help="parallel shard workers (0 = min(carriers, cpus))",
    )
    bench.add_argument(
        "--analysis", action="store_true",
        help="run only the analysis fast-path benchmark (ingest, fused "
             "scan, regeneration vs reference, result cache); fails if "
             "the fused output is not byte-identical to the reference",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="~30s determinism smoke: tiny campaign, asserts the serial "
             "and parallel dataset hashes match; skips writing the report "
             "unless --output is given",
    )
    bench.add_argument(
        "--output", "-o", default=None,
        help="benchmark report path (empty string skips writing; "
             "default BENCH_campaign.json, or none under --smoke)",
    )
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
