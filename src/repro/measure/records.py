"""Measurement records and the campaign dataset.

Everything the analysis consumes is recorded here, from the *client's*
point of view: a device knows what it resolved, what came back, how long
probes took and what its configured resolver was — but not, say, which
cache served it.  Ground truth stays inside the simulation, exactly as it
stayed inside the carriers during the original study.

Records serialise to JSON lines so campaign output can be archived and
re-analysed without re-simulation (the paper released its dataset; so do
we).

Serialisation is the archive hot path, so every record class is slotted
and the whole experiment block is serialised in **one pass**: per-class
payload builders assemble plain dicts in declaration order (pruning the
wire-optional fields) and a single reusable C-accelerated
:class:`json.JSONEncoder` emits the entire line at once — no recursive
:func:`dataclasses.asdict` deep copy, no per-fragment string stitching.
The old path survives as
:meth:`ExperimentRecord.to_json_line_reference` — the executable
specification the batch emitter is property-tested against, byte for
byte.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import re
import sys
from array import array
from dataclasses import asdict, dataclass, field
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.core.errors import DatasetError, TruncatedDatasetError

#: Resolver kinds a client resolves through.
RESOLVER_LOCAL = "local"
RESOLVER_GOOGLE = "google"
RESOLVER_OPENDNS = "opendns"
RESOLVER_KINDS = (RESOLVER_LOCAL, RESOLVER_GOOGLE, RESOLVER_OPENDNS)

#: Delivery outcomes (mirrors repro.core.transport — records must not
#: import the simulation layer, so the strings are restated here).
OUTCOME_DELIVERED = "delivered"
OUTCOME_FILTERED = "filtered"
OUTCOME_TIMED_OUT = "timed_out"
OUTCOME_LOST = "lost"

# ``outcome`` and ``retries`` are recorded only when a fault scenario
# produced them (outcome is None / retries is 0 otherwise), and the
# emitters skip default values entirely — so fault-free campaigns write
# byte-identical lines to the pre-transport engine, and old archives
# load unchanged.


# -- batched JSON emission -----------------------------------------------------
#
# ``json.dumps(asdict(record), separators=(",", ":"))`` spends most of its
# time deep-copying the record into dicts, and stitching per-record
# fragments in Python spends its time in string concatenation.  The
# builders below assemble *shallow* payload dicts (sharing the record's
# own lists — the encoders only read them) in dataclass declaration
# order, and the whole experiment block is serialised in a single
# C-level pass.
#
# Two encoders can make that pass.  The stdlib encoder (compact
# separators, default ``ensure_ascii``/``allow_nan``) is byte-identical
# to ``json.dumps(payload, separators=(",", ":"))`` — the reference — by
# construction.  When ``orjson`` is available it is ~10x faster and
# produces the *same bytes* on the canonical campaign shape, which is
# guarded three ways rather than assumed:
#
# * floats: orjson and CPython both emit the shortest round-trip
#   decimal, and their renderings agree exactly while the value is
#   finite and repr stays out of scientific notation — i.e. zero or
#   magnitude in ``[1e-4, 1e16)``.  The payload builders flag any float
#   outside that window (including NaN/Infinity, which the stdlib spells
#   out but orjson would null) and the line falls back to the stdlib
#   encoder.
# * strings: output containing any non-ASCII byte (stdlib would
#   ``\uXXXX``-escape it) or a DEL byte (``0x7f``, the one ASCII char
#   the two escape differently) is discarded in favour of the stdlib
#   encoder.  Both are single C scans of the encoded bytes.
# * anything orjson refuses outright (ints beyond 64 bits, lone
#   surrogates) raises and falls back.
#
# Every line is therefore byte-identical to the reference whether or not
# orjson is installed; the property tests drive both paths.

#: One reusable compact stdlib encoder; the single-pass C fallback.
_ENCODE = json.JSONEncoder(check_circular=False, separators=(",", ":")).encode

try:  # pragma: no cover - availability depends on the host image
    from orjson import dumps as _orjson_dumps
except Exception:  # pragma: no cover - stdlib-only fallback
    _orjson_dumps = None


def _resolution_payload(record: "ResolutionRecord", bad_floats: list) -> dict:
    value = record.resolution_ms
    if type(value) is float and not (
        1e-4 <= value < 1e16 or -1e16 < value <= -1e-4 or value == 0.0
    ):
        bad_floats.append(value)
    item = {
        "domain": record.domain,
        "resolver_kind": record.resolver_kind,
        "resolution_ms": value,
        "addresses": record.addresses,
        "cname_chain": record.cname_chain,
        "attempt": record.attempt,
        "rcode": record.rcode,
    }
    # Wire-optional tail fields (see the pruning note above): present
    # only when a fault scenario produced them.
    if record.outcome is not None:
        item["outcome"] = record.outcome
    if record.retries:
        item["retries"] = record.retries
    return item


def _ping_payload(record: "PingRecord", bad_floats: list) -> dict:
    value = record.rtt_ms
    if type(value) is float and not (
        1e-4 <= value < 1e16 or -1e16 < value <= -1e-4 or value == 0.0
    ):
        bad_floats.append(value)
    item = {
        "target_ip": record.target_ip,
        "target_kind": record.target_kind,
        "rtt_ms": value,
    }
    if record.outcome is not None:
        item["outcome"] = record.outcome
    if record.retries:
        item["retries"] = record.retries
    return item


def _traceroute_payload(record: "TracerouteRecord", bad_floats: list) -> dict:
    for hop in record.hops:
        for value in hop:
            if type(value) is float and not (
                1e-4 <= value < 1e16 or -1e16 < value <= -1e-4 or value == 0.0
            ):
                bad_floats.append(value)
    item = {
        "target_ip": record.target_ip,
        "target_kind": record.target_kind,
        "hops": record.hops,
        "reached": record.reached,
    }
    if record.outcome is not None:
        item["outcome"] = record.outcome
    return item


def _http_payload(record: "HttpRecord", bad_floats: list) -> dict:
    value = record.ttfb_ms
    if type(value) is float and not (
        1e-4 <= value < 1e16 or -1e16 < value <= -1e-4 or value == 0.0
    ):
        bad_floats.append(value)
    item = {
        "replica_ip": record.replica_ip,
        "domain": record.domain,
        "resolver_kind": record.resolver_kind,
        "ttfb_ms": value,
    }
    if record.outcome is not None:
        item["outcome"] = record.outcome
    if record.retries:
        item["retries"] = record.retries
    return item


def _resolver_id_payload(record: "ResolverIdRecord", bad_floats: list) -> dict:
    value = record.resolution_ms
    if type(value) is float and not (
        1e-4 <= value < 1e16 or -1e16 < value <= -1e-4 or value == 0.0
    ):
        bad_floats.append(value)
    return {
        "resolver_kind": record.resolver_kind,
        "configured_ip": record.configured_ip,
        "observed_external_ip": record.observed_external_ip,
        "resolution_ms": value,
    }


@dataclass(slots=True)
class ResolutionRecord:
    """One DNS resolution as observed by the device."""

    domain: str
    resolver_kind: str
    resolution_ms: float
    addresses: List[str] = field(default_factory=list)
    cname_chain: List[str] = field(default_factory=list)
    #: Which attempt in a back-to-back pair (1 or 2); Fig 7's cache probe.
    attempt: int = 1
    rcode: str = "NOERROR"
    #: Fault-induced delivery outcome; None on fault-free campaigns.
    outcome: Optional[str] = None
    #: Retransmissions the client performed before this answer/failure.
    retries: int = 0

    @property
    def delivery_outcome(self) -> str:
        """The transport outcome, inferred for legacy records.

        Records written before the transport layer (or on fault-free
        runs) carry no explicit outcome; the client-visible evidence
        stands in: an UNREACHABLE rcode meant the query never came back
        (lost), TIMEOUT meant silence until the timer fired.
        """
        if self.outcome is not None:
            return self.outcome
        if self.rcode == "UNREACHABLE":
            return OUTCOME_LOST
        if self.rcode == "TIMEOUT":
            return OUTCOME_TIMED_OUT
        return OUTCOME_DELIVERED


@dataclass(slots=True)
class PingRecord:
    """One ping probe (rtt_ms is None when nothing answered)."""

    target_ip: str
    target_kind: str
    rtt_ms: Optional[float] = None
    #: Fault-induced delivery outcome; None on fault-free campaigns.
    outcome: Optional[str] = None
    #: Retransmissions the client performed before this answer/failure.
    retries: int = 0

    @property
    def responded(self) -> bool:
        """Whether the target answered."""
        return self.rtt_ms is not None

    @property
    def delivery_outcome(self) -> str:
        """The transport outcome, inferred for legacy records.

        Without an explicit outcome, silence is all the client saw — a
        legacy unanswered ping reads as timed out (firewalled targets
        and genuinely silent hosts are indistinguishable on the wire).
        """
        if self.outcome is not None:
            return self.outcome
        if self.rtt_ms is not None:
            return OUTCOME_DELIVERED
        return OUTCOME_TIMED_OUT


@dataclass(slots=True)
class TracerouteRecord:
    """One traceroute, flattened to (ttl, ip, rtt) triples."""

    target_ip: str
    target_kind: str
    hops: List[List[object]] = field(default_factory=list)
    reached: bool = False
    #: Fault-induced delivery outcome; None on fault-free campaigns.
    outcome: Optional[str] = None

    def hop_ips(self) -> List[str]:
        """Responding hop addresses in path order."""
        return [hop[1] for hop in self.hops if hop[1] is not None]

    @property
    def delivery_outcome(self) -> str:
        """The transport outcome, inferred for legacy records."""
        if self.outcome is not None:
            return self.outcome
        if self.reached:
            return OUTCOME_DELIVERED
        return OUTCOME_TIMED_OUT


@dataclass(slots=True)
class HttpRecord:
    """One HTTP GET to a replica address (time-to-first-byte)."""

    replica_ip: str
    domain: str
    resolver_kind: str
    ttfb_ms: Optional[float] = None
    #: Fault-induced delivery outcome; None on fault-free campaigns.
    outcome: Optional[str] = None
    #: Retransmissions the client performed before this answer/failure.
    retries: int = 0

    @property
    def succeeded(self) -> bool:
        """Whether the GET completed."""
        return self.ttfb_ms is not None

    @property
    def delivery_outcome(self) -> str:
        """The transport outcome, inferred for legacy records."""
        if self.outcome is not None:
            return self.outcome
        if self.ttfb_ms is not None:
            return OUTCOME_DELIVERED
        return OUTCOME_TIMED_OUT


@dataclass(slots=True)
class ResolverIdRecord:
    """Result of the Mao et al. resolver-identification probe."""

    resolver_kind: str
    configured_ip: str
    observed_external_ip: Optional[str] = None
    resolution_ms: Optional[float] = None


@dataclass(slots=True)
class ExperimentRecord:
    """One complete experiment run (Sec 3.2's script, once)."""

    device_id: str
    carrier: str
    country: str
    sequence: int
    started_at: float
    latitude: float
    longitude: float
    technology: str
    generation: str
    client_ip: str = ""
    resolutions: List[ResolutionRecord] = field(default_factory=list)
    pings: List[PingRecord] = field(default_factory=list)
    traceroutes: List[TracerouteRecord] = field(default_factory=list)
    http_gets: List[HttpRecord] = field(default_factory=list)
    resolver_ids: List[ResolverIdRecord] = field(default_factory=list)

    def resolutions_via(self, resolver_kind: str) -> List[ResolutionRecord]:
        """Resolutions through one resolver kind."""
        return [
            record
            for record in self.resolutions
            if record.resolver_kind == resolver_kind
        ]

    def resolver_id(self, resolver_kind: str) -> Optional[ResolverIdRecord]:
        """The identification record for one resolver kind, if present."""
        for record in self.resolver_ids:
            if record.resolver_kind == resolver_kind:
                return record
        return None

    def to_json_line(self) -> str:
        """One-line JSON form via the batched single-pass emitter.

        The payload builders produce exactly the dict
        :meth:`to_json_line_reference` dumps (declaration order, wire-
        optional fields pruned), and one C-level pass serialises the
        whole experiment block — orjson when its bytes are provably the
        stdlib's (see the emitter notes above), the stdlib encoder
        otherwise.  Byte-identical to the reference either way; the
        property tests in ``tests/measure/test_records.py`` hold the
        paths together across randomised records.
        """
        bad_floats: list = []
        for value in (self.started_at, self.latitude, self.longitude):
            if type(value) is float and not (
                1e-4 <= value < 1e16
                or -1e16 < value <= -1e-4
                or value == 0.0
            ):
                bad_floats.append(value)
        payload = {
            "device_id": self.device_id,
            "carrier": self.carrier,
            "country": self.country,
            "sequence": self.sequence,
            "started_at": self.started_at,
            "latitude": self.latitude,
            "longitude": self.longitude,
            "technology": self.technology,
            "generation": self.generation,
            "client_ip": self.client_ip,
            "resolutions": [
                _resolution_payload(r, bad_floats) for r in self.resolutions
            ],
            "pings": [_ping_payload(r, bad_floats) for r in self.pings],
            "traceroutes": [
                _traceroute_payload(r, bad_floats) for r in self.traceroutes
            ],
            "http_gets": [
                _http_payload(r, bad_floats) for r in self.http_gets
            ],
            "resolver_ids": [
                _resolver_id_payload(r, bad_floats) for r in self.resolver_ids
            ],
        }
        if _orjson_dumps is not None and not bad_floats:
            try:
                encoded = _orjson_dumps(payload)
            except Exception:
                encoded = None
            if (
                encoded is not None
                and encoded.isascii()
                and b"\x7f" not in encoded
            ):
                return encoded.decode("ascii")
        return _ENCODE(payload)

    def to_json_line_reference(self) -> str:
        """The original ``asdict``-based serialisation (the oracle).

        ``outcome``/``retries`` are wire-optional — present only when a
        fault scenario set them — so the oracle prunes their default
        values before dumping, matching the conditional emitters.
        """
        payload = asdict(self)
        for item in payload["resolutions"]:
            if item["outcome"] is None:
                del item["outcome"]
            if not item["retries"]:
                del item["retries"]
        for item in payload["pings"]:
            if item["outcome"] is None:
                del item["outcome"]
            if not item["retries"]:
                del item["retries"]
        for item in payload["traceroutes"]:
            if item["outcome"] is None:
                del item["outcome"]
        for item in payload["http_gets"]:
            if item["outcome"] is None:
                del item["outcome"]
            if not item["retries"]:
                del item["retries"]
        return json.dumps(payload, separators=(",", ":"))

    def to_json(self) -> str:
        """One-line JSON form."""
        return self.to_json_line()

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRecord":
        """Parse a line written by :meth:`to_json`.

        High-cardinality-but-repetitive strings (carrier, resolver kind,
        domain, technology) are interned so a loaded dataset shares one
        object per distinct value — grouping dict lookups in the
        analysis layer then hit pointer-equality fast paths.
        """
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"bad dataset line: {exc}") from exc
        intern = sys.intern
        try:
            return cls(
                device_id=intern(payload["device_id"]),
                carrier=intern(payload["carrier"]),
                country=intern(payload["country"]),
                sequence=payload["sequence"],
                started_at=payload["started_at"],
                latitude=payload["latitude"],
                longitude=payload["longitude"],
                technology=intern(payload["technology"]),
                generation=intern(payload["generation"]),
                client_ip=payload.get("client_ip", ""),
                resolutions=[
                    ResolutionRecord(**item) for item in payload.get("resolutions", [])
                ],
                pings=[PingRecord(**item) for item in payload.get("pings", [])],
                traceroutes=[
                    TracerouteRecord(**item)
                    for item in payload.get("traceroutes", [])
                ],
                http_gets=[
                    HttpRecord(**item) for item in payload.get("http_gets", [])
                ],
                resolver_ids=[
                    ResolverIdRecord(**item)
                    for item in payload.get("resolver_ids", [])
                ],
            )
        except (KeyError, TypeError) as exc:
            raise DatasetError(f"malformed experiment record: {exc}") from exc


# -- fast JSONL ingest ---------------------------------------------------------
#
# :meth:`ExperimentRecord.from_json` builds every sub-record through the
# dataclass constructor with ``**kwargs`` — flexible, but the kwargs
# dispatch and default processing dominate load time.  The decoders below
# mirror the fast emitters above: they recognise the *canonical* shape
# every line written by :meth:`ExperimentRecord.to_json_line` has (all
# fields present, nothing extra), allocate via ``__new__`` and assign
# slots directly.  Any line that deviates from the canonical shape —
# missing fields, extra fields, hand-edited archives — falls back to
# :meth:`ExperimentRecord.from_json`, so error behaviour and defaulting
# are byte-for-byte those of the reference path.

_new = object.__new__


def _decode_resolution(item: dict) -> ResolutionRecord:
    if len(item) != 7:
        raise KeyError("non-canonical resolution")
    record: ResolutionRecord = _new(ResolutionRecord)
    record.domain = sys.intern(item["domain"])
    record.resolver_kind = sys.intern(item["resolver_kind"])
    record.resolution_ms = item["resolution_ms"]
    record.addresses = item["addresses"]
    record.cname_chain = item["cname_chain"]
    record.attempt = item["attempt"]
    record.rcode = sys.intern(item["rcode"])
    record.outcome = None
    record.retries = 0
    return record


def _decode_ping(item: dict) -> PingRecord:
    if len(item) != 3:
        raise KeyError("non-canonical ping")
    record: PingRecord = _new(PingRecord)
    record.target_ip = item["target_ip"]
    record.target_kind = sys.intern(item["target_kind"])
    record.rtt_ms = item["rtt_ms"]
    record.outcome = None
    record.retries = 0
    return record


def _decode_traceroute(item: dict) -> TracerouteRecord:
    if len(item) != 4:
        raise KeyError("non-canonical traceroute")
    record: TracerouteRecord = _new(TracerouteRecord)
    record.target_ip = item["target_ip"]
    record.target_kind = sys.intern(item["target_kind"])
    record.hops = item["hops"]
    record.reached = item["reached"]
    record.outcome = None
    return record


def _decode_http(item: dict) -> HttpRecord:
    if len(item) != 4:
        raise KeyError("non-canonical http get")
    record: HttpRecord = _new(HttpRecord)
    record.replica_ip = item["replica_ip"]
    record.domain = sys.intern(item["domain"])
    record.resolver_kind = sys.intern(item["resolver_kind"])
    record.ttfb_ms = item["ttfb_ms"]
    record.outcome = None
    record.retries = 0
    return record


def _decode_resolver_id(item: dict) -> ResolverIdRecord:
    if len(item) != 4:
        raise KeyError("non-canonical resolver id")
    record: ResolverIdRecord = _new(ResolverIdRecord)
    record.resolver_kind = sys.intern(item["resolver_kind"])
    record.configured_ip = item["configured_ip"]
    record.observed_external_ip = item["observed_external_ip"]
    record.resolution_ms = item["resolution_ms"]
    return record


def _decode_experiment(payload: dict) -> Optional[ExperimentRecord]:
    """A canonical-shape experiment, or None when the shape deviates."""
    try:
        if len(payload) != 15:
            return None
        record: ExperimentRecord = _new(ExperimentRecord)
        record.device_id = sys.intern(payload["device_id"])
        record.carrier = sys.intern(payload["carrier"])
        record.country = sys.intern(payload["country"])
        record.sequence = payload["sequence"]
        record.started_at = payload["started_at"]
        record.latitude = payload["latitude"]
        record.longitude = payload["longitude"]
        record.technology = sys.intern(payload["technology"])
        record.generation = sys.intern(payload["generation"])
        record.client_ip = payload["client_ip"]
        record.resolutions = [
            _decode_resolution(item) for item in payload["resolutions"]
        ]
        record.pings = [_decode_ping(item) for item in payload["pings"]]
        record.traceroutes = [
            _decode_traceroute(item) for item in payload["traceroutes"]
        ]
        record.http_gets = [_decode_http(item) for item in payload["http_gets"]]
        record.resolver_ids = [
            _decode_resolver_id(item) for item in payload["resolver_ids"]
        ]
        return record
    except (KeyError, TypeError, AttributeError):
        return None


@dataclass(slots=True)
class DatasetColumns:
    """Flat columnar projections of a dataset (read-only, shared).

    Each nested record list is flattened into parallel columns with an
    ``*_exp`` column giving the owning experiment's index, so analyses
    can scan plain arrays instead of chasing per-record object graphs.
    Built by :meth:`Dataset.columns` via ``array``/list comprehensions
    and property-tested equal to the record walk in
    ``tests/measure/test_records.py``.
    """

    # Per-experiment columns (length == len(dataset)).
    carrier: List[str]
    device_id: List[str]
    country: List[str]
    started_at: array
    latitude: array
    longitude: array
    technology: List[str]
    # Flattened resolutions.
    res_exp: array
    res_domain: List[str]
    res_kind: List[str]
    res_ms: array
    res_attempt: array
    res_addresses: List[List[str]]
    # Flattened pings.
    ping_exp: array
    ping_kind: List[str]
    ping_rtt: List[Optional[float]]
    # Flattened HTTP gets.
    http_exp: array
    http_replica: List[str]
    http_domain: List[str]
    http_kind: List[str]
    http_ttfb: List[Optional[float]]
    # Flattened resolver identifications (raw, in record order).
    rid_exp: array
    rid_kind: List[str]
    rid_configured: List[str]
    rid_external: List[Optional[str]]
    # Flattened traceroutes.
    trace_exp: array
    trace_kind: List[str]
    trace_hops: List[List[List[object]]]

    @classmethod
    def from_experiments(
        cls, experiments: List[ExperimentRecord]
    ) -> "DatasetColumns":
        """Project a record list into flat columns."""
        return cls(
            carrier=[r.carrier for r in experiments],
            device_id=[r.device_id for r in experiments],
            country=[r.country for r in experiments],
            started_at=array("d", (r.started_at for r in experiments)),
            latitude=array("d", (r.latitude for r in experiments)),
            longitude=array("d", (r.longitude for r in experiments)),
            technology=[r.technology for r in experiments],
            res_exp=array(
                "l",
                (i for i, r in enumerate(experiments) for _ in r.resolutions),
            ),
            res_domain=[s.domain for r in experiments for s in r.resolutions],
            res_kind=[
                s.resolver_kind for r in experiments for s in r.resolutions
            ],
            res_ms=array(
                "d",
                (s.resolution_ms for r in experiments for s in r.resolutions),
            ),
            res_attempt=array(
                "l", (s.attempt for r in experiments for s in r.resolutions)
            ),
            res_addresses=[
                s.addresses for r in experiments for s in r.resolutions
            ],
            ping_exp=array(
                "l", (i for i, r in enumerate(experiments) for _ in r.pings)
            ),
            ping_kind=[p.target_kind for r in experiments for p in r.pings],
            ping_rtt=[p.rtt_ms for r in experiments for p in r.pings],
            http_exp=array(
                "l",
                (i for i, r in enumerate(experiments) for _ in r.http_gets),
            ),
            http_replica=[h.replica_ip for r in experiments for h in r.http_gets],
            http_domain=[h.domain for r in experiments for h in r.http_gets],
            http_kind=[
                h.resolver_kind for r in experiments for h in r.http_gets
            ],
            http_ttfb=[h.ttfb_ms for r in experiments for h in r.http_gets],
            rid_exp=array(
                "l",
                (i for i, r in enumerate(experiments) for _ in r.resolver_ids),
            ),
            rid_kind=[
                s.resolver_kind for r in experiments for s in r.resolver_ids
            ],
            rid_configured=[
                s.configured_ip for r in experiments for s in r.resolver_ids
            ],
            rid_external=[
                s.observed_external_ip
                for r in experiments
                for s in r.resolver_ids
            ],
            trace_exp=array(
                "l",
                (i for i, r in enumerate(experiments) for _ in r.traceroutes),
            ),
            trace_kind=[
                t.target_kind for r in experiments for t in r.traceroutes
            ],
            trace_hops=[t.hops for r in experiments for t in r.traceroutes],
        )


#: Sort key for :meth:`Dataset.by_device` groups (no per-call lambda).
_STARTED_AT = attrgetter("started_at")


# -- probe-event ordering ------------------------------------------------------
#
# Campaign executors order records by the global probe-event key
# ``(started_at, carrier, device_index, sequence)`` (see
# repro.measure.scheduler.ProbeEventQueue).  The helpers below derive
# that key from a record object or from its canonical JSON line, so
# shard outputs — in-memory record lists or spilled JSONL files — can
# be k-way merged back into exactly the serial stream.


def _device_index_of(device_id: str) -> int:
    """The numeric suffix of a campaign device id (``"att-003"`` -> 3).

    Non-campaign ids (no numeric suffix) sort first as -1; they can
    only tie with each other on an exact timestamp collision, which the
    continuous jitter makes a non-event.
    """
    try:
        return int(device_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


def record_event_key(record: "ExperimentRecord") -> Tuple[float, str, int, int]:
    """The global probe-event key of one experiment record."""
    return (
        record.started_at,
        record.carrier,
        _device_index_of(record.device_id),
        record.sequence,
    )


#: Prefix matcher for the canonical line shape ``to_json_line`` emits:
#: the first five fields in declaration order, unescaped strings.  Any
#: line that deviates (exotic ids, hand-edited archives) falls back to
#: a full ``json.loads``.
_LINE_KEY = re.compile(
    r'\{"device_id":"([^"\\]*)","carrier":"([^"\\]*)","country":"[^"\\]*",'
    r'"sequence":(-?\d+),"started_at":(-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?'
    r'|Infinity|NaN)),'
).match


def jsonl_event_key(line: str) -> Tuple[float, str, int, int]:
    """The probe-event key of one serialised record line.

    Parses only the canonical five-field prefix — O(prefix), not
    O(line) — so the streaming shard merge never deserialises whole
    records in the parent process.
    """
    matched = _LINE_KEY(line)
    if matched is not None:
        device_id, carrier, sequence, started_at = matched.groups()
        return (
            float(started_at),
            sys.intern(carrier),
            _device_index_of(device_id),
            int(sequence),
        )
    payload = json.loads(line)
    return (
        payload["started_at"],
        payload["carrier"],
        _device_index_of(payload["device_id"]),
        payload["sequence"],
    )


def _nonblank_lines(lines: Iterator[str]) -> Iterator[str]:
    """Strip and drop blank lines (trailing newlines, spill padding).

    A partially written or hand-truncated shard spill may end with a
    trailing newline or contain blank separator lines; neither carries a
    record, so the merge must skip them rather than hand ``""`` to the
    event-key parser.  ``str.strip`` returns the original object when
    there is nothing to strip, so clean shard streams pay no copies.
    """
    for line in lines:
        line = line.strip()
        if line:
            yield line


def merged_shard_lines(
    line_streams: Iterable[Iterator[str]],
) -> Iterator[str]:
    """K-way merge shard line streams into global event-key order.

    The shared core of every archive writer (see
    :mod:`repro.measure.backends`): each stream must already be in
    event-key order; blank lines are skipped.  A line whose event-key
    prefix cannot be parsed — or that does not end in ``}`` — is the
    signature of a crash mid-write (a *truncated partial final line*),
    and raises :class:`~repro.core.errors.TruncatedDatasetError` carrying
    the clean-record count instead of surfacing a bare
    ``json.JSONDecodeError`` from deep inside the merge heap.  Resume
    and reconcile passes pre-scan shards against their manifests, so a
    healthy pipeline never reaches this error; it exists so a *direct*
    merge over a torn shard fails loud and diagnosable.
    """
    count = 0
    streams = [_nonblank_lines(stream) for stream in line_streams]

    def checked_key(line: str) -> Tuple[float, str, int, int]:
        try:
            if not line.endswith("}"):
                raise ValueError("line does not close its JSON object")
            return jsonl_event_key(line)
        except (ValueError, KeyError, TypeError) as exc:
            raise TruncatedDatasetError(
                f"shard stream holds a truncated or corrupt record line "
                f"after {count} clean records "
                f"({line[:80]!r}...): {exc}",
                clean_records=count,
                partial_line=line,
            ) from exc

    for line in heapq.merge(*streams, key=checked_key):
        # heapq.merge stops calling the key once a single iterator
        # remains, so the torn-line guard must also ride the yield loop
        # or a one-stream merge would pass torn bytes through silently.
        if not line.endswith("}"):
            raise TruncatedDatasetError(
                f"shard stream holds a truncated partial record line "
                f"after {count} clean records ({line[:80]!r}...)",
                clean_records=count,
                partial_line=line,
            )
        count += 1
        yield line


def merge_shard_jsonl(
    line_streams: Iterable[Iterator[str]],
    output: TextIO,
    metadata: Optional[Dict[str, object]] = None,
    sink=None,
) -> Tuple[int, str]:
    """K-way merge shard JSONL streams into ``output`` by event key.

    Each stream must yield record lines already in event-key order
    (every shard executor produces exactly that); blank lines and
    trailing newlines are tolerated and skipped.  The merged lines are
    written one at a time and SHA-256-hashed as they pass — the digest
    is byte-identical to :meth:`Dataset.content_hash` of the equivalent
    in-memory merge.  Record lines run tens of kilobytes, so no block
    buffer is kept here: the handle's own write buffering is enough, and
    parent peak memory stays at one pending line per stream, never the
    whole campaign.

    When ``sink`` is given it is called with each merged line as it is
    written — the hook the pipelined report path uses to fold every line
    into the analysis projections without re-reading the output file.

    When ``metadata`` is given, a ``{"_metadata": ...}`` line (with the
    final record count filled in as ``experiments``) is appended after
    the records; loaders accept the metadata line at any position.

    Returns ``(record_count, content_hash_hexdigest)``.
    """
    digest = hashlib.sha256()
    update = digest.update
    write = output.write
    count = 0
    merged = merged_shard_lines(line_streams)
    if sink is None:
        for line in merged:
            update(line.encode("utf-8"))
            update(b"\n")
            count += 1
            write(line)
            write("\n")
    else:
        for line in merged:
            update(line.encode("utf-8"))
            update(b"\n")
            count += 1
            write(line)
            write("\n")
            sink(line)
    if metadata is not None:
        payload = dict(metadata)
        payload["experiments"] = count
        write(json.dumps({"_metadata": payload}, separators=(",", ":")) + "\n")
    return count, digest.hexdigest()


@dataclass(slots=True)
class Dataset:
    """An ordered collection of experiment records plus campaign metadata.

    Grouping views (:meth:`by_carrier`, :meth:`by_device`, the
    resolution indices) are built lazily on first use and invalidated by
    length: appending experiments (via :meth:`add` or directly) changes
    ``len(experiments)``, which every accessor checks before serving the
    cache.  The returned structures are shared — treat them as
    read-only.
    """

    experiments: List[ExperimentRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Lazily built indices plus the experiment count they were built at.
    _carrier_index: Optional[Dict[str, List[ExperimentRecord]]] = field(
        default=None, repr=False, compare=False
    )
    _device_index: Optional[Dict[str, List[ExperimentRecord]]] = field(
        default=None, repr=False, compare=False
    )
    _resolution_index: Optional[Dict[str, list]] = field(
        default=None, repr=False, compare=False
    )
    #: Lazily built columnar projections (see :class:`DatasetColumns`).
    _columns: Optional[DatasetColumns] = field(
        default=None, repr=False, compare=False
    )
    #: The fused analysis engine, attached by repro.analysis.engine.
    _engine: Optional[object] = field(default=None, repr=False, compare=False)
    #: The partial final line a crash mid-write left behind, when the
    #: archive was loaded with ``allow_truncated=True``; None for clean
    #: archives.  Resume/reconcile treat a dataset with a torn tail as
    #: an incomplete prefix — ``len(dataset)`` is the clean-record
    #: count — never as analysable data.
    truncated_tail: Optional[str] = field(
        default=None, repr=False, compare=False
    )
    _indexed_len: int = field(default=-1, repr=False, compare=False)

    def add(self, record: ExperimentRecord) -> None:
        """Append one experiment."""
        self.experiments.append(record)

    def _fresh(self) -> bool:
        return self._indexed_len == len(self.experiments)

    def _invalidate(self) -> None:
        self._carrier_index = None
        self._device_index = None
        self._resolution_index = None
        self._columns = None
        self._engine = None
        self._indexed_len = len(self.experiments)

    def by_carrier(self) -> Dict[str, List[ExperimentRecord]]:
        """Experiments grouped by carrier key (cached; read-only)."""
        if not self._fresh():
            self._invalidate()
        if self._carrier_index is None:
            grouped: Dict[str, List[ExperimentRecord]] = {}
            for record in self.experiments:
                grouped.setdefault(record.carrier, []).append(record)
            self._carrier_index = grouped
        return self._carrier_index

    def by_device(self) -> Dict[str, List[ExperimentRecord]]:
        """Experiments grouped by device, each group time-ordered."""
        if not self._fresh():
            self._invalidate()
        if self._device_index is None:
            grouped: Dict[str, List[ExperimentRecord]] = {}
            for record in self.experiments:
                grouped.setdefault(record.device_id, []).append(record)
            for records in grouped.values():
                # Serial campaigns append in time order; only out-of-order
                # groups (merged or shuffled archives) pay the sort.
                if any(
                    earlier.started_at > later.started_at
                    for earlier, later in zip(records, records[1:])
                ):
                    records.sort(key=_STARTED_AT)
            self._device_index = grouped
        return self._device_index

    def experiments_for(self, carrier: str) -> List[ExperimentRecord]:
        """Experiments on one carrier, campaign-ordered (cached)."""
        return self.by_carrier().get(carrier, [])

    def resolutions_by_domain(self) -> Dict[str, list]:
        """``domain -> [(experiment, resolution), ...]`` in order (cached).

        Lets per-domain analyses (replica similarity, Fig 10/14 style)
        touch only the resolutions that matter instead of re-walking
        every experiment per figure.
        """
        if not self._fresh():
            self._invalidate()
        if self._resolution_index is None:
            index: Dict[str, list] = {}
            for record in self.experiments:
                for resolution in record.resolutions:
                    index.setdefault(resolution.domain, []).append(
                        (record, resolution)
                    )
            self._resolution_index = index
        return self._resolution_index

    def columns(self) -> DatasetColumns:
        """Flat columnar projections (cached; read-only, shared).

        The projections are what the fused analysis engine scans; they
        are invalidated by length exactly like the grouping indices.
        """
        if not self._fresh():
            self._invalidate()
        if self._columns is None:
            self._columns = DatasetColumns.from_experiments(self.experiments)
        return self._columns

    def carriers(self) -> List[str]:
        """Carrier keys present, in first-seen order."""
        return list(self.by_carrier())

    def device_ids(self) -> List[str]:
        """Distinct device ids."""
        return sorted(self.by_device())

    def filter(self, predicate) -> "Dataset":
        """A new dataset with only the matching experiments."""
        return Dataset(
            experiments=[
                record for record in self.experiments if predicate(record)
            ],
            metadata=dict(self.metadata),
        )

    def content_hash(self) -> str:
        """SHA-256 over the serialised experiments, in order.

        Metadata is excluded: it describes how the campaign was *driven*
        (e.g. worker count), which must not perturb the measured content.
        Hashing the JSON text rather than the records makes the check
        NaN-safe (``resolution_ms`` can be NaN for unreachable targets,
        and ``nan != nan`` under dataclass equality) and means equality
        of hashes is exactly equality of archived ``.jsonl`` bodies.
        This is the oracle the parallel campaign — and every fast-path
        optimisation of the serial engine — is verified against.  It is
        deliberately *not* memoised: in-place record mutation must change
        the hash (the result cache computes it once per run instead).
        """
        digest = hashlib.sha256()
        for record in self.experiments:
            digest.update(record.to_json_line().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.experiments)

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self.experiments)

    # -- persistence -------------------------------------------------------

    #: Serialized lines buffered per write in :meth:`dump_jsonl`.  One
    #: ``write`` per block instead of per record: serialisation is the
    #: slowest single stage call, and line-at-a-time writes dominate its
    #: non-JSON overhead on buffered text streams.
    DUMP_BLOCK_LINES = 512

    def dump_jsonl(self, stream: TextIO) -> int:
        """Write one JSON line per experiment; returns the line count.

        Lines are buffered and flushed in ``"\\n".join`` blocks; the
        emitted bytes are identical to line-at-a-time writes (asserted
        against :meth:`content_hash` by the emitter oracle test).
        """
        count = 0
        if self.metadata:
            stream.write(
                json.dumps({"_metadata": self.metadata}, separators=(",", ":"))
                + "\n"
            )
        block = self.DUMP_BLOCK_LINES
        buffer: List[str] = []
        for record in self.experiments:
            buffer.append(record.to_json_line())
            count += 1
            if len(buffer) >= block:
                stream.write("\n".join(buffer) + "\n")
                buffer.clear()
        if buffer:
            stream.write("\n".join(buffer) + "\n")
        return count

    @classmethod
    def from_shard_streams(
        cls,
        streams: Iterable[Iterable["ExperimentRecord"]],
        metadata: Optional[Dict[str, object]] = None,
    ) -> "Dataset":
        """Merge per-shard record streams into one ordered dataset.

        Each stream must already be in probe-event-key order (any
        shard executor's output is); the k-way merge interleaves them
        into the exact global order the serial campaign produces, so
        the resulting :meth:`content_hash` equals the serial run's.
        Streams may be lazy iterators — only one pending record per
        stream is held beyond the output list itself.
        """
        return cls(
            experiments=list(heapq.merge(*streams, key=record_event_key)),
            metadata=dict(metadata or {}),
        )

    @classmethod
    def load_jsonl(
        cls, lines: Iterable[str], allow_truncated: bool = False
    ) -> "Dataset":
        """Read a dataset written by :meth:`dump_jsonl`.

        Canonical lines (the shape :meth:`ExperimentRecord.to_json_line`
        emits) decode through the slot-assigning fast decoders; anything
        else falls back to :meth:`ExperimentRecord.from_json`, keeping
        defaulting and error behaviour identical to
        :meth:`load_jsonl_reference` — the property-tested oracle.

        A *final* line that fails to decode is the signature of a crash
        mid-write (a torn partial record), and is distinguished from
        mid-archive corruption: it raises
        :class:`~repro.core.errors.TruncatedDatasetError` reporting the
        clean-record count — or, with ``allow_truncated=True``, the
        clean prefix loads and the torn tail is kept on
        :attr:`Dataset.truncated_tail` so a resume pass can treat the
        shard as incomplete instead of dying mid-parse.  A bad line
        *followed by more records* is corruption, not truncation, and
        still raises :class:`~repro.core.errors.DatasetError`.
        """
        dataset = cls()
        append = dataset.experiments.append
        loads = json.loads
        clean = 0
        pending_error: Optional[Tuple[str, json.JSONDecodeError]] = None
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                # The bad line was not the final one: mid-archive
                # corruption, reported exactly as before.
                bad_line, exc = pending_error
                raise DatasetError(f"bad dataset line: {exc}") from exc
            if line.startswith('{"_metadata"'):
                dataset.metadata = loads(line)["_metadata"]
                continue
            try:
                payload = loads(line)
            except json.JSONDecodeError as exc:
                pending_error = (line, exc)
                continue
            record = _decode_experiment(payload)
            if record is None:
                record = ExperimentRecord.from_json(line)
            append(record)
            clean += 1
        if pending_error is not None:
            bad_line, exc = pending_error
            if not allow_truncated:
                raise TruncatedDatasetError(
                    f"archive ends in a truncated partial record after "
                    f"{clean} clean records (crash mid-write?): {exc}",
                    clean_records=clean,
                    partial_line=bad_line,
                ) from exc
            dataset.truncated_tail = bad_line
        return dataset

    @classmethod
    def load_jsonl_reference(cls, lines: Iterable[str]) -> "Dataset":
        """The original per-line ``from_json`` ingest (the oracle)."""
        dataset = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if line.startswith('{"_metadata"'):
                dataset.metadata = json.loads(line)["_metadata"]
                continue
            dataset.add(ExperimentRecord.from_json(line))
        return dataset

    @classmethod
    def loads_jsonl(cls, text: str) -> "Dataset":
        """Read a dataset from one JSONL string (single-pass splitter)."""
        return cls.load_jsonl(text.split("\n"))

    def save(self, path: str, backend: Optional[str] = None) -> int:
        """Write the dataset to a file path.

        ``backend`` selects the storage backend by name (``jsonl``,
        ``sqlite``, ``columnar``); None infers it from the path's
        extension, defaulting to JSONL — whose bytes are unchanged from
        the historical format (the reference the content hash pins).
        """
        from repro.measure.backends import resolve_backend

        resolved = resolve_backend(backend, path)
        if resolved.name == "jsonl":
            with open(path, "w", encoding="utf-8") as handle:
                return self.dump_jsonl(handle)
        return resolved.write_dataset(path, self)

    @classmethod
    def load(cls, path: str, backend: Optional[str] = None) -> "Dataset":
        """Read a dataset from a file path (any registered backend).

        With ``backend=None`` the file's own bytes decide: archives are
        sniffed by magic (SQLite header, columnar magic) with JSONL as
        the fallback, so ``repro-study report --dataset`` works on any
        backend's archive without being told which one wrote it.
        """
        from repro.measure.backends import sniff_backend

        resolved = sniff_backend(path) if backend is None else None
        if resolved is None:
            from repro.measure.backends import get_backend

            resolved = get_backend(backend or "jsonl")
        if resolved.name == "jsonl":
            with open(path, "r", encoding="utf-8") as handle:
                return cls.loads_jsonl(handle.read())
        return resolved.load(path)
