"""Measurement records and the campaign dataset.

Everything the analysis consumes is recorded here, from the *client's*
point of view: a device knows what it resolved, what came back, how long
probes took and what its configured resolver was — but not, say, which
cache served it.  Ground truth stays inside the simulation, exactly as it
stayed inside the carriers during the original study.

Records serialise to JSON lines so campaign output can be archived and
re-analysed without re-simulation (the paper released its dataset; so do
we).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

from repro.core.errors import DatasetError

#: Resolver kinds a client resolves through.
RESOLVER_LOCAL = "local"
RESOLVER_GOOGLE = "google"
RESOLVER_OPENDNS = "opendns"
RESOLVER_KINDS = (RESOLVER_LOCAL, RESOLVER_GOOGLE, RESOLVER_OPENDNS)


@dataclass
class ResolutionRecord:
    """One DNS resolution as observed by the device."""

    domain: str
    resolver_kind: str
    resolution_ms: float
    addresses: List[str] = field(default_factory=list)
    cname_chain: List[str] = field(default_factory=list)
    #: Which attempt in a back-to-back pair (1 or 2); Fig 7's cache probe.
    attempt: int = 1
    rcode: str = "NOERROR"


@dataclass
class PingRecord:
    """One ping probe (rtt_ms is None when nothing answered)."""

    target_ip: str
    target_kind: str
    rtt_ms: Optional[float] = None

    @property
    def responded(self) -> bool:
        """Whether the target answered."""
        return self.rtt_ms is not None


@dataclass
class TracerouteRecord:
    """One traceroute, flattened to (ttl, ip, rtt) triples."""

    target_ip: str
    target_kind: str
    hops: List[List[object]] = field(default_factory=list)
    reached: bool = False

    def hop_ips(self) -> List[str]:
        """Responding hop addresses in path order."""
        return [hop[1] for hop in self.hops if hop[1] is not None]


@dataclass
class HttpRecord:
    """One HTTP GET to a replica address (time-to-first-byte)."""

    replica_ip: str
    domain: str
    resolver_kind: str
    ttfb_ms: Optional[float] = None

    @property
    def succeeded(self) -> bool:
        """Whether the GET completed."""
        return self.ttfb_ms is not None


@dataclass
class ResolverIdRecord:
    """Result of the Mao et al. resolver-identification probe."""

    resolver_kind: str
    configured_ip: str
    observed_external_ip: Optional[str] = None
    resolution_ms: Optional[float] = None


@dataclass
class ExperimentRecord:
    """One complete experiment run (Sec 3.2's script, once)."""

    device_id: str
    carrier: str
    country: str
    sequence: int
    started_at: float
    latitude: float
    longitude: float
    technology: str
    generation: str
    client_ip: str = ""
    resolutions: List[ResolutionRecord] = field(default_factory=list)
    pings: List[PingRecord] = field(default_factory=list)
    traceroutes: List[TracerouteRecord] = field(default_factory=list)
    http_gets: List[HttpRecord] = field(default_factory=list)
    resolver_ids: List[ResolverIdRecord] = field(default_factory=list)

    def resolutions_via(self, resolver_kind: str) -> List[ResolutionRecord]:
        """Resolutions through one resolver kind."""
        return [
            record
            for record in self.resolutions
            if record.resolver_kind == resolver_kind
        ]

    def resolver_id(self, resolver_kind: str) -> Optional[ResolverIdRecord]:
        """The identification record for one resolver kind, if present."""
        for record in self.resolver_ids:
            if record.resolver_kind == resolver_kind:
                return record
        return None

    def to_json(self) -> str:
        """One-line JSON form."""
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRecord":
        """Parse a line written by :meth:`to_json`."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"bad dataset line: {exc}") from exc
        try:
            return cls(
                device_id=payload["device_id"],
                carrier=payload["carrier"],
                country=payload["country"],
                sequence=payload["sequence"],
                started_at=payload["started_at"],
                latitude=payload["latitude"],
                longitude=payload["longitude"],
                technology=payload["technology"],
                generation=payload["generation"],
                client_ip=payload.get("client_ip", ""),
                resolutions=[
                    ResolutionRecord(**item) for item in payload.get("resolutions", [])
                ],
                pings=[PingRecord(**item) for item in payload.get("pings", [])],
                traceroutes=[
                    TracerouteRecord(**item)
                    for item in payload.get("traceroutes", [])
                ],
                http_gets=[
                    HttpRecord(**item) for item in payload.get("http_gets", [])
                ],
                resolver_ids=[
                    ResolverIdRecord(**item)
                    for item in payload.get("resolver_ids", [])
                ],
            )
        except (KeyError, TypeError) as exc:
            raise DatasetError(f"malformed experiment record: {exc}") from exc


@dataclass
class Dataset:
    """An ordered collection of experiment records plus campaign metadata."""

    experiments: List[ExperimentRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, record: ExperimentRecord) -> None:
        """Append one experiment."""
        self.experiments.append(record)

    def by_carrier(self) -> Dict[str, List[ExperimentRecord]]:
        """Experiments grouped by carrier key."""
        grouped: Dict[str, List[ExperimentRecord]] = {}
        for record in self.experiments:
            grouped.setdefault(record.carrier, []).append(record)
        return grouped

    def by_device(self) -> Dict[str, List[ExperimentRecord]]:
        """Experiments grouped by device, each group time-ordered."""
        grouped: Dict[str, List[ExperimentRecord]] = {}
        for record in self.experiments:
            grouped.setdefault(record.device_id, []).append(record)
        for records in grouped.values():
            records.sort(key=lambda record: record.started_at)
        return grouped

    def carriers(self) -> List[str]:
        """Carrier keys present, in first-seen order."""
        seen: List[str] = []
        for record in self.experiments:
            if record.carrier not in seen:
                seen.append(record.carrier)
        return seen

    def device_ids(self) -> List[str]:
        """Distinct device ids."""
        return sorted({record.device_id for record in self.experiments})

    def filter(self, predicate) -> "Dataset":
        """A new dataset with only the matching experiments."""
        return Dataset(
            experiments=[
                record for record in self.experiments if predicate(record)
            ],
            metadata=dict(self.metadata),
        )

    def content_hash(self) -> str:
        """SHA-256 over the serialised experiments, in order.

        Metadata is excluded: it describes how the campaign was *driven*
        (e.g. worker count), which must not perturb the measured content.
        Hashing the JSON text rather than the records makes the check
        NaN-safe (``resolution_ms`` can be NaN for unreachable targets,
        and ``nan != nan`` under dataclass equality) and means equality
        of hashes is exactly equality of archived ``.jsonl`` bodies.
        This is the oracle the parallel campaign is verified against.
        """
        digest = hashlib.sha256()
        for record in self.experiments:
            digest.update(record.to_json().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.experiments)

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self.experiments)

    # -- persistence -------------------------------------------------------

    def dump_jsonl(self, stream: TextIO) -> int:
        """Write one JSON line per experiment; returns the line count."""
        count = 0
        if self.metadata:
            stream.write(
                json.dumps({"_metadata": self.metadata}, separators=(",", ":"))
                + "\n"
            )
        for record in self.experiments:
            stream.write(record.to_json() + "\n")
            count += 1
        return count

    @classmethod
    def load_jsonl(cls, lines: Iterable[str]) -> "Dataset":
        """Read a dataset written by :meth:`dump_jsonl`."""
        dataset = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if line.startswith('{"_metadata"'):
                dataset.metadata = json.loads(line)["_metadata"]
                continue
            dataset.add(ExperimentRecord.from_json(line))
        return dataset

    def save(self, path: str) -> int:
        """Write the dataset to a file path."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.dump_jsonl(handle)

    @classmethod
    def load(cls, path: str) -> "Dataset":
        """Read a dataset from a file path."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.load_jsonl(handle)
