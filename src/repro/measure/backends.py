"""Pluggable dataset storage backends.

Every byte a campaign persists now flows through one interface:
:class:`DatasetBackend` owns how record lines are laid out on disk —
for the final merged archive *and* for the per-shard checkpoint files
the crash-safe runner commits (:mod:`repro.measure.checkpoint`).

Three implementations ship:

* :class:`JsonlBackend` — the historical format and the **reference**:
  one canonical JSON line per record.  Its archive bytes are unchanged
  from the pre-backend engine, so every committed golden hash
  (``SMOKE_DATASET_SHA256``, the tiny scenario goldens) pins it.
* :class:`SqliteBackend` — one stdlib SQLite database per archive or
  shard; record lines stored verbatim in insertion order.
* :class:`ColumnarBackend` — a binary layout that projects the probe
  event key into flat columns (``started_at`` float64s, carrier ids,
  device indices, sequences, payload offsets) over a heap of the exact
  line bytes, so merges and scans can read keys without parsing JSON.

The **hash domain is backend-independent**: every backend stores each
record's canonical JSON line byte-for-byte and can replay it, so
:meth:`Dataset.content_hash` — SHA-256 over the lines — is identical no
matter which backend held the data.  That single invariant is what lets
per-shard checkpoint manifests, ``--resume`` and the reconciler promise
byte-identity with an uninterrupted run, and what keys the analysis
result cache identically across backends.

Durability contract for shards (see :class:`ShardWriter`): records are
appended to a ``*.tmp`` file; :meth:`ShardWriter.seal` flushes and
fsyncs it; the checkpoint layer then atomically renames it into place
and writes the manifest sidecar.  A crash at any point leaves either a
committed shard + manifest, or a torn ``*.tmp`` that resume simply
re-runs — never a half-trusted file.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import struct
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import DatasetError, TruncatedDatasetError
from repro.measure.records import (
    Dataset,
    jsonl_event_key,
    merge_shard_jsonl,
    merged_shard_lines,
)

#: Names accepted by ``--backend`` (and the registry order shown in
#: help text).  JSONL first: it is the reference format.
BACKEND_CHOICES = ("jsonl", "sqlite", "columnar")

#: Magic prefix of a columnar archive/shard file.
COLUMNAR_MAGIC = b"RPROCOL1"

#: Magic prefix every SQLite 3 database starts with.
SQLITE_MAGIC = b"SQLite format 3\x00"


def _fsync_path(path: str) -> None:
    """fsync one file by path (no-op if the platform refuses)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """fsync the directory holding ``path`` so a rename is durable."""
    _fsync_path(os.path.dirname(os.path.abspath(path)) or ".")


def write_atomic(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via fsync'd tmp-file + atomic rename.

    The unit of crash safety for manifests: a reader never observes a
    half-written file — either the old content, or the new, complete
    one.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)


class ShardScan:
    """What a full verification pass learned about one shard file.

    ``status`` is one of ``ok`` / ``truncated`` / ``corrupt`` /
    ``missing``; ``records`` and ``sha256`` describe the *clean prefix*
    (the whole file when ``ok``), so resume can decide whether the
    shard needs re-running and validate can diff against the manifest.
    """

    __slots__ = ("status", "records", "sha256", "detail")

    def __init__(self, status: str, records: int = 0, sha256: str = "",
                 detail: str = ""):
        self.status = status
        self.records = records
        self.sha256 = sha256
        self.detail = detail

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardScan({self.status!r}, records={self.records}, "
            f"detail={self.detail!r})"
        )


class ShardWriter:
    """Streaming writer for one shard's records (backend-agnostic core).

    Counts records and folds each canonical line (plus the terminating
    newline — the content-hash domain) into an incremental SHA-256 as it
    is appended, so the digest the checkpoint manifest records costs no
    second pass.  Subclasses implement the storage-specific
    ``_append``/``_seal``.
    """

    def __init__(self, path: str):
        #: Final (committed) path; writes land in ``tmp_path``.
        self.path = path
        self.tmp_path = path + ".tmp"
        self.records = 0
        self._digest = hashlib.sha256()

    def append(self, line: str) -> None:
        """Append one canonical record line (no trailing newline)."""
        self._append(line)
        self._digest.update(line.encode("utf-8"))
        self._digest.update(b"\n")
        self.records += 1

    def seal(self) -> Tuple[int, str]:
        """Flush + fsync the tmp file; returns ``(records, sha256)``.

        The shard is *sealed*, not committed: the checkpoint layer
        performs the atomic rename + manifest write so commit decisions
        stay in one place (and a worker crash can never leave a
        renamed-but-unmanifested file).
        """
        self._seal()
        return self.records, self._digest.hexdigest()

    def flush(self) -> None:
        """Push appended records to the OS (crash-injection hook)."""
        self._flush()

    def abort(self) -> None:
        """Close without sealing; the tmp file is left for diagnosis."""
        self._abort()

    # -- storage-specific ---------------------------------------------------

    def _append(self, line: str) -> None:
        raise NotImplementedError

    def _seal(self) -> None:
        raise NotImplementedError

    def _flush(self) -> None:
        pass

    def _abort(self) -> None:
        pass


class DatasetBackend:
    """How record lines are laid out on disk (archives and shards).

    The interface every producer and consumer in the repo goes through:

    * :meth:`open_shard` → :class:`ShardWriter` — streaming, durable
      per-shard checkpoint writes (``append`` / ``seal``);
    * :meth:`write_archive_lines` — k-way merge already-ordered line
      streams straight into a final archive, hashing as they pass;
    * :meth:`write_dataset` / :meth:`load` — whole-dataset persistence;
    * :meth:`iter_lines` — replay the stored canonical lines in order
      (the hash domain; also the merge input for shard files);
    * :meth:`scan` — full verification: clean-record count, SHA-256,
      truncation/corruption classification, without ever raising on a
      torn file.
    """

    #: Registry name (``--backend`` value).
    name: str = ""
    #: Extension committed shard files carry under this backend.
    shard_extension: str = ""

    # -- shards -------------------------------------------------------------

    def open_shard(self, path: str) -> ShardWriter:
        """A streaming writer whose records land in ``path + '.tmp'``."""
        raise NotImplementedError

    # -- archives -----------------------------------------------------------

    def write_archive_lines(
        self,
        path: str,
        line_streams: Iterable[Iterator[str]],
        metadata: Optional[Dict[str, object]] = None,
        sink=None,
    ) -> Tuple[int, str]:
        """Merge ordered line streams into the archive at ``path``.

        Returns ``(record_count, content_hash)`` where the hash is over
        the merged canonical lines — byte-equal to
        :meth:`Dataset.content_hash` of the same records, whatever the
        on-disk layout.  ``sink`` is called with each merged line as it
        is written (the pipelined-analysis hook).
        """
        raise NotImplementedError

    def write_dataset(self, path: str, dataset: Dataset) -> int:
        """Persist a whole in-memory dataset; returns the record count."""
        lines = (record.to_json_line() for record in dataset.experiments)
        count, _ = self.write_archive_lines(
            path, [lines], metadata=dataset.metadata or None
        )
        return count

    def load(self, path: str) -> Dataset:
        """Read an archive back into a :class:`Dataset`."""
        dataset = Dataset.load_jsonl(self.iter_lines(path))
        metadata = self.read_metadata(path)
        if metadata is not None:
            dataset.metadata = metadata
        return dataset

    def iter_lines(self, path: str) -> Iterator[str]:
        """Yield the stored canonical record lines, in order."""
        raise NotImplementedError

    def read_metadata(self, path: str) -> Optional[Dict[str, object]]:
        """The campaign metadata stored alongside the records, if any."""
        raise NotImplementedError

    def scan(self, path: str) -> ShardScan:
        """Verify one file end to end without raising on torn bytes."""
        raise NotImplementedError


# -- JSONL --------------------------------------------------------------------


class JsonlBackend(DatasetBackend):
    """The historical one-line-per-record format; the byte reference."""

    name = "jsonl"
    shard_extension = ".jsonl"

    class _Writer(ShardWriter):
        def __init__(self, path: str):
            super().__init__(path)
            self._handle = open(self.tmp_path, "w", encoding="utf-8")

        def _append(self, line: str) -> None:
            self._handle.write(line)
            self._handle.write("\n")

        def _flush(self) -> None:
            self._handle.flush()

        def _seal(self) -> None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

        def _abort(self) -> None:
            try:
                self._handle.close()
            except Exception:
                pass

    def open_shard(self, path: str) -> ShardWriter:
        return self._Writer(path)

    def write_archive_lines(self, path, line_streams, metadata=None, sink=None):
        # Exactly the historical streaming writer: merged bytes (and the
        # trailing metadata line) are unchanged from the pre-backend
        # engine, which is what keeps every golden hash pinned.
        with open(path, "w", encoding="utf-8") as out:
            return merge_shard_jsonl(
                line_streams, out, metadata=metadata, sink=sink
            )

    def iter_lines(self, path: str) -> Iterator[str]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith('{"_metadata"'):
                    yield line

    def read_metadata(self, path: str) -> Optional[Dict[str, object]]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith('{"_metadata"'):
                    return json.loads(line)["_metadata"]
        return None

    def scan(self, path: str) -> ShardScan:
        if not os.path.exists(path):
            return ShardScan("missing", detail="no such file")
        digest = hashlib.sha256()
        records = 0
        pending: Optional[str] = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    if pending is not None:
                        # A bad line with records after it: corruption,
                        # not a torn tail.
                        return ShardScan(
                            "corrupt", records, digest.hexdigest(),
                            f"unparsable line before end of file: "
                            f"{pending[:60]!r}...",
                        )
                    if stripped.startswith('{"_metadata"'):
                        continue
                    try:
                        json.loads(stripped)
                    except json.JSONDecodeError:
                        pending = stripped
                        continue
                    digest.update(stripped.encode("utf-8"))
                    digest.update(b"\n")
                    records += 1
        except (OSError, UnicodeDecodeError) as exc:
            return ShardScan("corrupt", records, digest.hexdigest(), str(exc))
        if pending is not None:
            return ShardScan(
                "truncated", records, digest.hexdigest(),
                f"torn final line ({len(pending)} bytes)",
            )
        return ShardScan("ok", records, digest.hexdigest())


# -- SQLite -------------------------------------------------------------------


class SqliteBackend(DatasetBackend):
    """Record lines stored verbatim in a stdlib SQLite database.

    Schema: ``records(seq INTEGER PRIMARY KEY, line TEXT)`` in insertion
    (event) order plus a one-row ``metadata`` table holding the campaign
    metadata JSON.  Lines are stored byte-for-byte, so replaying them
    reproduces the exact JSONL body — and therefore the exact content
    hash.
    """

    name = "sqlite"
    shard_extension = ".sqlite"

    _SCHEMA = (
        "CREATE TABLE records (seq INTEGER PRIMARY KEY, line TEXT NOT NULL);"
        "CREATE TABLE metadata (key TEXT PRIMARY KEY, value TEXT NOT NULL);"
    )
    #: Rows buffered per executemany batch while appending.
    _BATCH = 256

    class _Writer(ShardWriter):
        def __init__(self, path: str):
            super().__init__(path)
            if os.path.exists(self.tmp_path):
                os.remove(self.tmp_path)
            self._con = sqlite3.connect(self.tmp_path)
            self._con.executescript(SqliteBackend._SCHEMA)
            self._batch: List[Tuple[str]] = []

        def _append(self, line: str) -> None:
            self._batch.append((line,))
            if len(self._batch) >= SqliteBackend._BATCH:
                self._flush()

        def _flush(self) -> None:
            if self._batch:
                self._con.executemany(
                    "INSERT INTO records (line) VALUES (?)", self._batch
                )
                self._con.commit()
                self._batch.clear()

        def _seal(self) -> None:
            self._flush()
            self._con.commit()
            self._con.close()
            _fsync_path(self.tmp_path)

        def _abort(self) -> None:
            try:
                self._con.close()
            except Exception:
                pass

    def open_shard(self, path: str) -> ShardWriter:
        return self._Writer(path)

    def write_archive_lines(self, path, line_streams, metadata=None, sink=None):
        if os.path.exists(path):
            os.remove(path)
        digest = hashlib.sha256()
        count = 0
        con = sqlite3.connect(path)
        try:
            con.executescript(self._SCHEMA)
            batch: List[Tuple[str]] = []
            for line in merged_shard_lines(line_streams):
                digest.update(line.encode("utf-8"))
                digest.update(b"\n")
                count += 1
                batch.append((line,))
                if len(batch) >= self._BATCH:
                    con.executemany(
                        "INSERT INTO records (line) VALUES (?)", batch
                    )
                    batch.clear()
                if sink is not None:
                    sink(line)
            if batch:
                con.executemany("INSERT INTO records (line) VALUES (?)", batch)
            if metadata is not None:
                payload = dict(metadata)
                payload["experiments"] = count
                con.execute(
                    "INSERT INTO metadata (key, value) VALUES (?, ?)",
                    ("metadata", json.dumps(payload, separators=(",", ":"))),
                )
            con.commit()
        finally:
            con.close()
        _fsync_path(path)
        return count, digest.hexdigest()

    def iter_lines(self, path: str) -> Iterator[str]:
        con = sqlite3.connect(path)
        try:
            for (line,) in con.execute(
                "SELECT line FROM records ORDER BY seq"
            ):
                yield line
        finally:
            con.close()

    def read_metadata(self, path: str) -> Optional[Dict[str, object]]:
        con = sqlite3.connect(path)
        try:
            row = con.execute(
                "SELECT value FROM metadata WHERE key = 'metadata'"
            ).fetchone()
        except sqlite3.DatabaseError:
            row = None
        finally:
            con.close()
        return json.loads(row[0]) if row else None

    def scan(self, path: str) -> ShardScan:
        if not os.path.exists(path):
            return ShardScan("missing", detail="no such file")
        digest = hashlib.sha256()
        records = 0
        try:
            con = sqlite3.connect(path)
            try:
                for (line,) in con.execute(
                    "SELECT line FROM records ORDER BY seq"
                ):
                    json.loads(line)
                    digest.update(line.encode("utf-8"))
                    digest.update(b"\n")
                    records += 1
            finally:
                con.close()
        except sqlite3.DatabaseError as exc:
            # SQLite reports a half-written database as malformed; we
            # cannot tell a torn tail from deeper damage, so the safer
            # (and strictly honest) classification is corrupt.
            return ShardScan("corrupt", records, digest.hexdigest(), str(exc))
        except (ValueError, TypeError) as exc:
            return ShardScan(
                "corrupt", records, digest.hexdigest(),
                f"stored line is not valid JSON: {exc}",
            )
        return ShardScan("ok", records, digest.hexdigest())


# -- binary columnar ----------------------------------------------------------


class ColumnarBackend(DatasetBackend):
    """Sharded binary columnar layout.

    File structure (all little-endian)::

        magic   8s   b"RPROCOL1"
        hlen    <Q   header length in bytes
        header  JSON {"records", "metadata", "carriers", "sections"}
        ...section bytes...

    Sections (offsets in the header are relative to the end of the
    header): the probe-event key columns — ``started_at`` float64,
    ``carrier_id`` uint32 into the header's carrier table,
    ``device_index``/``sequence`` int64 — then ``offsets`` (N+1 uint64
    into the heap) and the ``heap``: every record's canonical JSON line
    bytes, concatenated.  Keys are readable without parsing a single
    line of JSON; the heap preserves the exact bytes the content hash
    is defined over.
    """

    name = "columnar"
    shard_extension = ".col"

    class _Writer(ShardWriter):
        def __init__(self, path: str):
            super().__init__(path)
            # Key columns accumulate in memory (a few machine words per
            # record); line payloads stream to the heap tmp file so the
            # writer never holds the record stream.
            self._heap_path = path + ".heap.tmp"
            self._heap = open(self._heap_path, "wb")
            self._started_at = array("d")
            self._carrier_ids = array("L")
            self._device_index = array("q")
            self._sequence = array("q")
            self._offsets = array("Q", [0])
            self._carriers: Dict[str, int] = {}
            self._heap_bytes = 0

        def _append(self, line: str) -> None:
            started_at, carrier, device_index, sequence = jsonl_event_key(line)
            carrier_id = self._carriers.setdefault(
                carrier, len(self._carriers)
            )
            encoded = line.encode("utf-8")
            self._heap.write(encoded)
            self._heap_bytes += len(encoded)
            self._started_at.append(started_at)
            self._carrier_ids.append(carrier_id)
            self._device_index.append(device_index)
            self._sequence.append(sequence)
            self._offsets.append(self._heap_bytes)

        def _flush(self) -> None:
            self._heap.flush()

        def _seal(self) -> None:
            self._heap.flush()
            self._heap.close()
            _assemble_columnar(
                self.tmp_path,
                self._heap_path,
                records=self.records,
                metadata=None,
                carriers=self._carriers,
                columns=(
                    self._started_at,
                    self._carrier_ids,
                    self._device_index,
                    self._sequence,
                    self._offsets,
                ),
            )
            os.remove(self._heap_path)

        def _abort(self) -> None:
            try:
                self._heap.close()
            except Exception:
                pass

    def open_shard(self, path: str) -> ShardWriter:
        return self._Writer(path)

    def write_archive_lines(self, path, line_streams, metadata=None, sink=None):
        digest = hashlib.sha256()
        count = 0
        heap_path = path + ".heap.tmp"
        started_at = array("d")
        carrier_ids = array("L")
        device_index = array("q")
        sequence = array("q")
        offsets = array("Q", [0])
        carriers: Dict[str, int] = {}
        heap_bytes = 0
        with open(heap_path, "wb") as heap:
            for line in merged_shard_lines(line_streams):
                encoded = line.encode("utf-8")
                digest.update(encoded)
                digest.update(b"\n")
                count += 1
                key = jsonl_event_key(line)
                started_at.append(key[0])
                carrier_ids.append(carriers.setdefault(key[1], len(carriers)))
                device_index.append(key[2])
                sequence.append(key[3])
                heap.write(encoded)
                heap_bytes += len(encoded)
                offsets.append(heap_bytes)
                if sink is not None:
                    sink(line)
        final_metadata = None
        if metadata is not None:
            final_metadata = dict(metadata)
            final_metadata["experiments"] = count
        _assemble_columnar(
            path,
            heap_path,
            records=count,
            metadata=final_metadata,
            carriers=carriers,
            columns=(started_at, carrier_ids, device_index, sequence, offsets),
        )
        os.remove(heap_path)
        _fsync_path(path)
        return count, digest.hexdigest()

    def _read_header(self, handle) -> Tuple[dict, int]:
        magic = handle.read(8)
        if magic != COLUMNAR_MAGIC:
            raise DatasetError(
                f"not a columnar archive (magic {magic!r})"
            )
        (hlen,) = struct.unpack("<Q", handle.read(8))
        header = json.loads(handle.read(hlen).decode("utf-8"))
        return header, 16 + hlen

    def iter_lines(self, path: str) -> Iterator[str]:
        with open(path, "rb") as handle:
            header, base = self._read_header(handle)
            sections = header["sections"]
            off_start, off_len = sections["offsets"]
            handle.seek(base + off_start)
            offsets = array("Q")
            offsets.frombytes(handle.read(off_len))
            heap_start, heap_len = sections["heap"]
            handle.seek(base + heap_start)
            heap = handle.read(heap_len)
        for index in range(header["records"]):
            yield heap[offsets[index]: offsets[index + 1]].decode("utf-8")

    def read_metadata(self, path: str) -> Optional[Dict[str, object]]:
        with open(path, "rb") as handle:
            header, _ = self._read_header(handle)
        return header.get("metadata")

    def columns(self, path: str) -> Dict[str, object]:
        """The stored probe-event key columns, without touching the heap.

        ``{"started_at": array('d'), "carrier": [str, ...],
        "device_index": array('q'), "sequence": array('q')}`` — what a
        merge or a time-window scan needs, read in four block I/Os.
        """
        with open(path, "rb") as handle:
            header, base = self._read_header(handle)
            sections = header["sections"]

            def read(name: str, typecode: str):
                start, length = sections[name]
                handle.seek(base + start)
                column = array(typecode)
                column.frombytes(handle.read(length))
                return column

            started_at = read("started_at", "d")
            carrier_ids = read("carrier_id", "L")
            device_index = read("device_index", "q")
            sequence = read("sequence", "q")
        table = header["carriers"]
        return {
            "started_at": started_at,
            "carrier": [table[i] for i in carrier_ids],
            "device_index": device_index,
            "sequence": sequence,
        }

    def scan(self, path: str) -> ShardScan:
        if not os.path.exists(path):
            return ShardScan("missing", detail="no such file")
        digest = hashlib.sha256()
        records = 0
        try:
            with open(path, "rb") as handle:
                header, base = self._read_header(handle)
                sections = header["sections"]
                expected = header["records"]
                heap_start, heap_len = sections["heap"]
                size = os.path.getsize(path)
                if base + heap_start + heap_len > size:
                    return ShardScan(
                        "truncated", 0, "",
                        f"file is {size} bytes; header promises "
                        f"{base + heap_start + heap_len}",
                    )
            for line in self.iter_lines(path):
                json.loads(line)
                digest.update(line.encode("utf-8"))
                digest.update(b"\n")
                records += 1
            if records != expected:
                return ShardScan(
                    "corrupt", records, digest.hexdigest(),
                    f"header promises {expected} records, heap holds "
                    f"{records}",
                )
        except (DatasetError, OSError, ValueError, KeyError,
                struct.error) as exc:
            return ShardScan("corrupt", records, digest.hexdigest(), str(exc))
        return ShardScan("ok", records, digest.hexdigest())


def _assemble_columnar(
    path: str,
    heap_path: str,
    records: int,
    metadata: Optional[Dict[str, object]],
    carriers: Dict[str, int],
    columns: Tuple[array, array, array, array, array],
) -> None:
    """Assemble a columnar file: header, key columns, offsets, heap."""
    started_at, carrier_ids, device_index, sequence, offsets = columns
    table = [""] * len(carriers)
    for key, index in carriers.items():
        table[index] = key
    blobs = [
        ("started_at", started_at.tobytes()),
        ("carrier_id", carrier_ids.tobytes()),
        ("device_index", device_index.tobytes()),
        ("sequence", sequence.tobytes()),
        ("offsets", offsets.tobytes()),
    ]
    sections: Dict[str, List[int]] = {}
    cursor = 0
    for name, blob in blobs:
        sections[name] = [cursor, len(blob)]
        cursor += len(blob)
    heap_len = os.path.getsize(heap_path)
    sections["heap"] = [cursor, heap_len]
    header = json.dumps(
        {
            "records": records,
            "metadata": metadata,
            "carriers": table,
            "sections": sections,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    with open(path, "wb") as out:
        out.write(COLUMNAR_MAGIC)
        out.write(struct.pack("<Q", len(header)))
        out.write(header)
        for _, blob in blobs:
            out.write(blob)
        with open(heap_path, "rb") as heap:
            while True:
                chunk = heap.read(1 << 20)
                if not chunk:
                    break
                out.write(chunk)
        out.flush()
        os.fsync(out.fileno())


# -- registry -----------------------------------------------------------------

#: The backend registry, in ``--backend`` choice order.
BACKENDS: Dict[str, DatasetBackend] = {
    backend.name: backend
    for backend in (JsonlBackend(), SqliteBackend(), ColumnarBackend())
}


def get_backend(name: str) -> DatasetBackend:
    """The registered backend for ``name`` (raises on unknown names)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset backend {name!r}; "
            f"expected one of {BACKEND_CHOICES}"
        ) from None


#: Extensions mapped to backends, for paths that do not exist yet.
_EXTENSION_BACKENDS = {
    ".jsonl": "jsonl",
    ".sqlite": "sqlite",
    ".db": "sqlite",
    ".col": "columnar",
    ".columnar": "columnar",
}


def resolve_backend(
    name: Optional[str], path: Optional[str] = None
) -> DatasetBackend:
    """Resolve an explicit backend name, else infer one from ``path``.

    Inference is by extension (``.sqlite``/``.db`` → sqlite,
    ``.col``/``.columnar`` → columnar) with JSONL — the reference — as
    the default for everything else.
    """
    if name:
        return get_backend(name)
    if path:
        _, extension = os.path.splitext(path)
        mapped = _EXTENSION_BACKENDS.get(extension.lower())
        if mapped:
            return get_backend(mapped)
    return get_backend("jsonl")


def sniff_backend(path: str) -> Optional[DatasetBackend]:
    """Identify the backend that wrote ``path`` from its first bytes.

    SQLite and columnar archives carry unambiguous magic; anything else
    readable is treated as JSONL.  Returns None when the file cannot be
    read (the caller decides how loud to be).
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(16)
    except OSError:
        return None
    if prefix.startswith(SQLITE_MAGIC):
        return get_backend("sqlite")
    if prefix.startswith(COLUMNAR_MAGIC):
        return get_backend("columnar")
    return get_backend("jsonl")


def load_dataset(path: str, backend: Optional[str] = None) -> Dataset:
    """Load an archive via its (sniffed or explicit) backend."""
    resolved = get_backend(backend) if backend else sniff_backend(path)
    if resolved is None:
        raise DatasetError(f"cannot read dataset archive {path!r}")
    return resolved.load(path)


def scan_archive(path: str, backend: Optional[str] = None) -> ShardScan:
    """Verify an archive end to end (clean count, hash, truncation)."""
    resolved = get_backend(backend) if backend else sniff_backend(path)
    if resolved is None:
        return ShardScan("missing", detail="unreadable file")
    return resolved.scan(path)


__all__ = [
    "BACKEND_CHOICES",
    "BACKENDS",
    "ColumnarBackend",
    "DatasetBackend",
    "JsonlBackend",
    "ShardScan",
    "ShardWriter",
    "SqliteBackend",
    "get_backend",
    "load_dataset",
    "resolve_backend",
    "scan_archive",
    "sniff_backend",
    "write_atomic",
]
