"""Dataset integrity validation.

Released measurement datasets rot: fields go missing, clocks jump,
records get truncated.  The validator checks the structural invariants
every analysis in :mod:`repro.analysis` relies on and reports findings
instead of failing deep inside a CDF computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.measure.records import Dataset, ExperimentRecord, RESOLVER_KINDS

#: Severity levels for findings.
ERROR = "error"
WARNING = "warning"


@dataclass
class Finding:
    """One validation finding."""

    severity: str
    record_index: int
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] record {self.record_index}: {self.message}"


@dataclass
class ValidationReport:
    """All findings for one dataset."""

    findings: List[Finding] = field(default_factory=list)
    records_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Findings that make analyses unsafe."""
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Findings that merely reduce coverage."""
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def add(self, severity: str, index: int, message: str) -> None:
        """Record one finding."""
        self.findings.append(Finding(severity, index, message))

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.records_checked} records, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )


def _check_record(record: ExperimentRecord, index: int, report: ValidationReport):
    if not record.device_id:
        report.add(ERROR, index, "empty device_id")
    if not record.carrier:
        report.add(ERROR, index, "empty carrier")
    if record.country not in ("US", "KR"):
        report.add(WARNING, index, f"unexpected country {record.country!r}")
    if not -90.0 <= record.latitude <= 90.0:
        report.add(ERROR, index, f"latitude out of range: {record.latitude}")
    if not -180.0 <= record.longitude <= 180.0:
        report.add(ERROR, index, f"longitude out of range: {record.longitude}")
    if record.started_at < 0:
        report.add(ERROR, index, f"negative timestamp {record.started_at}")
    if not record.technology:
        report.add(WARNING, index, "missing radio technology")

    for resolution in record.resolutions:
        if resolution.resolver_kind not in RESOLVER_KINDS:
            report.add(
                ERROR, index,
                f"unknown resolver kind {resolution.resolver_kind!r}",
            )
        if resolution.attempt not in (1, 2):
            report.add(ERROR, index, f"bad attempt {resolution.attempt}")
        if resolution.resolution_ms == resolution.resolution_ms and (
            resolution.resolution_ms < 0
        ):
            report.add(ERROR, index, "negative resolution time")

    for ping in record.pings:
        if ping.rtt_ms is not None and ping.rtt_ms < 0:
            report.add(ERROR, index, f"negative ping RTT to {ping.target_ip}")

    for trace in record.traceroutes:
        ttls = [hop[0] for hop in trace.hops]
        if ttls != sorted(ttls):
            report.add(ERROR, index, f"non-monotone TTLs to {trace.target_ip}")

    for http in record.http_gets:
        if http.ttfb_ms is not None and http.ttfb_ms <= 0:
            report.add(ERROR, index, f"non-positive TTFB to {http.replica_ip}")

    kinds = [identification.resolver_kind for identification in record.resolver_ids]
    if len(kinds) != len(set(kinds)):
        report.add(ERROR, index, "duplicate resolver identification kinds")


def validate_dataset(dataset: Dataset) -> ValidationReport:
    """Validate every record plus cross-record invariants."""
    report = ValidationReport()
    last_time_per_device = {}
    sequences_per_device = {}
    for index, record in enumerate(dataset):
        report.records_checked += 1
        _check_record(record, index, report)
        previous = last_time_per_device.get(record.device_id)
        if previous is not None and record.started_at < previous:
            report.add(
                ERROR, index,
                f"device {record.device_id} time went backwards",
            )
        last_time_per_device[record.device_id] = record.started_at
        seen = sequences_per_device.setdefault(record.device_id, set())
        if record.sequence in seen:
            report.add(
                WARNING, index,
                f"device {record.device_id} repeats sequence {record.sequence}",
            )
        seen.add(record.sequence)
    return report
