"""Dataset integrity validation.

Released measurement datasets rot: fields go missing, clocks jump,
records get truncated.  The validator checks the structural invariants
every analysis in :mod:`repro.analysis` relies on and reports findings
instead of failing deep inside a CDF computation.

:func:`verify_manifests` extends the check to the durable-storage
layer: every per-shard checkpoint manifest (see
:mod:`repro.measure.checkpoint`) is re-verified against the shard bytes
on disk, and the merged archive is cross-checked against the manifests'
record counts and hashes — a per-shard PASS/FAIL table with the archive
verdict at the bottom.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.measure.records import Dataset, ExperimentRecord, RESOLVER_KINDS

#: Severity levels for findings.
ERROR = "error"
WARNING = "warning"


@dataclass
class Finding:
    """One validation finding."""

    severity: str
    record_index: int
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] record {self.record_index}: {self.message}"


@dataclass
class ValidationReport:
    """All findings for one dataset."""

    findings: List[Finding] = field(default_factory=list)
    records_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Findings that make analyses unsafe."""
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Findings that merely reduce coverage."""
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def add(self, severity: str, index: int, message: str) -> None:
        """Record one finding."""
        self.findings.append(Finding(severity, index, message))

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.records_checked} records, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )


def _check_record(record: ExperimentRecord, index: int, report: ValidationReport):
    if not record.device_id:
        report.add(ERROR, index, "empty device_id")
    if not record.carrier:
        report.add(ERROR, index, "empty carrier")
    if record.country not in ("US", "KR"):
        report.add(WARNING, index, f"unexpected country {record.country!r}")
    if not -90.0 <= record.latitude <= 90.0:
        report.add(ERROR, index, f"latitude out of range: {record.latitude}")
    if not -180.0 <= record.longitude <= 180.0:
        report.add(ERROR, index, f"longitude out of range: {record.longitude}")
    if record.started_at < 0:
        report.add(ERROR, index, f"negative timestamp {record.started_at}")
    if not record.technology:
        report.add(WARNING, index, "missing radio technology")

    for resolution in record.resolutions:
        if resolution.resolver_kind not in RESOLVER_KINDS:
            report.add(
                ERROR, index,
                f"unknown resolver kind {resolution.resolver_kind!r}",
            )
        if resolution.attempt not in (1, 2):
            report.add(ERROR, index, f"bad attempt {resolution.attempt}")
        if resolution.resolution_ms == resolution.resolution_ms and (
            resolution.resolution_ms < 0
        ):
            report.add(ERROR, index, "negative resolution time")

    for ping in record.pings:
        if ping.rtt_ms is not None and ping.rtt_ms < 0:
            report.add(ERROR, index, f"negative ping RTT to {ping.target_ip}")

    for trace in record.traceroutes:
        ttls = [hop[0] for hop in trace.hops]
        if ttls != sorted(ttls):
            report.add(ERROR, index, f"non-monotone TTLs to {trace.target_ip}")

    for http in record.http_gets:
        if http.ttfb_ms is not None and http.ttfb_ms <= 0:
            report.add(ERROR, index, f"non-positive TTFB to {http.replica_ip}")

    kinds = [identification.resolver_kind for identification in record.resolver_ids]
    if len(kinds) != len(set(kinds)):
        report.add(ERROR, index, "duplicate resolver identification kinds")


def validate_dataset(dataset: Dataset) -> ValidationReport:
    """Validate every record plus cross-record invariants."""
    report = ValidationReport()
    last_time_per_device = {}
    sequences_per_device = {}
    for index, record in enumerate(dataset):
        report.records_checked += 1
        _check_record(record, index, report)
        previous = last_time_per_device.get(record.device_id)
        if previous is not None and record.started_at < previous:
            report.add(
                ERROR, index,
                f"device {record.device_id} time went backwards",
            )
        last_time_per_device[record.device_id] = record.started_at
        seen = sequences_per_device.setdefault(record.device_id, set())
        if record.sequence in seen:
            report.add(
                WARNING, index,
                f"device {record.device_id} repeats sequence {record.sequence}",
            )
        seen.add(record.sequence)
    return report


# -- checkpoint manifest verification -----------------------------------------


@dataclass
class ShardCheck:
    """One row of the per-shard PASS/FAIL table."""

    label: str
    passed: bool
    records: int
    detail: str = ""

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        detail = f"  ({self.detail})" if self.detail else ""
        return f"{self.label:<12} {verdict:<4} {self.records:>8} records{detail}"


@dataclass
class ManifestVerification:
    """Outcome of verifying an archive against its checkpoint manifests."""

    rows: List[ShardCheck] = field(default_factory=list)
    checkpoint_dir: str = ""

    @property
    def ok(self) -> bool:
        return bool(self.rows) and all(row.passed for row in self.rows)

    def table(self) -> str:
        header = f"{'shard':<12} {'ok':<4} {'records':>8}"
        return "\n".join([header] + [str(row) for row in self.rows])


def verify_manifests(
    archive_path: str, checkpoint_dir: Optional[str] = None
) -> ManifestVerification:
    """Verify per-shard checkpoint manifests against bytes on disk.

    Each shard named by the campaign manifest is deep-scanned (clean
    record count + SHA-256 over its canonical lines) and compared with
    its manifest sidecar; the archive itself is then cross-checked —
    its record count must equal the manifests' sum and its content hash
    must equal the incremental hash of the shards merged in order.
    Missing, torn and mismatched shards FAIL with the reason; nothing
    on disk is modified (healing is ``repro-study reconcile``'s job).
    """
    from repro.measure.backends import sniff_backend
    from repro.measure.checkpoint import CheckpointStore, default_checkpoint_dir

    directory = checkpoint_dir or default_checkpoint_dir(archive_path)
    result = ManifestVerification(checkpoint_dir=directory)
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        result.rows.append(
            ShardCheck(
                "manifest", False, 0,
                f"no campaign manifest under {directory}",
            )
        )
        return result

    import json

    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    from repro.measure.backends import get_backend

    store = CheckpointStore(directory, get_backend(manifest["backend"]))
    shard_count = int(manifest["shards"])
    total_records = 0
    shards_clean = True
    for shard in range(shard_count):
        state = store.verify_shard(shard)
        passed = state.status == "ok"
        shards_clean &= passed
        result.rows.append(
            ShardCheck(
                f"shard-{shard:04d}", passed, state.records,
                "" if passed else f"{state.status}: {state.detail}",
            )
        )
        if passed:
            total_records += state.records

    archive_backend = sniff_backend(archive_path)
    if archive_backend is None:
        result.rows.append(
            ShardCheck("archive", False, 0, f"cannot read {archive_path}")
        )
        return result
    scan = archive_backend.scan(archive_path)
    if scan.status != "ok":
        result.rows.append(
            ShardCheck(
                "archive", False, scan.records,
                f"{scan.status}: {scan.detail}",
            )
        )
        return result
    if not shards_clean:
        result.rows.append(
            ShardCheck(
                "archive", False, scan.records,
                "shards failed verification; archive cross-check skipped",
            )
        )
        return result
    # Shard streams are each event-ordered and carrier-disjoint by
    # construction, so concatenating their hashes in shard order equals
    # the archive hash only through the merge; compare counts here and
    # hashes through a real k-way merge.
    from repro.measure.records import merged_shard_lines

    merge_digest = hashlib.sha256()
    merged_count = 0
    for line in merged_shard_lines(
        store.backend.iter_lines(store.shard_path(shard))
        for shard in range(shard_count)
    ):
        merge_digest.update(line.encode("utf-8"))
        merge_digest.update(b"\n")
        merged_count += 1
    problems = []
    if scan.records != total_records or merged_count != total_records:
        problems.append(
            f"archive holds {scan.records} records, manifests promise "
            f"{total_records}"
        )
    if scan.sha256 != merge_digest.hexdigest():
        problems.append(
            f"archive hash {scan.sha256[:12]} != merged shard hash "
            f"{merge_digest.hexdigest()[:12]}"
        )
    result.rows.append(
        ShardCheck("archive", not problems, scan.records, "; ".join(problems))
    )
    return result
