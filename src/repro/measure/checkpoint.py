"""Per-shard checkpoints, crash-safe resume, and the reconciler.

The paper's campaigns ran continuously for months; a production-scale
reproduction cannot lose hour six of a long simulated campaign to a
crash at hour seven.  This module turns a campaign run into a sequence
of *durable shard commits* against a :class:`CheckpointStore`:

* each shard task's records stream through the selected backend's
  :class:`~repro.measure.backends.ShardWriter` into ``shard-NNNN.<ext>.tmp``;
* on completion the file is fsync'd, atomically renamed into place and
  a **manifest sidecar** (shard ranges, record count, incremental
  SHA-256 over the canonical lines) is written with the same
  fsync+rename discipline;
* :func:`run_checkpointed` with ``resume=True`` replays committed
  shards straight from their manifests and re-executes only the
  missing ranges — the merged archive is byte-identical to an
  uninterrupted run because shard streams are deterministic functions
  of the config and ranges never share cache scope;
* :func:`reconcile` is the healing pass: it deep-verifies every shard
  against its manifest, **quarantines** (never deletes) anything
  missing/truncated/corrupt/mismatched, re-runs exactly those shards
  and re-merges.

State machine of one shard, as resume/reconcile see it::

            ┌────────── no file, no manifest ──────────┐
            ▼                                          │
        MISSING ──run──▶ SEALED(tmp) ──rename+manifest──▶ COMMITTED
            ▲                │                             │
            │              crash                      scan != manifest
            │                ▼                             ▼
            └──re-run── UNCOMMITTED(tmp)              SUSPECT ──quarantine──▶ re-run

The shard hash domain is the backend-independent one — SHA-256 over
``line + "\\n"`` per canonical record line — so manifests written under
one backend remain meaningful evidence about the *records*, and the
final archive hash equals :meth:`Dataset.content_hash` regardless of
layout.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import DatasetError, ReproError
from repro.measure.backends import DatasetBackend, get_backend, write_atomic
from repro.measure.campaign import (
    Campaign,
    DeviceRange,
    ShardedCampaign,
    _worker_campaign,
)

#: Manifest schema version (campaign manifest and shard sidecars).
MANIFEST_VERSION = 1


class CampaignInterrupted(ReproError):
    """A checkpointed run stopped before every shard committed.

    Raised for injected crashes (:class:`CrashPoint`), dead worker
    processes, and ``stop_after_shards`` interrupts.  Everything
    committed so far is durable; re-run with ``resume=True`` to finish.
    """

    def __init__(self, message: str, committed: int = 0, total: int = 0):
        super().__init__(message)
        self.committed = committed
        self.total = total


@dataclass(frozen=True)
class CrashPoint:
    """Deterministic crash injection for crash/resume tests and benches.

    The shard task running ``shard`` stops after ``after_records``
    appended records: with ``hard_kill`` the worker process flushes its
    partial spill and dies with ``os._exit`` (no cleanup, no exception
    propagation — the honest simulation of a killed worker, leaving a
    partial shard on disk); without it the runner raises
    :class:`CampaignInterrupted` in-process after flushing.
    """

    shard: int
    after_records: int
    hard_kill: bool = False


def _range_descriptor(item: DeviceRange) -> List[object]:
    return [item.carrier_key, item.index, item.start, item.stop]


def task_descriptors(tasks: Sequence[Sequence[DeviceRange]]) -> List[List[List[object]]]:
    """JSON-serialisable description of the shard→ranges assignment."""
    return [[_range_descriptor(item) for item in task] for task in tasks]


def campaign_fingerprint(
    campaign: Campaign,
    tasks: Sequence[Sequence[DeviceRange]],
    backend: DatasetBackend,
) -> str:
    """Identity of a checkpointed run: world + config + plan + layout.

    Resume refuses to mix manifests across fingerprints — a committed
    shard is only evidence about *this* world config, campaign config,
    shard plan and storage backend.
    """
    payload = json.dumps(
        {
            "world": campaign.world.config.content_hash(),
            "config": repr(campaign.config),
            "tasks": task_descriptors(tasks),
            "backend": backend.name,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def campaign_shard_tasks(campaign: Campaign) -> List[List[DeviceRange]]:
    """The campaign's shard plan: its own for sharded executors, one
    all-ranges task for serial/parallel campaigns (still checkpointable —
    a single durable unit)."""
    if isinstance(campaign, ShardedCampaign):
        return campaign.shard_tasks()
    ranges = campaign.config.device_ranges(list(campaign.world.operators))
    return [ranges]


class ShardState:
    """One shard's reconciliation row: manifest vs bytes on disk."""

    __slots__ = ("shard", "status", "records", "detail", "action")

    def __init__(self, shard: int, status: str, records: int = 0,
                 detail: str = "", action: str = ""):
        self.shard = shard
        self.status = status
        self.records = records
        self.detail = detail
        #: What the pass did about it: ``kept`` / ``quarantined+rerun`` /
        #: ``rerun``.
        self.action = action


class CheckpointStore:
    """The durable shard directory beside a campaign archive.

    Layout (``<output>.shards/`` by default)::

        manifest.json               campaign manifest (fingerprint, plan)
        shard-0000.jsonl            committed shard (backend extension)
        shard-0000.manifest.json    shard sidecar (ranges, records, sha256)
        shard-0003.jsonl.tmp        torn spill of an uncommitted shard
        shard-0001.jsonl.quarantined-0   evidence kept by the reconciler

    Commit protocol: seal the writer (flush+fsync the tmp), atomically
    rename it into place, fsync the directory, then write the sidecar
    via the same atomic discipline.  A reader therefore never trusts a
    shard without its sidecar, and a crash between the two steps leaves
    a committed file that resume simply re-verifies or re-runs — never
    a half-trusted manifest.
    """

    def __init__(self, directory: str, backend: DatasetBackend):
        self.directory = directory
        self.backend = backend

    # -- paths --------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    def shard_path(self, shard: int) -> str:
        return os.path.join(
            self.directory,
            f"shard-{shard:04d}{self.backend.shard_extension}",
        )

    def shard_manifest_path(self, shard: int) -> str:
        return os.path.join(self.directory, f"shard-{shard:04d}.manifest.json")

    # -- campaign manifest --------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    def read_manifest(self) -> Dict[str, object]:
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def write_manifest(self, fingerprint: str,
                       tasks: Sequence[Sequence[DeviceRange]]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        write_atomic(
            self.manifest_path,
            json.dumps(
                {
                    "version": MANIFEST_VERSION,
                    "fingerprint": fingerprint,
                    "backend": self.backend.name,
                    "shards": len(tasks),
                    "tasks": task_descriptors(tasks),
                },
                indent=2,
                sort_keys=True,
            ).encode("utf-8"),
        )

    # -- shard commits ------------------------------------------------------

    def commit_shard(
        self,
        shard: int,
        task: Sequence[DeviceRange],
        records: int,
        sha256: str,
    ) -> None:
        """Atomically promote a sealed ``*.tmp`` spill to committed."""
        path = self.shard_path(shard)
        os.replace(path + ".tmp", path)
        _fsync_parent(path)
        write_atomic(
            self.shard_manifest_path(shard),
            json.dumps(
                {
                    "version": MANIFEST_VERSION,
                    "shard": shard,
                    "file": os.path.basename(path),
                    "backend": self.backend.name,
                    "ranges": [_range_descriptor(item) for item in task],
                    "records": records,
                    "sha256": sha256,
                },
                indent=2,
                sort_keys=True,
            ).encode("utf-8"),
        )

    def read_shard_manifest(self, shard: int) -> Optional[Dict[str, object]]:
        try:
            with open(self.shard_manifest_path(shard), "r",
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def is_committed(self, shard: int) -> bool:
        return (
            self.read_shard_manifest(shard) is not None
            and os.path.exists(self.shard_path(shard))
        )

    def verify_shard(self, shard: int) -> ShardState:
        """Deep-verify one shard's bytes against its manifest sidecar."""
        manifest = self.read_shard_manifest(shard)
        path = self.shard_path(shard)
        if manifest is None:
            if os.path.exists(path + ".tmp"):
                return ShardState(
                    shard, "uncommitted", 0,
                    "sealed or torn spill without a manifest",
                )
            if os.path.exists(path):
                return ShardState(
                    shard, "uncommitted", 0,
                    "shard file without a manifest sidecar",
                )
            return ShardState(shard, "missing", 0, "never committed")
        scan = self.backend.scan(path)
        if scan.status != "ok":
            return ShardState(shard, scan.status, scan.records, scan.detail)
        if scan.records != manifest["records"] or scan.sha256 != manifest["sha256"]:
            return ShardState(
                shard, "mismatch", scan.records,
                f"manifest promises {manifest['records']} records "
                f"sha {str(manifest['sha256'])[:12]}, file holds "
                f"{scan.records} records sha {scan.sha256[:12]}",
            )
        return ShardState(shard, "ok", scan.records)

    def quarantine(self, shard: int) -> Optional[str]:
        """Move a suspect shard file aside — evidence is never deleted."""
        path = self.shard_path(shard)
        if not os.path.exists(path):
            return None
        for attempt in range(1000):
            target = f"{path}.quarantined-{attempt}"
            if not os.path.exists(target):
                os.replace(path, target)
                _fsync_parent(path)
                return target
        raise DatasetError(f"quarantine namespace exhausted for {path}")


def _fsync_parent(path: str) -> None:
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- shard execution ----------------------------------------------------------


def _spill_checkpoint_shard(
    run_token: int,
    shard: int,
    ranges: Sequence[DeviceRange],
    path: str,
    backend_name: str,
    crash: Optional[CrashPoint] = None,
) -> Tuple[int, str]:
    """Worker task: run one shard's ranges through a backend ShardWriter.

    Streams records into ``path + '.tmp'`` and returns ``(records,
    sha256)`` once sealed; the parent performs the commit (rename +
    manifest) so a dying worker can never leave a committed-looking
    file.  Runs in pool workers via the campaign's warm-pool machinery
    and in-process for serial executors — the same code path, so crash
    semantics and bytes are identical.
    """
    campaign = _worker_campaign(run_token)
    return _spill_shard_with(campaign, shard, ranges, path, backend_name, crash)


def _spill_shard_with(
    campaign: Campaign,
    shard: int,
    ranges: Sequence[DeviceRange],
    path: str,
    backend_name: str,
    crash: Optional[CrashPoint] = None,
) -> Tuple[int, str]:
    writer = get_backend(backend_name).open_shard(path)
    crashing = crash is not None and crash.shard == shard
    try:
        for record in campaign._iter_execute(campaign.devices_in_ranges(ranges)):
            writer.append(record.to_json_line())
            if crashing and writer.records >= crash.after_records:
                writer.flush()
                if crash.hard_kill:
                    # A killed worker: partial spill bytes are on disk,
                    # no exception, no cleanup, no commit.
                    os._exit(9)
                raise CampaignInterrupted(
                    f"injected crash in shard {shard} after "
                    f"{writer.records} records",
                )
    except BaseException:
        # Close without sealing: the tmp spill stays on disk exactly as
        # a crash would leave it (resume re-runs the shard).
        writer.abort()
        raise
    return writer.seal()


def _run_missing_shards(
    campaign: Campaign,
    store: CheckpointStore,
    tasks: Sequence[Sequence[DeviceRange]],
    missing: Sequence[int],
    crash: Optional[CrashPoint] = None,
    stop_after_shards: Optional[int] = None,
) -> int:
    """Execute and commit the given shards; returns how many committed.

    Pool mode (a :class:`ShardedCampaign` with workers) ships shards to
    the campaign's warm worker pool and commits each as its future
    completes; serial mode runs them in-process on one
    pristine-prepared campaign (ranges never share cache scope, so any
    subset reproduces the uninterrupted stream's bytes).  Either a
    :class:`CrashPoint` firing or ``stop_after_shards`` raises
    :class:`CampaignInterrupted` with everything already committed left
    durable on disk.
    """
    if not missing:
        return 0
    budget = len(missing) if stop_after_shards is None else stop_after_shards
    committed = 0
    use_pool = isinstance(campaign, ShardedCampaign) and campaign.workers > 0
    if not use_pool:
        campaign._prepare_serial_run()
        for shard in missing:
            if committed >= budget:
                raise CampaignInterrupted(
                    f"stopped after {committed} shard commits",
                    committed=committed, total=len(tasks),
                )
            records, sha = _spill_shard_with(
                campaign, shard, tasks[shard], store.shard_path(shard),
                store.backend.name, crash,
            )
            store.commit_shard(shard, tasks[shard], records, sha)
            committed += 1
        return committed

    token = campaign._next_run_token()
    pool = campaign._ensure_pool(
        min(campaign.workers, len(campaign.ranges)) or 1
    )
    futures = {
        pool.submit(
            _spill_checkpoint_shard, token, shard, tasks[shard],
            store.shard_path(shard), store.backend.name, crash,
        ): shard
        for shard in missing
    }
    pending = set(futures)
    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                shard = futures[future]
                records, sha = future.result()
                store.commit_shard(shard, tasks[shard], records, sha)
                committed += 1
            if committed >= budget and pending:
                # Interrupt: drop queued shards, let running ones
                # finish their (uncommitted, harmless) spills so the
                # warm pool stays reusable for the resume run.
                for future in pending:
                    future.cancel()
                wait(pending)
                raise CampaignInterrupted(
                    f"stopped after {committed} shard commits",
                    committed=committed, total=len(tasks),
                )
    except BrokenProcessPool as exc:
        # A worker died mid-spill (killed, OOM, injected os._exit):
        # its partial shard is on disk, uncommitted.  The pool is
        # unusable; close it so a resume boots a fresh one.
        campaign.close(wait=False)
        raise CampaignInterrupted(
            f"worker process died after {committed} of {len(missing)} "
            f"pending shards committed: {exc}",
            committed=committed, total=len(tasks),
        ) from exc
    except CampaignInterrupted:
        raise
    except BaseException:
        for future in pending:
            future.cancel()
        wait(pending)
        raise
    return committed


def _merge_committed(
    campaign: Campaign,
    store: CheckpointStore,
    output_path: str,
    shard_count: int,
    sink=None,
) -> Tuple[int, str, Dict[str, object]]:
    """K-way merge every committed shard into the final archive."""
    backend = store.backend
    streams = (
        backend.iter_lines(store.shard_path(shard))
        for shard in range(shard_count)
    )
    count, digest = backend.write_archive_lines(
        output_path,
        streams,
        metadata=campaign._streaming_metadata(),
        sink=sink.ingest_line if sink is not None else None,
    )
    expected = 0
    for shard in range(shard_count):
        manifest = store.read_shard_manifest(shard)
        expected += int(manifest["records"]) if manifest else 0
    if count != expected:
        raise DatasetError(
            f"merged archive holds {count} records but shard manifests "
            f"promise {expected} — refusing to trust the merge"
        )
    metadata = campaign._streaming_metadata()
    metadata["experiments"] = count
    return count, digest, metadata


def default_checkpoint_dir(output_path: str) -> str:
    return output_path + ".shards"


def run_checkpointed(
    campaign: Campaign,
    output_path: str,
    backend: str = "jsonl",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    sink=None,
    verify: bool = False,
    stop_after_shards: Optional[int] = None,
    crash: Optional[CrashPoint] = None,
) -> Dict[str, object]:
    """Run a campaign as durable per-shard commits, resumably.

    Fresh runs execute every shard of the campaign's plan, committing
    each with a manifest sidecar before merging the shards into
    ``output_path``.  With ``resume=True`` an existing checkpoint
    directory is replayed: committed shards are trusted from their
    manifests (deep-verified when ``verify=True``; anything suspect is
    quarantined and re-run) and only missing shards execute.  The
    merged archive — and its content hash — is byte-identical to an
    uninterrupted run, for every backend and shard plan, because shard
    streams are pure functions of the config.

    Refuses a *fresh* run over an existing checkpoint directory (that
    is either an accident or a resume), and a resume whose fingerprint
    (world config, campaign config, shard plan, backend) does not match
    the manifest.

    ``sink``, as on :meth:`ShardedCampaign.run_streaming`, receives
    every merged line via ``ingest_line``.  ``stop_after_shards`` and
    ``crash`` are the bench/test interrupt hooks; both leave a valid
    checkpoint directory behind and raise :class:`CampaignInterrupted`.

    Returns the ``run_streaming`` result dict plus ``"resumed_shards"``
    / ``"executed_shards"`` / ``"total_shards"``.
    """
    store = CheckpointStore(
        checkpoint_dir or default_checkpoint_dir(output_path),
        get_backend(backend),
    )
    tasks = campaign_shard_tasks(campaign)
    fingerprint = campaign_fingerprint(campaign, tasks, store.backend)

    if store.exists():
        if not resume:
            raise DatasetError(
                f"checkpoint directory {store.directory!r} already holds a "
                f"campaign manifest; pass resume=True to continue it or "
                f"remove the directory to start over"
            )
        manifest = store.read_manifest()
        if manifest.get("fingerprint") != fingerprint:
            raise DatasetError(
                "checkpoint manifest was written by a different campaign "
                f"(fingerprint {str(manifest.get('fingerprint'))[:12]} != "
                f"{fingerprint[:12]}); refusing to mix shards across runs"
            )
    else:
        store.write_manifest(fingerprint, tasks)

    resumed: List[int] = []
    missing: List[int] = []
    for shard in range(len(tasks)):
        if not store.is_committed(shard):
            missing.append(shard)
            continue
        if verify:
            state = store.verify_shard(shard)
            if state.status != "ok":
                store.quarantine(shard)
                missing.append(shard)
                continue
        resumed.append(shard)

    executed = _run_missing_shards(
        campaign, store, tasks, missing,
        crash=crash, stop_after_shards=stop_after_shards,
    )
    count, digest, metadata = _merge_committed(
        campaign, store, output_path, len(tasks), sink=sink
    )
    return {
        "experiments": count,
        "content_hash": digest,
        "path": output_path,
        "metadata": metadata,
        "resumed_shards": len(resumed),
        "executed_shards": executed,
        "total_shards": len(tasks),
    }


class ReconcileReport:
    """What the healing pass found and did, shard by shard."""

    def __init__(self, rows: List[ShardState], result: Dict[str, object]):
        self.rows = rows
        self.result = result

    @property
    def healed(self) -> List[ShardState]:
        return [row for row in self.rows if row.status != "ok"]

    def summary(self) -> str:
        ok = sum(1 for row in self.rows if row.status == "ok")
        return (
            f"reconcile: {ok}/{len(self.rows)} shards verified clean, "
            f"{len(self.healed)} healed; archive "
            f"{self.result['experiments']} records, hash "
            f"{self.result['content_hash'][:12]}"
        )

    def table(self) -> str:
        lines = [f"{'shard':>5}  {'status':<12}{'records':>8}  action"]
        for row in self.rows:
            action = row.action or "kept"
            detail = f"  ({row.detail})" if row.detail else ""
            lines.append(
                f"{row.shard:>5}  {row.status:<12}{row.records:>8}  "
                f"{action}{detail}"
            )
        return "\n".join(lines)


def reconcile(
    campaign: Campaign,
    output_path: str,
    backend: str = "jsonl",
    checkpoint_dir: Optional[str] = None,
    sink=None,
) -> ReconcileReport:
    """Heal a checkpointed campaign: verify, quarantine, re-run, re-merge.

    Every shard is deep-verified against its manifest sidecar
    (:meth:`CheckpointStore.verify_shard`).  Shards that are missing,
    truncated, corrupt, or that disagree with their manifest are
    **quarantined** — moved aside with a ``.quarantined-N`` suffix,
    never deleted, because a disagreement means *something* is wrong
    and the evidence may be the only way to find out what — then
    re-executed from the campaign plan and re-committed.  The final
    archive is re-merged either way, so the pass always ends with
    archive == manifests == bytes.
    """
    store = CheckpointStore(
        checkpoint_dir or default_checkpoint_dir(output_path),
        get_backend(backend),
    )
    if not store.exists():
        raise DatasetError(
            f"no campaign manifest under {store.directory!r}; nothing to "
            f"reconcile (run with checkpoints first)"
        )
    tasks = campaign_shard_tasks(campaign)
    fingerprint = campaign_fingerprint(campaign, tasks, store.backend)
    manifest = store.read_manifest()
    if manifest.get("fingerprint") != fingerprint:
        raise DatasetError(
            "checkpoint manifest was written by a different campaign "
            f"(fingerprint {str(manifest.get('fingerprint'))[:12]} != "
            f"{fingerprint[:12]}); refusing to reconcile across runs"
        )

    rows: List[ShardState] = []
    bad: List[int] = []
    for shard in range(len(tasks)):
        state = store.verify_shard(shard)
        if state.status == "ok":
            state.action = "kept"
        else:
            target = store.quarantine(shard)
            state.action = (
                "quarantined+rerun" if target is not None else "rerun"
            )
            bad.append(shard)
        rows.append(state)

    _run_missing_shards(campaign, store, tasks, bad)
    count, digest, metadata = _merge_committed(
        campaign, store, output_path, len(tasks), sink=sink
    )
    return ReconcileReport(
        rows,
        {
            "experiments": count,
            "content_hash": digest,
            "path": output_path,
            "metadata": metadata,
            "healed_shards": len(bad),
            "total_shards": len(tasks),
        },
    )


__all__ = [
    "CampaignInterrupted",
    "CheckpointStore",
    "CrashPoint",
    "ReconcileReport",
    "ShardState",
    "campaign_fingerprint",
    "campaign_shard_tasks",
    "default_checkpoint_dir",
    "reconcile",
    "run_checkpointed",
    "task_descriptors",
]
