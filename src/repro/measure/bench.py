"""Campaign and substrate benchmarks.

Performance work on the simulator is held to two commitments at once:

* **Throughput** — experiments per second, serial and sharded-parallel
  (:class:`~repro.measure.campaign.ParallelCampaign`).
* **Exactness** — the parallel dataset must hash identically to the
  serial one; a benchmark that got faster by diverging is a regression.

``run_benchmarks`` measures both, plus microbenchmarks of the hot
substrate primitives (longest-prefix-match AS lookup, the memoised WAN
latency model, great-circle distance), and writes the result to
``BENCH_campaign.json`` so successive PRs leave a comparable trail.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.addressing import Prefix, int_to_ip
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.world import WorldConfig, build_world
from repro.geo.coordinates import GeoPoint
from repro.geo.latency import WanLatencyModel

#: Default output artifact, at the repository root.
BENCH_OUTPUT = "BENCH_campaign.json"


@dataclass
class BenchScale:
    """Knobs for the campaign-throughput benchmark."""

    seed: int = 2014
    device_scale: float = 0.5
    duration_days: float = 7.0
    interval_hours: float = 12.0
    workers: int = 0  # 0 = min(carriers, cpus)


# -- campaign throughput ------------------------------------------------------


def bench_campaign(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Serial vs parallel campaign throughput, with the identity check."""
    from repro.measure.campaign import Campaign, CampaignConfig, ParallelCampaign

    scale = scale or BenchScale()
    world_config = WorldConfig(seed=scale.seed)
    campaign_config = CampaignConfig(
        device_scale=scale.device_scale,
        duration_days=scale.duration_days,
        interval_hours=scale.interval_hours,
    )

    serial_campaign = Campaign(build_world(world_config), campaign_config)
    started = time.perf_counter()
    serial = serial_campaign.run()
    serial_s = time.perf_counter() - started

    workers = scale.workers or min(
        len(serial_campaign.world.operators), os.cpu_count() or 1
    )
    parallel_campaign = ParallelCampaign(
        build_world(world_config), campaign_config, workers=workers
    )
    started = time.perf_counter()
    parallel = parallel_campaign.run()
    parallel_s = time.perf_counter() - started

    serial_hash = serial.content_hash()
    parallel_hash = parallel.content_hash()
    experiments = len(serial)
    return {
        "device_scale": scale.device_scale,
        "duration_days": scale.duration_days,
        "interval_hours": scale.interval_hours,
        "devices": len(serial_campaign.devices),
        "experiments": experiments,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "serial_exp_per_s": round(experiments / serial_s, 1),
        "parallel_exp_per_s": round(experiments / parallel_s, 1),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "dataset_hash": serial_hash,
        "hash_match": serial_hash == parallel_hash,
    }


# -- substrate microbenchmarks ------------------------------------------------


def _synthetic_internet(systems: int, prefixes_per_system: int) -> VirtualInternet:
    """An internet of ``systems`` ASes with nested/overlapping prefixes.

    Each AS announces one /16 plus ``prefixes_per_system - 1`` more-
    specific /24s carved from the *previous* AS's /16, so longest-prefix
    match genuinely decides ownership (as it does for operator-CDN
    prefixes nested inside carrier space).
    """
    net = VirtualInternet()
    all_systems: List[AutonomousSystem] = []
    for index in range(systems):
        system = AutonomousSystem(
            asn=65000 + index,
            name=f"bench-as-{index}",
            kind=ASKind.TRANSIT,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        system.add_prefix(Prefix.parse(f"10.{index}.0.0/16"))
        all_systems.append(system)
        net.register_system(system)
    for index, system in enumerate(all_systems):
        parent = (index - 1) % systems
        for sub in range(prefixes_per_system - 1):
            system.add_prefix(Prefix.parse(f"10.{parent}.{sub}.0/24"))
    return net


def bench_asn_lookup(
    systems: int = 50, prefixes_per_system: int = 8, lookups: int = 20_000
) -> Dict[str, object]:
    """Indexed ``asn_of`` against the linear reference scan."""
    net = _synthetic_internet(systems, prefixes_per_system)
    addresses = [
        int_to_ip((10 << 24) | ((i % systems) << 16) | ((i * 7919) & 0xFFFF))
        for i in range(lookups)
    ]

    started = time.perf_counter()
    indexed = [net.asn_of(address) for address in addresses]
    indexed_s = time.perf_counter() - started

    started = time.perf_counter()
    linear = [net.asn_of_linear(address) for address in addresses]
    linear_s = time.perf_counter() - started

    if indexed != linear:  # pragma: no cover - tripwire, tested separately
        raise AssertionError("indexed asn_of diverged from the linear scan")
    return {
        "systems": systems,
        "prefixes": systems * prefixes_per_system,
        "lookups": lookups,
        "indexed_s": round(indexed_s, 4),
        "linear_s": round(linear_s, 4),
        "indexed_per_s": round(lookups / indexed_s),
        "linear_per_s": round(lookups / linear_s),
        "speedup": round(linear_s / indexed_s, 1),
    }


def bench_primitives(iterations: int = 200_000) -> Dict[str, object]:
    """Throughput of the per-probe hot primitives."""
    model = WanLatencyModel()
    src = GeoPoint(latitude=41.88, longitude=-87.63)
    dst = GeoPoint(latitude=34.05, longitude=-118.24)

    model.base_rtt_ms(src, dst)  # warm the memo: steady-state is hits
    started = time.perf_counter()
    for _ in range(iterations):
        model.base_rtt_ms(src, dst)
    base_rtt_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(iterations):
        src.distance_km(dst)
    distance_s = time.perf_counter() - started

    return {
        "iterations": iterations,
        "base_rtt_memoised_per_s": round(iterations / base_rtt_s),
        "distance_km_per_s": round(iterations / distance_s),
    }


# -- entry point --------------------------------------------------------------


def run_benchmarks(
    scale: Optional[BenchScale] = None,
    output_path: Optional[str] = BENCH_OUTPUT,
) -> Dict[str, object]:
    """Run every benchmark; write ``output_path`` unless it is None."""
    report: Dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "campaign": bench_campaign(scale),
        "asn_lookup": bench_asn_lookup(),
        "primitives": bench_primitives(),
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark report."""
    campaign = report["campaign"]
    asn = report["asn_lookup"]
    primitives = report["primitives"]
    lines = [
        f"cpus: {report['cpu_count']}",
        (
            f"campaign: {campaign['experiments']} experiments | "
            f"serial {campaign['serial_exp_per_s']}/s | "
            f"parallel(x{campaign['workers']}) "
            f"{campaign['parallel_exp_per_s']}/s | "
            f"speedup {campaign['parallel_speedup']}x | "
            f"hash match: {campaign['hash_match']}"
        ),
        (
            f"asn_of: indexed {asn['indexed_per_s']}/s vs "
            f"linear {asn['linear_per_s']}/s ({asn['speedup']}x) "
            f"over {asn['systems']} ASes / {asn['prefixes']} prefixes"
        ),
        (
            f"primitives: base_rtt {primitives['base_rtt_memoised_per_s']}/s "
            f"(memoised), distance_km {primitives['distance_km_per_s']}/s"
        ),
    ]
    return "\n".join(lines)
