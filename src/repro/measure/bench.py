"""Campaign and substrate benchmarks.

Performance work on the simulator is held to two commitments at once:

* **Throughput** — experiments per second, serial and sharded-parallel
  (:class:`~repro.measure.campaign.ParallelCampaign`).
* **Exactness** — the parallel dataset must hash identically to the
  serial one; a benchmark that got faster by diverging is a regression.

``run_benchmarks`` measures both, plus microbenchmarks of the hot
substrate primitives (longest-prefix-match AS lookup, the memoised WAN
latency model, great-circle distance), and writes the result to
``BENCH_campaign.json`` so successive PRs leave a comparable trail.
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.addressing import Prefix, int_to_ip
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.world import WorldConfig, build_world
from repro.geo.coordinates import GeoPoint
from repro.geo.latency import WanLatencyModel

#: Default output artifact, at the repository root.
BENCH_OUTPUT = "BENCH_campaign.json"

#: Content hash of the smoke-scale campaign (seed 2014, device_scale
#: 0.05, 14 days, 12 h interval) under the fault-free scenario.  The
#: transport layer's byte-identity contract pins it: ``bench_check``
#: and the determinism tests fail if a fault-free campaign ever drifts
#: from the pre-transport engine's bytes.  Re-pinned when CDN mapping
#: decisions became order-independent (per-/24 canonical anchors): the
#: previous bytes encoded whichever resolver happened to query each /24
#: first, which is exactly the order-dependence the fix removed.
SMOKE_DATASET_SHA256 = (
    "42b940625b2c4b19a61f3adc369eac4c1fc888edf11be3266330dca2ec281d1a"
)


@dataclass
class BenchScale:
    """Knobs for the campaign-throughput benchmark."""

    seed: int = 2014
    device_scale: float = 0.5
    duration_days: float = 7.0
    interval_hours: float = 12.0
    workers: int = 0  # 0 = min(carriers, cpus)


def smoke_scale(seed: int = 2014, workers: int = 0) -> BenchScale:
    """A ~30s scale for ``repro-study bench --smoke`` / ``make bench-smoke``."""
    return BenchScale(
        seed=seed,
        device_scale=0.05,
        duration_days=14.0,
        interval_hours=12.0,
        workers=workers,
    )


# -- campaign throughput ------------------------------------------------------


def bench_campaign(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Serial vs parallel vs sharded throughput, with the identity check."""
    from repro.measure.campaign import (
        Campaign,
        CampaignConfig,
        ParallelCampaign,
        ShardedCampaign,
        select_executor,
    )

    scale = scale or BenchScale()
    world_config = WorldConfig(seed=scale.seed)
    campaign_config = CampaignConfig(
        device_scale=scale.device_scale,
        duration_days=scale.duration_days,
        interval_hours=scale.interval_hours,
    )

    serial_campaign = Campaign(build_world(world_config), campaign_config)
    started = time.perf_counter()
    serial = serial_campaign.run()
    serial_s = time.perf_counter() - started

    workers = scale.workers or min(
        len(serial_campaign.world.operators), os.cpu_count() or 1
    )
    with ParallelCampaign(
        build_world(world_config), campaign_config, workers=workers
    ) as parallel_campaign:
        started = time.perf_counter()
        parallel = parallel_campaign.run()
        parallel_s = time.perf_counter() - started

    with ShardedCampaign(
        build_world(world_config), campaign_config, workers=workers
    ) as sharded_campaign:
        started = time.perf_counter()
        sharded = sharded_campaign.run()
        sharded_s = time.perf_counter() - started

    serial_hash = serial.content_hash()
    parallel_hash = parallel.content_hash()
    sharded_hash = sharded.content_hash()
    experiments = len(serial)
    return {
        # Delivery-outcome tally of every send the serial campaign made;
        # run_benchmarks lifts this into the report's transport section.
        "transport_counters": (
            serial_campaign.world.transport.counters.as_dict()
        ),
        "device_scale": scale.device_scale,
        "duration_days": scale.duration_days,
        "interval_hours": scale.interval_hours,
        "devices": len(serial_campaign.devices),
        "experiments": experiments,
        "workers": workers,
        "shards": sharded_campaign.shards,
        "device_ranges": len(sharded_campaign.ranges),
        # What an `--executor auto` run would pick on this box (sized
        # against the sub-carrier device-range count, not carriers).
        "executor": select_executor(
            "auto", shard_count=len(sharded_campaign.ranges)
        ),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "sharded_s": round(sharded_s, 3),
        "serial_exp_per_s": round(experiments / serial_s, 1),
        "parallel_exp_per_s": round(experiments / parallel_s, 1),
        "sharded_exp_per_s": round(experiments / sharded_s, 1),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "sharded_speedup": round(serial_s / sharded_s, 2),
        "dataset_hash": serial_hash,
        "hash_match": serial_hash == parallel_hash == sharded_hash,
    }


# -- warm worker-pool economics -----------------------------------------------


def bench_workers(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Worker-pool economics: snapshot boots, pool reuse, merge overlap.

    Three measurements behind the warm-pool executor design:

    * **snapshot vs rebuild bootstrap** — one ``pickle.loads`` of the
      parent's pristine world snapshot vs one ``build_world``, best of
      three, in microseconds.  This is the per-worker cost a pool
      initializer pays under each boot mode.
    * **pool reuse** — two streaming runs on one
      :class:`~repro.measure.campaign.ShardedCampaign`; the second must
      reuse the first's live pool (``pool_stats``), paying zero
      interpreter spawns.
    * **overlap advantage** — ``run_streaming`` with the tailing merge
      (fold/serialize/hash advances while shards still execute) vs the
      wait-then-merge reference path, in seconds.  The overlapped run
      goes *first*, on the cold pool, so the advantage reported here is
      the conservative bound; byte identity between the two runs is
      asserted alongside.
    """
    import tempfile

    from repro.core.world import boot_world, snapshot_world
    from repro.measure.campaign import (
        CampaignConfig,
        ShardedCampaign,
        resolve_mp_context,
    )

    scale = scale or BenchScale()
    world_config = WorldConfig(seed=scale.seed)
    campaign_config = CampaignConfig(
        device_scale=scale.device_scale,
        duration_days=scale.duration_days,
        interval_hours=scale.interval_hours,
    )

    world = build_world(world_config)
    snapshot = snapshot_world(world)
    snapshot_boots: List[float] = []
    rebuild_boots: List[float] = []
    for _ in range(3):
        started = time.perf_counter()
        _, mode = boot_world(snapshot, world_config)
        snapshot_boots.append(time.perf_counter() - started)
        started = time.perf_counter()
        boot_world(None, world_config)
        rebuild_boots.append(time.perf_counter() - started)

    workers = scale.workers or min(os.cpu_count() or 1, 4)
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-workers-")
    try:
        with ShardedCampaign(
            build_world(world_config), campaign_config, workers=workers
        ) as campaign:
            started = time.perf_counter()
            overlapped = campaign.run_streaming(
                os.path.join(tmpdir, "overlapped.jsonl"), overlap=True
            )
            overlapped_s = time.perf_counter() - started
            started = time.perf_counter()
            reference = campaign.run_streaming(
                os.path.join(tmpdir, "reference.jsonl"), overlap=False
            )
            reference_s = time.perf_counter() - started
            pool_stats = dict(campaign.pool_stats)
            shards = campaign.shards
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    snapshot_boot = min(snapshot_boots)
    rebuild_boot = min(rebuild_boots)
    return {
        "snapshot_bytes": len(snapshot or b""),
        "snapshot_boot_mode": mode,
        "snapshot_boot_us": round(snapshot_boot * 1e6, 1),
        "rebuild_boot_us": round(rebuild_boot * 1e6, 1),
        "snapshot_speedup": round(rebuild_boot / max(snapshot_boot, 1e-9), 2),
        "mp_context": resolve_mp_context("auto"),
        "workers": workers,
        "shards": shards,
        "pools_created": pool_stats["created"],
        "pool_reuse_hits": pool_stats["reused"],
        "overlapped_s": round(overlapped_s, 3),
        "reference_s": round(reference_s, 3),
        "overlap_advantage_s": round(reference_s - overlapped_s, 3),
        "hash_match": overlapped["content_hash"] == reference["content_hash"],
    }


# -- per-stage experiment breakdown -------------------------------------------

#: Probe-session method -> reported stage.  ``identify_resolver`` is
#: deliberately absent: it delegates to ``dns_local``/``dns_public``,
#: which are timed where they run, so wrapping it would double-count.
_STAGE_OF_METHOD: Dict[str, str] = {
    "dns_local": "dns",
    "dns_public": "dns",
    "bootstrap_ping": "ping",
    "ping_ip": "ping",
    "ping_configured_resolver": "ping",
    "ping_public_resolver": "ping",
    "traceroute_ip": "traceroute",
    "http_get": "http",
}

STAGES = ("dns", "ping", "traceroute", "http", "serialize")


def _timed_session_class(totals: Dict[str, float], counts: Dict[str, int]):
    """A DeviceProbeSession subclass that meters each probe method."""
    from repro.measure.probes import DeviceProbeSession

    class TimedProbeSession(DeviceProbeSession):
        pass

    def _wrap(name: str, stage: str):
        original = getattr(DeviceProbeSession, name)

        def timed(self, *args, **kwargs):
            started = time.perf_counter()
            result = original(self, *args, **kwargs)
            totals[stage] += time.perf_counter() - started
            counts[stage] += 1
            return result

        timed.__name__ = name
        setattr(TimedProbeSession, name, timed)

    # Exact signatures for the dns methods (no *args/**kwargs packing):
    # the dns stage is the benchmark's headline per-call figure, so the
    # meter's own overhead on it is kept to the two clock reads.
    def dns_local(self, qname, now, attempt=1):
        started = time.perf_counter()
        result = DeviceProbeSession.dns_local(self, qname, now, attempt)
        totals["dns"] += time.perf_counter() - started
        counts["dns"] += 1
        return result

    def dns_public(self, kind, qname, now, attempt=1):
        started = time.perf_counter()
        result = DeviceProbeSession.dns_public(self, kind, qname, now, attempt)
        totals["dns"] += time.perf_counter() - started
        counts["dns"] += 1
        return result

    TimedProbeSession.dns_local = dns_local
    TimedProbeSession.dns_public = dns_public

    for name, stage in _STAGE_OF_METHOD.items():
        if name in ("dns_local", "dns_public"):
            continue
        _wrap(name, stage)
    return TimedProbeSession


#: DNS sub-phases reported under ``stages`` (see ``_instrument_dns``).
DNS_SUBPHASES = ("dns_cache_hit", "dns_walk", "dns_cdn_select")


def _instrument_dns(totals: Dict[str, float], counts: Dict[str, int]):
    """Meter the DNS hot path's sub-phases; returns a restore callable.

    Patches, at class level, the three nested layers of one resolution:
    ``RecursiveEngine.resolve`` (everything), ``_resolve_upstream`` (the
    authority walk a cache miss pays, whether replayed from a compiled
    plan or walked generically), and ``CDNProvider.select_replicas``
    (replica selection inside a CDN authority's answer).  Subtracting
    nested totals yields the exclusive split reported as
    ``dns_cache_hit_s`` (cache layer: peek, result building, puts),
    ``dns_walk_s`` (authority chain minus CDN selection) and
    ``dns_cdn_select_s``.  The wrappers only read the clock, so the
    metered campaign consumes exactly the streams a plain run would.
    """
    from repro.cdn.provider import CDNProvider
    from repro.dns.recursive import RecursiveEngine

    original_resolve = RecursiveEngine.resolve
    original_upstream = RecursiveEngine._resolve_upstream
    original_select = CDNProvider.select_replicas

    # Exact signatures (no *args/**kwargs packing): the wrappers sit on
    # the hottest call paths being measured, so their own overhead must
    # stay minimal.
    def timed_resolve(
        self, qname, qtype, now, stream, client_subnet=None, cache_scope=None
    ):
        started = time.perf_counter()
        try:
            return original_resolve(
                self, qname, qtype, now, stream, client_subnet, cache_scope
            )
        finally:
            totals["resolve"] += time.perf_counter() - started
            counts["resolve"] += 1

    def timed_upstream(self, qname, qtype, now, stream, client_subnet):
        started = time.perf_counter()
        try:
            return original_upstream(
                self, qname, qtype, now, stream, client_subnet
            )
        finally:
            totals["upstream"] += time.perf_counter() - started
            counts["upstream"] += 1

    def timed_select(self, spec, resolver_ip, now, client_subnet=None):
        started = time.perf_counter()
        try:
            return original_select(self, spec, resolver_ip, now, client_subnet)
        finally:
            totals["cdn"] += time.perf_counter() - started
            counts["cdn"] += 1

    RecursiveEngine.resolve = timed_resolve
    RecursiveEngine._resolve_upstream = timed_upstream
    CDNProvider.select_replicas = timed_select

    def restore() -> None:
        RecursiveEngine.resolve = original_resolve
        RecursiveEngine._resolve_upstream = original_upstream
        CDNProvider.select_replicas = original_select

    return restore


def bench_stage_breakdown(
    scale: Optional[BenchScale] = None,
) -> Dict[str, object]:
    """Wall time per experiment stage: dns/ping/traceroute/http/serialize.

    Runs a (small, serial) campaign with an instrumented probe session,
    then times JSONL emission of the produced records.  The instrumented
    run consumes exactly the streams the plain run would — the wrappers
    only read the clock — so the campaign it measures is the campaign
    the study runs.
    """
    from repro.measure.campaign import Campaign, CampaignConfig

    # Collect debris left by whatever ran before (run_benchmarks runs the
    # big campaign first): the breakdown should time *this* campaign, not
    # the previous benchmark's garbage.
    gc.collect()

    from repro.core.rng import derived_seed_cache_info

    scale = scale or smoke_scale()
    totals: Dict[str, float] = {stage: 0.0 for stage in STAGES}
    counts: Dict[str, int] = {stage: 0 for stage in STAGES}
    derived_before = derived_seed_cache_info()
    campaign = Campaign(
        build_world(WorldConfig(seed=scale.seed)),
        CampaignConfig(
            device_scale=scale.device_scale,
            duration_days=scale.duration_days,
            interval_hours=scale.interval_hours,
        ),
    )
    campaign.runner.session_class = _timed_session_class(totals, counts)
    dns_totals: Dict[str, float] = {"resolve": 0.0, "upstream": 0.0, "cdn": 0.0}
    dns_counts: Dict[str, int] = {"resolve": 0, "upstream": 0, "cdn": 0}
    restore_dns = _instrument_dns(dns_totals, dns_counts)
    try:
        started = time.perf_counter()
        dataset = campaign.run()
        total_s = time.perf_counter() - started
    finally:
        restore_dns()

    started = time.perf_counter()
    for record in dataset:
        record.to_json_line()
    totals["serialize"] = time.perf_counter() - started
    counts["serialize"] = len(dataset)

    probed_s = sum(totals.values())
    report: Dict[str, object] = {
        "experiments": len(dataset),
        "total_s": round(total_s + totals["serialize"], 3),
        "other_s": round(max(total_s - (probed_s - totals["serialize"]), 0.0), 3),
    }
    for stage in STAGES:
        report[f"{stage}_s"] = round(totals[stage], 3)
        report[f"{stage}_calls"] = counts[stage]
        report[f"{stage}_us_per_call"] = (
            round(totals[stage] / counts[stage] * 1e6, 1) if counts[stage] else 0.0
        )
    # Exclusive DNS sub-phase split (see _instrument_dns).
    report["dns_resolve_calls"] = dns_counts["resolve"]
    report["dns_upstream_calls"] = dns_counts["upstream"]
    report["dns_cache_hit_s"] = round(
        max(dns_totals["resolve"] - dns_totals["upstream"], 0.0), 3
    )
    report["dns_walk_s"] = round(
        max(dns_totals["upstream"] - dns_totals["cdn"], 0.0), 3
    )
    report["dns_cdn_select_s"] = round(dns_totals["cdn"], 3)
    report["dns_cdn_select_calls"] = dns_counts["cdn"]
    # Draw-pool counters for the campaign just timed, plus the
    # _derived_from_parts memo's hit/miss delta over the run (the cache
    # is process-global, so only the delta describes this campaign).
    # run_benchmarks lifts this into the report's top-level ``sampler``
    # section.
    derived_after = derived_seed_cache_info()
    report["sampler"] = {
        **campaign.world.rng.pool_stats(),
        "derived_seed_cache": {
            "hits": derived_after["hits"] - derived_before["hits"],
            "misses": derived_after["misses"] - derived_before["misses"],
            "currsize": derived_after["currsize"],
        },
    }
    return report


# -- event scheduler and shard merge ------------------------------------------


def bench_scheduler(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Event-queue throughput and shard-merge memory, in one section.

    Two measurements:

    * **queue drain** — events/s through :class:`ProbeEventQueue` driven
      exactly the way ``Campaign._iter_execute`` drives it (push one
      event per device, pop-then-push-next until empty), with the probe
      work stubbed out, so the number is the scheduling machinery alone;
    * **shard merge** — peak traced allocation of packaging one campaign
      from spilled shard JSONL, both ways the sharded executor's parent
      can do it: the in-memory path (parse every shard back to records,
      ``Dataset.from_shard_streams``, hash — what ``run()`` holds) vs
      the streaming path (``merge_shard_jsonl`` over the files, holding
      one line block — what ``run_streaming()`` holds).  Both must land
      on the serial content hash; the streaming peak is the number that
      makes million-experiment campaigns packageable on a laptop.
    """
    import tempfile
    import tracemalloc

    from repro.measure.campaign import Campaign, CampaignConfig
    from repro.measure.records import (
        Dataset,
        merge_shard_jsonl,
        record_event_key,
    )
    from repro.measure.scheduler import ExperimentSchedule, ProbeEventQueue

    gc.collect()
    scale = scale or smoke_scale()

    # Queue drain: a synthetic month-long hourly population, no probes.
    schedule = ExperimentSchedule(
        start=0.0, end=30 * 86400.0, seed=scale.seed, interval_s=3600.0
    )
    queue = ProbeEventQueue()
    started = time.perf_counter()
    for index in range(256):
        times = schedule.iter_times(f"bench-{index:03d}")
        first = next(times, None)
        if first is not None:
            queue.push(first, "bench", index, 0, times)
    events = 0
    while queue:
        _, carrier, index, sequence, times = queue.pop()
        events += 1
        following = next(times, None)
        if following is not None:
            queue.push(following, carrier, index, sequence + 1, times)
    drain_s = time.perf_counter() - started

    # Shard merge: one smoke campaign, split into four event-ordered
    # shards (the executor's output shape), packaged both ways.
    campaign = Campaign(
        build_world(WorldConfig(seed=scale.seed)),
        CampaignConfig(
            device_scale=scale.device_scale,
            duration_days=scale.duration_days,
            interval_hours=scale.interval_hours,
        ),
    )
    dataset = campaign.run()
    serial_hash = dataset.content_hash()
    shard_count = 4
    shards = [
        sorted(list(dataset)[index::shard_count], key=record_event_key)
        for index in range(shard_count)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-bench-merge-") as tmp:
        paths = []
        for index, shard in enumerate(shards):
            path = os.path.join(tmp, f"shard-{index}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                for record in shard:
                    handle.write(record.to_json_line() + "\n")
            paths.append(path)
        del shards, dataset, campaign

        def lines_of(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield line

        # In-memory packaging: what run()'s parent holds — every shard's
        # records as objects, the merged dataset, and the hash pass.
        gc.collect()
        tracemalloc.start()
        shard_datasets = [Dataset.load(path) for path in paths]
        merged = Dataset.from_shard_streams(
            iter(shard.experiments) for shard in shard_datasets
        )
        in_memory_hash = merged.content_hash()
        in_memory_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        del merged, shard_datasets

        # Streaming packaging: what run_streaming()'s parent holds — one
        # pending line per shard plus the write block.
        output = os.path.join(tmp, "merged.jsonl")
        gc.collect()
        tracemalloc.start()
        with open(output, "w", encoding="utf-8") as handle:
            count, streaming_hash = merge_shard_jsonl(
                (lines_of(path) for path in paths), handle
            )
        streaming_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

    return {
        "queue_events": events,
        "queue_drain_s": round(drain_s, 4),
        "queue_events_per_s": round(events / drain_s),
        "merge_experiments": count,
        "merge_shards": shard_count,
        "in_memory_peak_kb": round(in_memory_peak / 1024, 1),
        "streaming_peak_kb": round(streaming_peak / 1024, 1),
        "streaming_memory_ratio": round(
            in_memory_peak / streaming_peak, 1
        ) if streaming_peak else 0.0,
        "hash_match": serial_hash == in_memory_hash == streaming_hash,
    }


# -- analysis fast path -------------------------------------------------------


def bench_analysis(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """The analysis fast path, end to end (see ``analysis/engine``).

    Times every layer of the ISSUE's tentpole on one campaign:

    * **ingest** — ``Dataset.loads_jsonl`` (the fast path) vs
      ``load_jsonl_reference`` (per-line ``from_json``), hash-checked;
    * **engine scan** — one cold fused scan over the columnar
      projections (plus the projection build itself);
    * **regeneration** — steady-state full table+figure rendering via
      the engine vs the original per-function walks.  Steady state is
      what the ``benchmarks/bench_*`` suites and repeated report/claim
      renders measure: the dataset is unchanged, so the engine's query
      cache holds;
    * **result cache** — a whole-report replay through
      :class:`~repro.analysis.result_cache.AnalysisResultCache`
      (includes the content hash that keys it).

    ``byte_identical`` asserts the fused document, the reference
    document, and the datasets' content hashes all agree — a benchmark
    that got faster by diverging is a regression, same rule as the
    campaign benchmark's ``hash_match``.
    """
    from io import StringIO

    from repro.analysis.engine import get_engine
    from repro.analysis.result_cache import AnalysisResultCache
    from repro.analysis.suite import (
        _FUSED,
        _REFERENCE,
        _render_figures,
        _render_tables,
        regenerate_report,
    )
    from repro.core.study import CellularDNSStudy, StudyConfig
    from repro.measure.records import Dataset

    gc.collect()
    scale = scale or smoke_scale()
    study = CellularDNSStudy(
        StudyConfig(
            seed=scale.seed,
            device_scale=scale.device_scale,
            duration_days=scale.duration_days,
            interval_hours=scale.interval_hours,
            executor="serial",
        )
    )
    dataset = study.dataset
    experiments = len(dataset)
    dataset_hash = dataset.content_hash()

    buffer = StringIO()
    dataset.dump_jsonl(buffer)
    text = buffer.getvalue()

    def best_of(render, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            render()
            best = min(best, time.perf_counter() - started)
        return best

    # Best-of-3 on both ingest paths: a single cold call at smoke scale
    # is dominated by first-touch effects, not the decoder.
    loaded = Dataset.loads_jsonl(text)
    loaded_reference = Dataset.load_jsonl_reference(text.split("\n"))
    load_s = best_of(lambda: Dataset.loads_jsonl(text))
    load_reference_s = best_of(
        lambda: Dataset.load_jsonl_reference(text.split("\n"))
    )
    load_hash_match = (
        loaded.content_hash() == dataset_hash
        and loaded_reference.content_hash() == dataset_hash
    )

    dataset._invalidate()
    started = time.perf_counter()
    get_engine(dataset)
    engine_scan_s = time.perf_counter() - started

    # Warm both paths once (fills the engine query cache / the dataset
    # grouping indices), then time steady state.
    fused = regenerate_report(study)
    reference = regenerate_report(study, reference=True)
    tables_s = best_of(lambda: _render_tables(study, _FUSED))
    figures_s = best_of(lambda: _render_figures(study, _FUSED))
    reference_tables_s = best_of(lambda: _render_tables(study, _REFERENCE))
    reference_figures_s = best_of(lambda: _render_figures(study, _REFERENCE))

    byte_identical = (
        fused.text == reference.text
        and fused.dataset_hash == reference.dataset_hash
        and load_hash_match
    )

    result_cache = AnalysisResultCache()
    regenerate_report(study, cache_store=result_cache)
    started = time.perf_counter()
    replayed = regenerate_report(study, cache_store=result_cache)
    cache_hit_s = time.perf_counter() - started

    fused_total = tables_s + figures_s
    reference_total = reference_tables_s + reference_figures_s
    return {
        "experiments": experiments,
        "dataset_hash": dataset_hash,
        "load_s": round(load_s, 4),
        "load_reference_s": round(load_reference_s, 4),
        "load_speedup": round(load_reference_s / load_s, 2),
        "engine_scan_s": round(engine_scan_s, 4),
        "tables_s": round(tables_s, 4),
        "figures_s": round(figures_s, 4),
        "reference_tables_s": round(reference_tables_s, 4),
        "reference_figures_s": round(reference_figures_s, 4),
        "regeneration_speedup": round(reference_total / fused_total, 2),
        "us_per_record": round(fused_total / experiments * 1e6, 1),
        "scan_us_per_record": round(engine_scan_s / experiments * 1e6, 1),
        "cache_hit_s": round(cache_hit_s, 4),
        "cache_replayed": replayed.cached,
        "byte_identical": byte_identical,
    }


def bench_backends(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Per-backend archive append/load throughput, hash-checked.

    One smoke-scale campaign dataset is written and re-read through
    every registered storage backend (see
    :mod:`repro.measure.backends`), best-of-3 on both directions.
    ``append_us_per_record`` covers serialisation plus the backend's
    write path — for JSONL that is exactly the historical
    ``Dataset.save`` path, so this number is the regression gate for
    the archive writer.  ``hash_match`` asserts the roundtripped
    dataset's :meth:`Dataset.content_hash` is identical under every
    backend — a backend that got faster by changing the bytes is a
    regression, same rule as the campaign benchmark.
    """
    import tempfile

    from repro.core.study import CellularDNSStudy, StudyConfig
    from repro.measure.backends import BACKEND_CHOICES, get_backend
    from repro.measure.records import Dataset

    gc.collect()
    scale = scale or smoke_scale()
    study = CellularDNSStudy(
        StudyConfig(
            seed=scale.seed,
            device_scale=scale.device_scale,
            duration_days=scale.duration_days,
            interval_hours=scale.interval_hours,
            executor="serial",
        )
    )
    dataset = study.dataset
    experiments = len(dataset)
    dataset_hash = dataset.content_hash()
    report: Dict[str, object] = {
        "experiments": experiments,
        "dataset_hash": dataset_hash,
        "hash_match": True,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-backends-") as tmp:
        for name in BACKEND_CHOICES:
            backend = get_backend(name)
            path = os.path.join(tmp, f"archive{backend.shard_extension}")
            append_s = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                dataset.save(path, backend=name)
                append_s = min(append_s, time.perf_counter() - started)
            load_s = float("inf")
            loaded = None
            for _ in range(3):
                started = time.perf_counter()
                loaded = Dataset.load(path, backend=name)
                load_s = min(load_s, time.perf_counter() - started)
            hash_match = loaded.content_hash() == dataset_hash
            report["hash_match"] = report["hash_match"] and hash_match
            report[name] = {
                "append_us_per_record": round(append_s / experiments * 1e6, 1),
                "load_us_per_record": round(load_s / experiments * 1e6, 1),
                "archive_bytes": os.path.getsize(path),
                "hash_match": hash_match,
            }
    return report


def bench_pipeline(scale: Optional[BenchScale] = None) -> Dict[str, object]:
    """Pipelined campaign→report vs the post-hoc two-pass flow.

    Two end-to-end legs over the same campaign scale:

    * **post-hoc** — stream the campaign to JSONL, then load the file
      back and render the full report (the pre-pipeline flow: archive
      bytes are decoded a second time and scanned into the engine);
    * **streaming** — stream the campaign with a
      :class:`~repro.analysis.engine.ProjectionAccumulator` riding the
      merge, then render from the finalized engine.  The archive is
      written identically but never re-read.

    ``pipeline_advantage_s`` is the wall-clock the streaming leg saves;
    ``bench_check`` gates it against the committed analysis ingest +
    scan cost it is supposed to absorb.  ``byte_identical`` asserts the
    two rendered reports and the archive hashes agree.  The serializer
    pace and the accumulator's peak footprint (tracemalloc, aggregates
    only — never the record stream) ride along.
    """
    import tempfile
    import tracemalloc

    from repro.analysis.engine import ProjectionAccumulator, StreamedDataset
    from repro.core.study import CellularDNSStudy, StudyConfig
    from repro.measure.records import Dataset

    gc.collect()
    scale = scale or BenchScale()

    def fresh_study() -> CellularDNSStudy:
        return CellularDNSStudy(
            StudyConfig(
                seed=scale.seed,
                device_scale=scale.device_scale,
                duration_days=scale.duration_days,
                interval_hours=scale.interval_hours,
                executor="serial",
            )
        )

    tmpdir = tempfile.mkdtemp(prefix="repro-bench-pipeline-")
    posthoc_path = os.path.join(tmpdir, "posthoc.jsonl")
    streamed_path = os.path.join(tmpdir, "streamed.jsonl")
    try:
        # Post-hoc leg: archive, then load + scan + render from the file.
        study = fresh_study()
        started = time.perf_counter()
        posthoc_run = study.campaign.run_streaming(posthoc_path)
        posthoc_campaign_s = time.perf_counter() - started
        started = time.perf_counter()
        study.use_dataset(Dataset.load(posthoc_path))
        posthoc_text = study.regenerate_report().text
        posthoc_report_s = time.perf_counter() - started

        # Streaming leg: the accumulator folds each record as its line
        # is written; the report renders with zero re-read.
        study = fresh_study()
        sink = ProjectionAccumulator()
        started = time.perf_counter()
        streamed_run = study.campaign.run_streaming(streamed_path, sink=sink)
        study.use_dataset(
            StreamedDataset(
                sink.finalize(),
                streamed_run["content_hash"],
                streamed_run["experiments"],
                metadata=streamed_run["metadata"],
            )
        )
        streaming_text = study.regenerate_report().text
        streaming_total_s = time.perf_counter() - started
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    experiments = posthoc_run["experiments"]
    byte_identical = (
        streaming_text == posthoc_text
        and streamed_run["content_hash"] == posthoc_run["content_hash"]
    )

    # Serializer pace: the batch emitter over every record of the run.
    dataset = fresh_study().dataset
    started = time.perf_counter()
    for record in dataset.experiments:
        record.to_json_line()
    serialize_s = time.perf_counter() - started

    # Accumulator footprint: peak engine-aggregate memory while folding
    # the whole campaign (the records already exist, so the delta is
    # the accumulator's own state).
    gc.collect()
    tracemalloc.start()
    sink = ProjectionAccumulator()
    for record in dataset.experiments:
        sink.ingest(record)
    sink.finalize()
    _, accumulator_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    posthoc_total_s = posthoc_campaign_s + posthoc_report_s
    return {
        "experiments": experiments,
        "posthoc_campaign_s": round(posthoc_campaign_s, 4),
        "posthoc_report_s": round(posthoc_report_s, 4),
        "posthoc_total_s": round(posthoc_total_s, 4),
        "streaming_total_s": round(streaming_total_s, 4),
        "pipeline_advantage_s": round(posthoc_total_s - streaming_total_s, 4),
        "serialize_us_per_experiment": round(
            serialize_s / max(experiments, 1) * 1e6, 1
        ),
        "accumulator_peak_kb": round(accumulator_peak / 1024.0, 1),
        "byte_identical": byte_identical,
    }


# -- substrate microbenchmarks ------------------------------------------------


def _synthetic_internet(systems: int, prefixes_per_system: int) -> VirtualInternet:
    """An internet of ``systems`` ASes with nested/overlapping prefixes.

    Each AS announces one /16 plus ``prefixes_per_system - 1`` more-
    specific /24s carved from the *previous* AS's /16, so longest-prefix
    match genuinely decides ownership (as it does for operator-CDN
    prefixes nested inside carrier space).
    """
    net = VirtualInternet()
    all_systems: List[AutonomousSystem] = []
    for index in range(systems):
        system = AutonomousSystem(
            asn=65000 + index,
            name=f"bench-as-{index}",
            kind=ASKind.TRANSIT,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        system.add_prefix(Prefix.parse(f"10.{index}.0.0/16"))
        all_systems.append(system)
        net.register_system(system)
    for index, system in enumerate(all_systems):
        parent = (index - 1) % systems
        for sub in range(prefixes_per_system - 1):
            system.add_prefix(Prefix.parse(f"10.{parent}.{sub}.0/24"))
    return net


def bench_asn_lookup(
    systems: int = 50, prefixes_per_system: int = 8, lookups: int = 20_000
) -> Dict[str, object]:
    """Indexed ``asn_of`` against the linear reference scan."""
    net = _synthetic_internet(systems, prefixes_per_system)
    addresses = [
        int_to_ip((10 << 24) | ((i % systems) << 16) | ((i * 7919) & 0xFFFF))
        for i in range(lookups)
    ]

    started = time.perf_counter()
    indexed = [net.asn_of(address) for address in addresses]
    indexed_s = time.perf_counter() - started

    started = time.perf_counter()
    linear = [net.asn_of_linear(address) for address in addresses]
    linear_s = time.perf_counter() - started

    if indexed != linear:  # pragma: no cover - tripwire, tested separately
        raise AssertionError("indexed asn_of diverged from the linear scan")
    return {
        "systems": systems,
        "prefixes": systems * prefixes_per_system,
        "lookups": lookups,
        "indexed_s": round(indexed_s, 4),
        "linear_s": round(linear_s, 4),
        "indexed_per_s": round(lookups / indexed_s),
        "linear_per_s": round(lookups / linear_s),
        "speedup": round(linear_s / indexed_s, 1),
    }


def bench_primitives(iterations: int = 200_000) -> Dict[str, object]:
    """Throughput of the per-probe hot primitives."""
    model = WanLatencyModel()
    src = GeoPoint(latitude=41.88, longitude=-87.63)
    dst = GeoPoint(latitude=34.05, longitude=-118.24)

    model.base_rtt_ms(src, dst)  # warm the memo: steady-state is hits
    started = time.perf_counter()
    for _ in range(iterations):
        model.base_rtt_ms(src, dst)
    base_rtt_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(iterations):
        src.distance_km(dst)
    distance_s = time.perf_counter() - started

    return {
        "iterations": iterations,
        "base_rtt_memoised_per_s": round(iterations / base_rtt_s),
        "distance_km_per_s": round(iterations / distance_s),
    }


def bench_transport(iterations: int = 20_000) -> Dict[str, object]:
    """Per-outcome cost of the transport layer's delivery verdicts.

    Times ``Transport.ping`` steady-state against one target per outcome
    class (a responsive university host, a firewalled carrier egress, an
    unroutable address), plus the delivered ``flow`` path and the
    fault-free ``dns_gate``.  Each timed call runs the same
    classification the campaign hot path runs; a target classifying
    differently than its label is a hard error, not a skewed number.
    """
    world = build_world(WorldConfig())
    transport = world.transport
    stream = world.rng.stream("bench", "transport")
    origin = world.vantage.origin(stream)

    first_operator = next(iter(world.operators.values()))
    targets = {
        "delivered": world.echo_authority.host.ip,
        "filtered": first_operator.egress_ips()[0],
        "lost": "198.51.100.1",  # outside every allocated prefix
    }
    report: Dict[str, object] = {"iterations": iterations}
    for expected, address in targets.items():
        verdict = transport.ping(origin, address, stream)
        if verdict.outcome != expected:  # pragma: no cover - tripwire
            raise AssertionError(
                f"bench target {address} classified {verdict.outcome}, "
                f"expected {expected}"
            )
        started = time.perf_counter()
        for _ in range(iterations):
            transport.ping(origin, address, stream)
        elapsed = time.perf_counter() - started
        report[f"ping_{expected}_us"] = round(elapsed / iterations * 1e6, 3)

    started = time.perf_counter()
    for _ in range(iterations):
        transport.flow(origin, targets["delivered"], stream)
    elapsed = time.perf_counter() - started
    report["flow_delivered_us"] = round(elapsed / iterations * 1e6, 3)

    started = time.perf_counter()
    for _ in range(iterations):
        transport.dns_gate("att", "local", 0.0, stream)
    elapsed = time.perf_counter() - started
    report["dns_gate_us"] = round(elapsed / iterations * 1e6, 3)
    return report


# -- entry point --------------------------------------------------------------


def run_benchmarks(
    scale: Optional[BenchScale] = None,
    output_path: Optional[str] = BENCH_OUTPUT,
) -> Dict[str, object]:
    """Run every benchmark; write ``output_path`` unless it is None."""
    campaign = bench_campaign(scale)
    transport = bench_transport()
    # The campaign's delivery-outcome tally rides in the transport
    # section next to the per-outcome microbenchmark figures.
    transport["campaign"] = campaign.pop("transport_counters")
    stages = bench_stage_breakdown()
    # The stage campaign's draw-pool counters become their own section.
    sampler = stages.pop("sampler")
    report: Dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "campaign": campaign,
        "workers": bench_workers(scale),
        "stages": stages,
        "sampler": sampler,
        "scheduler": bench_scheduler(),
        "analysis": bench_analysis(),
        "bench_backends": bench_backends(),
        "pipeline": bench_pipeline(scale),
        "transport": transport,
        "asn_lookup": bench_asn_lookup(),
        "primitives": bench_primitives(),
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark report."""
    campaign = report["campaign"]
    workers = report.get("workers")
    stages = report.get("stages")
    sampler = report.get("sampler")
    scheduler = report.get("scheduler")
    analysis = report.get("analysis")
    backends = report.get("bench_backends")
    pipeline = report.get("pipeline")
    transport = report.get("transport")
    asn = report["asn_lookup"]
    primitives = report["primitives"]
    sharded_part = (
        f"sharded(x{campaign['workers']}/{campaign.get('shards', '?')}) "
        f"{campaign['sharded_exp_per_s']}/s "
        f"({campaign['sharded_speedup']}x) | "
        if "sharded_exp_per_s" in campaign
        else ""
    )
    lines = [
        f"cpus: {report['cpu_count']}",
        (
            f"campaign: {campaign['experiments']} experiments | "
            f"serial {campaign['serial_exp_per_s']}/s | "
            f"parallel(x{campaign['workers']}) "
            f"{campaign['parallel_exp_per_s']}/s "
            f"({campaign['parallel_speedup']}x) | "
            + sharded_part
            + f"auto executor: {campaign['executor']} | "
            f"hash match: {campaign['hash_match']}"
        ),
        (
            f"workers: snapshot boot {workers['snapshot_boot_us']}us vs "
            f"rebuild {workers['rebuild_boot_us']}us "
            f"({workers['snapshot_speedup']}x, "
            f"{workers['snapshot_bytes']}b snapshot) | "
            f"ctx {workers['mp_context']} | pools created "
            f"{workers['pools_created']}, reused "
            f"{workers['pool_reuse_hits']} | overlap advantage "
            f"{workers['overlap_advantage_s']}s "
            f"(overlapped {workers['overlapped_s']}s vs reference "
            f"{workers['reference_s']}s) | "
            f"hash match: {workers['hash_match']}"
            if workers
            else "workers: skipped"
        ),
        (
            "stages: "
            + " | ".join(
                f"{stage} {stages[f'{stage}_s']}s "
                f"({stages[f'{stage}_us_per_call']}us/call)"
                for stage in STAGES
            )
            + f" | other {stages['other_s']}s"
            if stages
            else "stages: skipped"
        ),
        (
            f"dns split: cache-hit {stages['dns_cache_hit_s']}s | "
            f"walk {stages['dns_walk_s']}s | "
            f"cdn-select {stages['dns_cdn_select_s']}s "
            f"({stages['dns_upstream_calls']} upstream walks over "
            f"{stages['dns_resolve_calls']} resolves)"
            if stages and "dns_cache_hit_s" in stages
            else "dns split: skipped"
        ),
        (
            f"scheduler: {scheduler['queue_events_per_s']} events/s "
            f"({scheduler['queue_events']} drained) | merge peak "
            f"{scheduler['streaming_peak_kb']}kb streaming vs "
            f"{scheduler['in_memory_peak_kb']}kb in-memory "
            f"({scheduler['streaming_memory_ratio']}x) over "
            f"{scheduler['merge_experiments']} experiments / "
            f"{scheduler['merge_shards']} shards | "
            f"hash match: {scheduler['hash_match']}"
            if scheduler
            else "scheduler: skipped"
        ),
        (
            f"analysis: regen {analysis['tables_s'] + analysis['figures_s']:.3f}s "
            f"vs reference "
            f"{analysis['reference_tables_s'] + analysis['reference_figures_s']:.3f}s "
            f"({analysis['regeneration_speedup']}x, "
            f"{analysis['us_per_record']}us/record) | "
            f"scan {analysis['engine_scan_s']}s | "
            f"ingest {analysis['load_s']}s vs {analysis['load_reference_s']}s "
            f"({analysis['load_speedup']}x) | "
            f"cache hit {analysis['cache_hit_s']}s | "
            f"byte identical: {analysis['byte_identical']}"
            if analysis
            else "analysis: skipped"
        ),
        (
            "backends: "
            + " | ".join(
                f"{name} append {backends[name]['append_us_per_record']}"
                f"us/rec, load {backends[name]['load_us_per_record']}us/rec"
                for name in ("jsonl", "sqlite", "columnar")
                if name in backends
            )
            + f" | hash match: {backends['hash_match']}"
            if backends
            else "backends: skipped"
        ),
        (
            f"pipeline: streaming {pipeline['streaming_total_s']}s vs "
            f"post-hoc {pipeline['posthoc_total_s']}s "
            f"(campaign {pipeline['posthoc_campaign_s']}s + report "
            f"{pipeline['posthoc_report_s']}s) | "
            f"advantage {pipeline['pipeline_advantage_s']}s | "
            f"serialize {pipeline['serialize_us_per_experiment']}us/exp | "
            f"accumulator peak {pipeline['accumulator_peak_kb']}kb | "
            f"byte identical: {pipeline['byte_identical']}"
            if pipeline
            else "pipeline: skipped"
        ),
        (
            f"sampler: {sampler['pool_hits']} pool hits over "
            f"{sampler['pool_refills']} refills "
            f"({sampler['pool_realignments']} realignments, "
            f"{sampler['streams']} streams) | seed cache "
            f"{sampler['derived_seed_cache']['hits']} hits / "
            f"{sampler['derived_seed_cache']['misses']} misses"
            if sampler
            else "sampler: skipped"
        ),
        (
            f"transport: ping {transport['ping_delivered_us']}us delivered / "
            f"{transport['ping_filtered_us']}us filtered / "
            f"{transport['ping_lost_us']}us lost | "
            f"flow {transport['flow_delivered_us']}us | "
            f"dns_gate {transport['dns_gate_us']}us | campaign "
            f"{transport['campaign']['attempts']} sends "
            f"({transport['campaign']['delivered']} delivered, "
            f"{transport['campaign']['filtered']} filtered, "
            f"{transport['campaign']['timed_out']} timed out, "
            f"{transport['campaign']['lost']} lost, "
            f"{transport['campaign']['retries']} retries)"
            if transport
            else "transport: skipped"
        ),
        (
            f"asn_of: indexed {asn['indexed_per_s']}/s vs "
            f"linear {asn['linear_per_s']}/s ({asn['speedup']}x) "
            f"over {asn['systems']} ASes / {asn['prefixes']} prefixes"
        ),
        (
            f"primitives: base_rtt {primitives['base_rtt_memoised_per_s']}/s "
            f"(memoised), distance_km {primitives['distance_km_per_s']}/s"
        ),
    ]
    return "\n".join(lines)
