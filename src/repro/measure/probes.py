"""Client-side probe primitives.

A :class:`DeviceProbeSession` is the measurement library running on one
device for one experiment: it holds the device's current attachment and
issues the probes of Sec 3.2 (DNS resolutions through the local and
public resolvers, pings, traceroutes, HTTP GETs, and the resolver
identification trick).  Every probe samples fresh radio latency, because
each real packet did.

The session also owns the experiment's *derivation caches*: attachment
(per churn-epoch key), routing facts per target address, and replica
ownership per replica address.  Everything cached is a pure function of
static topology or epoch-quantised time — never of a random draw — and
each cache lives and dies with one experiment, so a session-cached run
is bit-identical to an uncached one (asserted via
``Dataset.content_hash`` in the determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import math

from repro.cellnet.device import MobileDevice
from repro.cellnet.operator import _ORIGIN_PARAMS, Attachment, CellularOperator
from repro.cellnet.radio import RadioTechnology, promotion_cost_ms
from repro.core.addressing import prefix24
from repro.core.internet import RouteView
from repro.core.node import ProbeOrigin
from repro.core.rng import RandomStream
from repro.core.transport import TIMED_OUT, Delivery
from repro.core.world import WHOAMI_ZONE, World
from repro.dns.message import RRType
from repro.measure.records import (
    HttpRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
)


@dataclass
class DeviceProbeSession:
    """One device's measurement context during one experiment."""

    world: World
    operator: CellularOperator
    device: MobileDevice
    technology: RadioTechnology
    attachment: Attachment
    stream: RandomStream
    #: Attachment per churn-epoch key: probes inside one experiment
    #: almost always share every epoch, so the derivation runs once.
    _attachment_memo: Dict[tuple, Attachment] = field(
        default_factory=dict, repr=False
    )
    #: Routing facts per target IP (origin AS is fixed for the session).
    _route_memo: Dict[str, RouteView] = field(default_factory=dict, repr=False)
    #: Last attachment plus the time window over which every epoch in
    #: its key is constant — probes inside one experiment land seconds
    #: apart, so the window check replaces the key derivation entirely.
    _att_cached: Optional[Attachment] = field(default=None, repr=False)
    _att_since: float = field(default=0.0, repr=False)
    _att_until: float = field(default=-1.0, repr=False)
    #: Replica-server lookup per replica IP (ping → HTTP share it).
    _replica_memo: Dict[str, object] = field(default_factory=dict, repr=False)
    #: Per-target leg programs for the fused fault-free probe paths,
    #: keyed (ip, device location, egress ip) — everything the leg
    #: decomposition depends on.  The key is session-independent
    #: (locations hash by value, egress IPs imply the operator), so
    #: ``begin`` rebinds this to one world-level dict: mobility anchors
    #: recur across experiments, and a target's legs survive the session
    #: that first computed them.
    _leg_memo: Dict[tuple, tuple] = field(default_factory=dict, repr=False)

    @classmethod
    def begin(
        cls,
        world: World,
        device: MobileDevice,
        now: float,
        stream: RandomStream,
    ) -> "DeviceProbeSession":
        """Open a session: draw the active radio and attach the device."""
        operator = world.operators[device.carrier_key]
        technology = operator.radio_profile.draw(stream)
        faults = world.transport.faults
        if faults is not None:
            # Degraded-RAT windows override the drawn technology *after*
            # the draw, so the stream stays aligned with fault-free runs.
            override = faults.rat_override(operator.key, now)
            if override is not None:
                technology = override
        device.active_technology = technology
        session = cls(
            world=world,
            operator=operator,
            device=device,
            technology=technology,
            attachment=operator.attachment(device, now),
            stream=stream,
        )
        internet = world.internet
        leg_memo = getattr(internet, "_probe_leg_memo", None)
        if leg_memo is None:
            leg_memo = internet._probe_leg_memo = {}
        session._leg_memo = leg_memo
        session._attachment_memo[
            operator.attachment_epoch_key(device, now)
        ] = session.attachment
        return session

    # -- session caches ----------------------------------------------------

    def attachment_at(self, now: float) -> Attachment:
        """The device's attachment at ``now``, cached per epoch key.

        A cache hit returns the attachment derived earlier in this
        experiment; its ``at`` stamp keeps the first derivation time,
        which no probe consumes.
        """
        if self._att_since <= now < self._att_until:
            return self._att_cached
        key = self.operator.attachment_epoch_key(self.device, now)
        cached = self._attachment_memo.get(key)
        if cached is None:
            cached = self.operator.attachment(self.device, now)
            self._attachment_memo[key] = cached
        churn = self.operator.churn
        since = 0.0
        until = float("inf")
        for epoch_s in (
            churn.egress_epoch_s,
            churn.ip_epoch_s,
            churn.dhcp_epoch_s,
            self.device.mobility.travel_epoch_s,
        ):
            start = (now // epoch_s) * epoch_s
            if start > since:
                since = start
            end = start + epoch_s
            if end < until:
                until = end
        faults = self.world.transport.faults
        if faults is not None:
            # Fault windows (egress failover) also bound how long the
            # cached attachment stays valid.
            lower, upper = faults.span(now)
            if lower > since:
                since = lower
            if upper < until:
                until = upper
        self._att_cached = cached
        self._att_since = since
        self._att_until = until
        return cached

    def route_to(self, origin: ProbeOrigin, ip: str) -> RouteView:
        """Routing facts for one target, computed once per experiment."""
        route = self._route_memo.get(ip)
        if route is None:
            route = self.world.internet.route_view(origin, ip)
            self._route_memo[ip] = route
        return route

    def _replica_at(self, replica_ip: str):
        """The replica server owning an address, cached per session."""
        if replica_ip in self._replica_memo:
            return self._replica_memo[replica_ip]
        provider = self.world.replica_owner(replica_ip)
        replica = provider.replica_by_ip(replica_ip) if provider else None
        self._replica_memo[replica_ip] = replica
        return replica

    # -- origins -----------------------------------------------------------

    def origin(self, now: float, pay_promotion: bool = False) -> ProbeOrigin:
        """A fresh probe origin (new radio latency sample).

        Occasionally the radio hands off mid-experiment (the profile's
        ``stability`` knob); the affected probe rides the new technology,
        as real in-context measurements do (Gember et al. [8]).
        """
        technology = self.technology
        profile = self.operator.radio_profile
        # stream.bernoulli, inlined (same single pooled uniform draw).
        if self.stream.random() >= profile.stability:
            technology = profile.draw(self.stream)
        faults = self.world.transport.faults
        if faults is not None:
            override = faults.rat_override(self.operator.key, now)
            if override is not None:
                technology = override
        return self.operator.probe_origin(
            self.device,
            now,
            self.stream,
            technology=technology,
            pay_promotion=pay_promotion,
            attachment=self.attachment_at(now),
        )

    # -- probes ----------------------------------------------------------------
    #
    # Every probe crosses ``world.transport`` and acts on the returned
    # :class:`Delivery`.  Fault-induced failures are retried within the
    # scenario's :class:`ProbePolicy` budget (a fresh origin per attempt
    # — each real retransmission rode fresh radio conditions — and a
    # backoff between attempts); topology-determined failures are final.
    # ``outcome`` is recorded only for fault-induced verdicts, so
    # fault-free campaigns keep the legacy wire shape byte for byte.

    def bootstrap_ping(self, now: float) -> PingRecord:
        """The radio wake-up ping that opens every experiment (Sec 3.2)."""
        target = self.world.backbone.routers[0]
        return self._ping_probe(target.ip, "bootstrap", now, pay_promotion=True)

    def dns_local(self, qname: str, now: float, attempt: int = 1) -> ResolutionRecord:
        """Resolve through the operator-configured resolver."""
        transport = self.world.transport
        if transport.faults is None:
            return self._fast_dns_local(qname, now, attempt)
        policy = transport.policy
        retries = 0
        while True:
            verdict = transport.dns_gate(self.operator.key, "local", now, self.stream)
            if verdict.delivered:
                origin = self.origin(now)
                result = self.operator.resolve_local(
                    self.device, origin, self.attachment, qname, RRType.A, now, self.stream
                )
                if not transport.dns_timed_out(result.total_ms):
                    return ResolutionRecord(
                        domain=qname,
                        resolver_kind="local",
                        resolution_ms=result.total_ms,
                        addresses=result.addresses,
                        cname_chain=result.cname_chain(),
                        attempt=attempt,
                        retries=retries,
                    )
                verdict = Delivery(TIMED_OUT, fault_induced=True)
            if retries >= policy.dns_retries or not verdict.retryable:
                return ResolutionRecord(
                    domain=qname,
                    resolver_kind="local",
                    resolution_ms=float("nan"),
                    attempt=attempt,
                    rcode="TIMEOUT",
                    outcome=verdict.outcome,
                    retries=retries,
                )
            retries += 1
            transport.note_retry()
            now += policy.backoff_s

    def dns_public(
        self, kind: str, qname: str, now: float, attempt: int = 1
    ) -> ResolutionRecord:
        """Resolve through Google DNS or OpenDNS."""
        transport = self.world.transport
        service = self.world.public_service(kind)
        if transport.faults is None:
            return self._fast_dns_public(service, kind, qname, now, attempt)
        policy = transport.policy
        retries = 0
        while True:
            verdict = transport.dns_gate(self.operator.key, kind, now, self.stream)
            if verdict.delivered:
                origin = self.origin(now)
                outcome = service.resolve(
                    origin,
                    qname,
                    RRType.A,
                    now,
                    self.stream,
                    device_key=self.device.device_id,
                    cache_scope=self.device.cache_scope,
                )
                if outcome is None:
                    return ResolutionRecord(
                        domain=qname,
                        resolver_kind=kind,
                        resolution_ms=float("nan"),
                        rcode="UNREACHABLE",
                        attempt=attempt,
                        retries=retries,
                    )
                if not transport.dns_timed_out(outcome.total_ms):
                    return ResolutionRecord(
                        domain=qname,
                        resolver_kind=kind,
                        resolution_ms=outcome.total_ms,
                        addresses=outcome.result.addresses(),
                        cname_chain=outcome.result.cname_chain(),
                        attempt=attempt,
                        retries=retries,
                    )
                verdict = Delivery(TIMED_OUT, fault_induced=True)
            if retries >= policy.dns_retries or not verdict.retryable:
                return ResolutionRecord(
                    domain=qname,
                    resolver_kind=kind,
                    resolution_ms=float("nan"),
                    attempt=attempt,
                    rcode="TIMEOUT",
                    outcome=verdict.outcome,
                    retries=retries,
                )
            retries += 1
            transport.note_retry()
            now += policy.backoff_s

    # -- fused fault-free fast paths ---------------------------------------
    #
    # With no fault scenario active, a probe's whole stochastic body is
    # known up front: one stability uniform, two origin Gaussians, then
    # the delivered path's leg/service Gaussians.  The fast paths below
    # draw that set as one contiguous ``gauss_block`` slice and apply
    # the transform arithmetic inline — the same draws, in the same
    # order, with the same float association as the layered path, so
    # the dataset hash cannot move (asserted by the tier-1 goldens).
    # Fault scenarios take the layered path, whose per-attempt retries
    # interleave draws dynamically.

    # The stability draw + optional handoff re-draw of the probe origin
    # is inlined at each fast path (one uniform, then ``profile.draw``
    # on the rare handoff), matching the layered path's draw order.

    def _target_legs(self, ip: str, route, location, egress) -> tuple:
        """``(legs, jitter_draws, penalty, stack)`` for one delivered
        target, memoised per (ip, location, egress)."""
        egress_location = egress.location if egress is not None else location
        # The egress IP pins the operator (egress hosts are per-carrier),
        # so the key stays valid in the shared world-level memo; without
        # an egress the operator key disambiguates same_operator.
        key = (ip, location, egress.ip if egress is not None else self.operator.key)
        cached = self._leg_memo.get(key)
        if cached is None:
            internet = self.world.internet
            intra = internet.intra_model
            destination = route.destination
            # Inlined leg_program: (base, ln(base)) comes straight from
            # leg_params and the jitter count is explicit arithmetic, so
            # a miss costs two memo probes instead of four frames and a
            # generator.
            intra_sigma = intra.jitter_sigma
            if route.same_operator:
                base, log_base = intra.leg_params(location, destination.location)
                if intra_sigma > 0:
                    legs = ((log_base, intra_sigma),)
                    draws = 1
                else:
                    legs = ((base, 0.0),)
                    draws = 0
            else:
                wan = internet.wan_model
                wan_sigma = wan.jitter_sigma
                base, log_base = intra.leg_params(location, egress_location)
                wbase, wlog = wan.leg_params(egress_location, destination.location)
                first = (log_base, intra_sigma) if intra_sigma > 0 else (base, 0.0)
                second = (wlog, wan_sigma) if wan_sigma > 0 else (wbase, 0.0)
                legs = (first, second)
                draws = (1 if intra_sigma > 0 else 0) + (1 if wan_sigma > 0 else 0)
            cached = (
                legs,
                draws,
                destination.interior_penalty_ms,
                destination.stack_latency_ms,
            )
            if len(self._leg_memo) < 1_000_000:
                self._leg_memo[key] = cached
        return cached

    def _fast_dns_local(
        self, qname: str, now: float, attempt: int
    ) -> ResolutionRecord:
        """Fault-free local resolution with the front drawn as one block.

        The resolver front's whole stochastic shape is known before any
        Gaussian is drawn: serving site, external resolver and the
        tier-gap condition are all pure in (attachment, time), so the
        two origin draws, the device->front intra leg and the optional
        front->external leg fuse into one ``gauss_block``.  The engine
        then consumes its own (compiled-plan) block as usual — same
        draws, same order, same float association as the layered path.
        """
        stream = self.stream
        technology = self.technology
        profile = self.operator.radio_profile
        if stream.random() >= profile.stability:
            technology = profile.draw(stream)
        attachment = self.attachment_at(now)
        device = self.device
        operator = self.operator
        location = device.location(now)
        self.world.transport.counters.delivered += 1
        client_address = operator._client_address_of(attachment)
        site_hint = operator._nearest_site_index(attachment.egress)
        deployment = operator.deployment
        site = deployment.serving_site(client_address, site_hint)
        external = deployment.external_for(
            client_address, device.device_id, site_hint, now
        )
        intra = operator.internet.intra_model
        sigma_intra = intra.jitter_sigma
        front_base, front_log = intra.leg_params(location, site.location)
        gap_leg = external.site.index != site.index
        log_access, sigma_access, log_core, sigma_core, _ = _ORIGIN_PARAMS[
            technology
        ]
        if sigma_intra > 0:
            zs = stream.gauss_block(4 if gap_leg else 3)
        else:
            zs = stream.gauss_block(2)
        access = math.exp(log_access + sigma_access * zs[0])
        access += math.exp(log_core + sigma_core * zs[1])
        device.rrc.touch(now)
        if sigma_intra > 0:
            front_leg = math.exp(front_log + sigma_intra * zs[2])
        else:
            front_leg = front_base
        front_rtt = access + front_leg + operator.front_stack_ms
        gap_ms = deployment.tier_gap_ms
        if gap_leg:
            gap_base, gap_log = intra.leg_params(
                site.location, external.site.location
            )
            if sigma_intra > 0:
                gap_ms += math.exp(gap_log + sigma_intra * zs[3])
            else:
                gap_ms += gap_base
        client_subnet = None
        if operator.ecs_enabled:
            client_subnet = prefix24(attachment.client_ip)
        result = external.engine.resolve(
            qname,
            RRType.A,
            now,
            stream,
            client_subnet=client_subnet,
            # Range-scoped cache partition (None for non-campaign
            # devices): the sub-carrier shard isolation contract — see
            # RecursiveEngine.resolve and repro.measure.campaign.
            cache_scope=device.cache_scope,
        )
        return ResolutionRecord(
            domain=qname,
            resolver_kind="local",
            resolution_ms=front_rtt + gap_ms + result.upstream_ms,
            addresses=result.addresses(),
            cname_chain=result.cname_chain(),
            attempt=attempt,
            retries=0,
        )

    def _fast_dns_public(
        self, service, kind: str, qname: str, now: float, attempt: int
    ) -> ResolutionRecord:
        """Fault-free public resolution with origin + flow draws fused.

        Anycast cluster choice and the route verdict are pure in the
        attachment, so the two origin draws and the flow's leg draws
        (device->egress intra, egress->cluster WAN) collapse into one
        ``gauss_block`` before the engine consumes its own block —
        exactly the layered ``origin()`` + ``transport.flow`` sequence.
        """
        stream = self.stream
        technology = self.technology
        profile = self.operator.radio_profile
        if stream.random() >= profile.stability:
            technology = profile.draw(stream)
        attachment = self.attachment_at(now)
        device = self.device
        location = device.location(now)
        self.world.transport.counters.delivered += 1
        cluster, machine = service._serve_at(
            attachment.egress.location, device.device_id, now
        )
        internet = cluster.engine.internet
        asys = self.operator.system
        route_key = (asys.asn, machine.ip)
        route = service._route_memo.get(route_key)
        if route is None:
            route = internet.route_view_for(asys, machine.ip)
            service._route_memo[route_key] = route
        log_access, sigma_access, log_core, sigma_core, _ = _ORIGIN_PARAMS[
            technology
        ]
        counters = service._delivery_layer(internet).counters
        destination = route.destination
        if destination is not None and route.admits:
            legs, jitter_draws, penalty, stack = self._target_legs(
                machine.ip, route, location, attachment.egress
            )
            zs = stream.gauss_block(2 + jitter_draws)
            value = math.exp(log_access + sigma_access * zs[0])
            value += math.exp(log_core + sigma_core * zs[1])
            device.rrc.touch(now)
            index = 2
            for leg_value, sigma in legs:
                if sigma > 0:
                    value += math.exp(leg_value + sigma * zs[index])
                    index += 1
                else:
                    value += leg_value
            value += penalty
            value += stack
            counters.delivered += 1
            client_subnet = None
            if service.ecs_enabled:
                client_subnet = prefix24(attachment.client_ip)
            result = cluster.engine.resolve(
                qname,
                RRType.A,
                now,
                stream,
                client_subnet=client_subnet,
                # Device-range scope when campaign-built (operator key
                # is its prefix, so carriers stay isolated); legacy
                # per-operator scope otherwise.
                cache_scope=device.cache_scope or asys.operator_key,
            )
            return ResolutionRecord(
                domain=qname,
                resolver_kind=kind,
                resolution_ms=value + service.peering_penalty_ms + result.upstream_ms,
                addresses=result.addresses(),
                cname_chain=result.cname_chain(),
                attempt=attempt,
                retries=0,
            )
        stream.gauss_block(2)
        device.rrc.touch(now)
        if destination is None:
            counters.lost += 1
        else:
            counters.filtered += 1
        return ResolutionRecord(
            domain=qname,
            resolver_kind=kind,
            resolution_ms=float("nan"),
            rcode="UNREACHABLE",
            attempt=attempt,
            retries=0,
        )

    def _fast_ping(
        self, ip: str, kind: str, now: float, pay_promotion: bool = False
    ) -> PingRecord:
        """Fault-free ping with the attempt's draws fused into one block."""
        stream = self.stream
        technology = self.technology
        profile = self.operator.radio_profile
        if stream.random() >= profile.stability:
            technology = profile.draw(stream)
        attachment = self.attachment_at(now)
        device = self.device
        location = device.location(now)
        route = self._route_memo.get(ip)
        if route is None:
            route = self.world.internet.route_view_for(self.operator.system, ip)
            self._route_memo[ip] = route
        log_access, sigma_access, log_core, sigma_core, _ = _ORIGIN_PARAMS[
            technology
        ]
        counters = self.world.transport.counters
        destination = route.destination
        rtt: Optional[float] = None
        if destination is not None and route.answers_ping:
            legs, jitter_draws, penalty, stack = self._target_legs(
                ip, route, location, attachment.egress
            )
            zs = stream.gauss_block(2 + jitter_draws)
            value = math.exp(log_access + sigma_access * zs[0])
            value += math.exp(log_core + sigma_core * zs[1])
            if pay_promotion:
                value += promotion_cost_ms(technology, device.rrc, now)
            else:
                device.rrc.touch(now)
            index = 2
            for leg_value, sigma in legs:
                if sigma > 0:
                    value += math.exp(leg_value + sigma * zs[index])
                    index += 1
                else:
                    value += leg_value
            value += penalty
            value += stack
            rtt = value
            counters.delivered += 1
        else:
            # Origin radio draws (and RRC side effects) precede the
            # transport verdict on the layered path; keep them.
            stream.gauss_block(2)
            if pay_promotion:
                promotion_cost_ms(technology, device.rrc, now)
            else:
                device.rrc.touch(now)
            if destination is None:
                counters.lost += 1
            elif not route.admits:
                counters.filtered += 1
            else:
                counters.timed_out += 1
        return PingRecord(
            target_ip=ip, target_kind=kind, rtt_ms=rtt, outcome=None, retries=0
        )

    def _fast_http(
        self, replica_ip: str, domain: str, resolver_kind: str, now: float
    ) -> HttpRecord:
        """Fault-free HTTP GET with handshake/request/service draws fused."""
        stream = self.stream
        technology = self.technology
        profile = self.operator.radio_profile
        if stream.random() >= profile.stability:
            technology = profile.draw(stream)
        attachment = self.attachment_at(now)
        device = self.device
        location = device.location(now)
        log_access, sigma_access, log_core, sigma_core, _ = _ORIGIN_PARAMS[
            technology
        ]
        replica = self._replica_at(replica_ip)
        if replica is None:
            stream.gauss_block(2)
            device.rrc.touch(now)
            return HttpRecord(
                replica_ip=replica_ip, domain=domain, resolver_kind=resolver_kind
            )
        route = self._route_memo.get(replica_ip)
        if route is None:
            route = self.world.internet.route_view_for(
                self.operator.system, replica_ip
            )
            self._route_memo[replica_ip] = route
        counters = self.world.transport.counters
        destination = route.destination
        ttfb: Optional[float] = None
        if destination is not None and route.admits:
            legs, jitter_draws, penalty, stack = self._target_legs(
                replica_ip, route, location, attachment.egress
            )
            zs = stream.gauss_block(3 + 2 * jitter_draws)
            access = math.exp(log_access + sigma_access * zs[0])
            access += math.exp(log_core + sigma_core * zs[1])
            device.rrc.touch(now)
            index = 2
            ttfb = 0.0
            for _ in range(2):  # handshake RTT, then request RTT
                flow = access
                for leg_value, sigma in legs:
                    if sigma > 0:
                        flow += math.exp(leg_value + sigma * zs[index])
                        index += 1
                    else:
                        flow += leg_value
                flow += penalty
                flow += stack
                ttfb = ttfb + flow if ttfb else flow
            ttfb += math.exp(replica.log_service_ms + 0.5 * zs[index])
            counters.delivered += 1
        else:
            stream.gauss_block(2)
            device.rrc.touch(now)
            if destination is None:
                counters.lost += 1
            else:
                counters.filtered += 1
        return HttpRecord(
            replica_ip=replica_ip,
            domain=domain,
            resolver_kind=resolver_kind,
            ttfb_ms=ttfb,
            outcome=None,
            retries=0,
        )

    def _ping_probe(
        self, ip: str, kind: str, now: float, pay_promotion: bool = False
    ) -> PingRecord:
        """One ping train: send, retry fault drops, record the verdict."""
        transport = self.world.transport
        if transport.faults is None:
            return self._fast_ping(ip, kind, now, pay_promotion)
        policy = transport.policy
        carrier = self.operator.key
        retries = 0
        while True:
            origin = self.origin(now, pay_promotion=pay_promotion)
            delivery = transport.ping(
                origin,
                ip,
                self.stream,
                route=self.route_to(origin, ip),
                carrier=carrier,
                now=now,
                probe="ping",
            )
            if delivery.retryable and retries < policy.ping_retries:
                retries += 1
                transport.note_retry()
                now += policy.backoff_s
                continue
            return PingRecord(
                target_ip=ip,
                target_kind=kind,
                rtt_ms=delivery.rtt_ms,
                outcome=delivery.outcome if delivery.fault_induced else None,
                retries=retries,
            )

    def ping_ip(self, ip: str, kind: str, now: float) -> PingRecord:
        """Ping an arbitrary address from the device."""
        return self._ping_probe(ip, kind, now)

    def ping_configured_resolver(self, now: float) -> PingRecord:
        """Ping the resolver address configured on the device.

        Answered at the serving site (anycast-aware), so this measures
        the *client-facing* resolver distance of Fig 4.  The substrate
        composes the latency itself; the transport gate only decides
        whether the exchange completes.
        """
        transport = self.world.transport
        policy = transport.policy
        target_ip = self.attachment.client_dns_ip
        retries = 0
        while True:
            origin = self.origin(now)
            verdict = transport.gate(self.operator.key, "ping", now, self.stream)
            if verdict.delivered:
                rtt = self.operator.ping_client_resolver(
                    origin, self.attachment, self.stream
                )
                return PingRecord(
                    target_ip=target_ip,
                    target_kind="resolver-client-facing",
                    rtt_ms=rtt,
                    retries=retries,
                )
            if retries < policy.ping_retries:
                retries += 1
                transport.note_retry()
                now += policy.backoff_s
                continue
            return PingRecord(
                target_ip=target_ip,
                target_kind="resolver-client-facing",
                rtt_ms=None,
                outcome=verdict.outcome,
                retries=retries,
            )

    def ping_public_resolver(self, kind: str, now: float) -> PingRecord:
        """Ping a public service's anycast address."""
        transport = self.world.transport
        policy = transport.policy
        service = self.world.public_service(kind)
        target_kind = f"resolver-public-{kind}"
        retries = 0
        while True:
            origin = self.origin(now)
            verdict = transport.gate(self.operator.key, "ping", now, self.stream)
            if verdict.delivered:
                rtt = service.ping(
                    origin, now, self.stream, device_key=self.device.device_id
                )
                return PingRecord(
                    target_ip=service.anycast_ip,
                    target_kind=target_kind,
                    rtt_ms=rtt,
                    retries=retries,
                )
            if retries < policy.ping_retries:
                retries += 1
                transport.note_retry()
                now += policy.backoff_s
                continue
            return PingRecord(
                target_ip=service.anycast_ip,
                target_kind=target_kind,
                rtt_ms=None,
                outcome=verdict.outcome,
                retries=retries,
            )

    def traceroute_ip(self, ip: str, kind: str, now: float) -> TracerouteRecord:
        """Traceroute to an arbitrary address from the device."""
        origin = self.origin(now)
        result, delivery = self.world.transport.traceroute(
            origin,
            ip,
            self.stream,
            route=self.route_to(origin, ip),
            carrier=self.operator.key,
            now=now,
            probe="traceroute",
        )
        return TracerouteRecord(
            target_ip=ip,
            target_kind=kind,
            hops=[[hop.ttl, hop.ip, hop.rtt_ms] for hop in result.hops],
            reached=result.reached,
            outcome=delivery.outcome if delivery.fault_induced else None,
        )

    def http_get(
        self, replica_ip: str, domain: str, resolver_kind: str, now: float
    ) -> HttpRecord:
        """HTTP GET (TTFB) against one replica address."""
        transport = self.world.transport
        if transport.faults is None:
            return self._fast_http(replica_ip, domain, resolver_kind, now)
        policy = transport.policy
        retries = 0
        while True:
            origin = self.origin(now)
            replica = self._replica_at(replica_ip)
            if replica is None:
                return HttpRecord(
                    replica_ip=replica_ip, domain=domain, resolver_kind=resolver_kind
                )
            delivery = transport.http(
                origin,
                replica,
                self.stream,
                route=self.route_to(origin, replica_ip),
                carrier=self.operator.key,
                now=now,
                probe="http",
            )
            if delivery.retryable and retries < policy.http_retries:
                retries += 1
                transport.note_retry()
                now += policy.backoff_s
                continue
            return HttpRecord(
                replica_ip=replica_ip,
                domain=domain,
                resolver_kind=resolver_kind,
                ttfb_ms=delivery.rtt_ms,
                outcome=delivery.outcome if delivery.fault_induced else None,
                retries=retries,
            )

    def identify_resolver(
        self, kind: str, now: float, token: str
    ) -> ResolverIdRecord:
        """The Mao et al. probe: learn the external resolver's address.

        A unique name under the controlled zone forces a cache miss; the
        echo authority answers with the address it saw the query from.
        """
        qname = f"{token}.{kind}.{WHOAMI_ZONE}"
        if kind == "local":
            record = self.dns_local(qname, now)
            configured = self.attachment.client_dns_ip
        else:
            record = self.dns_public(kind, qname, now)
            configured = self.world.public_service(kind).anycast_ip
        observed: Optional[str] = (
            record.addresses[0] if record.addresses else None
        )
        return ResolverIdRecord(
            resolver_kind=kind,
            configured_ip=configured,
            observed_external_ip=observed,
            resolution_ms=record.resolution_ms,
        )

    def replica_addresses(self, records: List[ResolutionRecord]) -> List[str]:
        """Distinct replica addresses across resolutions, order-stable."""
        seen: List[str] = []
        for record in records:
            for address in record.addresses:
                if address not in seen:
                    seen.append(address)
        return seen
