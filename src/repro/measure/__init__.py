"""Measurement toolkit: the paper's client-side experiment pipeline."""

from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    HttpRecord,
    PingRecord,
    ResolutionRecord,
    ResolverIdRecord,
    TracerouteRecord,
)
from repro.measure.experiment import ExperimentRunner
from repro.measure.campaign import Campaign, CampaignConfig
from repro.measure.scheduler import ExperimentSchedule

__all__ = [
    "Dataset",
    "ExperimentRecord",
    "HttpRecord",
    "PingRecord",
    "ResolutionRecord",
    "ResolverIdRecord",
    "TracerouteRecord",
    "ExperimentRunner",
    "Campaign",
    "CampaignConfig",
    "ExperimentSchedule",
]
