"""The experiment script (Sec 3.2), faithfully re-implemented.

Each experiment, run roughly hourly per device:

1. a bootstrap ping wakes the radio (absorbing RRC promotion delay);
2. DNS resolutions of the nine popular mobile domains via the locally
   configured resolver, Google DNS and OpenDNS — with an immediate
   back-to-back second query to the local resolver (the Fig 7 cache
   probe);
3. ping, traceroute and an HTTP GET to every replica address returned;
4. resolver identification against the controlled zone for all three
   resolver kinds, plus pings/traceroutes to the configured and observed
   resolver addresses.

Probes run continually and as quickly as possible to keep the radio in
its high-power state, exactly as the paper describes; the small
inter-probe delays below model the library's pacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cdn.catalog import domain_names
from repro.cellnet.device import MobileDevice
from repro.core.rng import RngRegistry
from repro.core.world import World
from repro.measure.probes import DeviceProbeSession
from repro.measure.records import ExperimentRecord, ResolutionRecord

#: Seconds between consecutive probes (keeps the radio busy, advances
#: virtual time just enough for back-to-back semantics to be honest).
PROBE_GAP_S = 0.4


@dataclass
class ExperimentOptions:
    """Feature switches for one experiment run."""

    domains: Sequence[str] = field(default_factory=domain_names)
    resolver_kinds: Sequence[str] = ("local", "google", "opendns")
    #: Issue the immediate second local query per domain (Fig 7).
    double_query: bool = True
    #: Probe (ping/traceroute/HTTP) every replica address returned.
    probe_replicas: bool = True
    #: Run the resolver-identification probes.
    identify_resolvers: bool = True
    #: Traceroute one external target to expose the egress point.
    traceroute_egress: bool = True
    #: Cap on replica addresses probed per experiment (0 = no cap).
    max_replica_probes: int = 0


class ExperimentRunner:
    """Runs the experiment script for devices in a world."""

    #: Session factory; the stage-timing benchmark substitutes an
    #: instrumented subclass of :class:`DeviceProbeSession` here.
    session_class = DeviceProbeSession

    def __init__(self, world: World, options: Optional[ExperimentOptions] = None):
        self.world = world
        self.options = options or ExperimentOptions()
        self._rng: RngRegistry = world.rng

    def run(
        self, device: MobileDevice, started_at: float, sequence: int
    ) -> ExperimentRecord:
        """Execute one experiment and return its record."""
        options = self.options
        stream = self._rng.stream("experiment", device.device_id, sequence)
        session = self.session_class.begin(self.world, device, started_at, stream)
        now = started_at
        location = device.coarse_location(started_at)
        record = ExperimentRecord(
            device_id=device.device_id,
            carrier=device.carrier_key,
            country=session.operator.country.value,
            sequence=sequence,
            started_at=started_at,
            latitude=location.latitude,
            longitude=location.longitude,
            technology=session.technology.value,
            generation=session.technology.generation.value,
            client_ip=session.attachment.client_ip,
        )

        # 1. bootstrap ping.
        record.pings.append(session.bootstrap_ping(now))
        now += PROBE_GAP_S

        # 2. domain resolutions.
        local_resolutions: List[ResolutionRecord] = []
        for domain in options.domains:
            for kind in options.resolver_kinds:
                if kind == "local":
                    first = session.dns_local(domain, now, attempt=1)
                    record.resolutions.append(first)
                    local_resolutions.append(first)
                    now += PROBE_GAP_S
                    if options.double_query:
                        second = session.dns_local(domain, now, attempt=2)
                        record.resolutions.append(second)
                        local_resolutions.append(second)
                        now += PROBE_GAP_S
                else:
                    record.resolutions.append(session.dns_public(kind, domain, now))
                    now += PROBE_GAP_S

        # 3. probe every replica address seen.
        if options.probe_replicas:
            now = self._probe_replicas(session, record, now)

        # 4. resolver identification + resolver probes.
        if options.identify_resolvers:
            now = self._identify_resolvers(session, record, now, sequence)

        # 5. one external traceroute (egress-point discovery, Sec 5.2).
        if options.traceroute_egress:
            target = self.world.vantage.host.ip
            record.traceroutes.append(
                session.traceroute_ip(target, "egress-discovery", now)
            )
            now += PROBE_GAP_S
        return record

    # -- internals ---------------------------------------------------------

    def _probe_replicas(self, session, record, now: float) -> float:
        options = self.options
        by_address: dict = {}
        for resolution in record.resolutions:
            for address in resolution.addresses:
                by_address.setdefault(
                    address, (resolution.domain, resolution.resolver_kind)
                )
        addresses = list(by_address)
        if options.max_replica_probes:
            addresses = addresses[: options.max_replica_probes]
        # One pool refill covers the whole replica sweep: each ping+GET
        # pair consumes at most 13 uniforms (2 stability draws plus up
        # to 11 Gaussian-pair/service uniforms).  Purely a batching
        # hint; draw values and order are unchanged.
        if addresses:
            session.stream.prefill(13 * len(addresses))
        for address in addresses:
            domain, kind = by_address[address]
            record.pings.append(session.ping_ip(address, "replica", now))
            now += PROBE_GAP_S
            record.http_gets.append(session.http_get(address, domain, kind, now))
            now += PROBE_GAP_S
        # Replica traceroutes exist in the paper's script; one per
        # experiment keeps the dataset faithful without tripling runtime.
        if addresses:
            record.traceroutes.append(
                session.traceroute_ip(addresses[0], "replica", now)
            )
            now += PROBE_GAP_S
        return now

    def _identify_resolvers(
        self, session, record, now: float, sequence: int
    ) -> float:
        token = f"e{sequence}-{session.device.device_id}".replace("_", "-")
        for kind in self.options.resolver_kinds:
            identification = session.identify_resolver(kind, now, token)
            record.resolver_ids.append(identification)
            now += PROBE_GAP_S
            if kind == "local":
                record.pings.append(session.ping_configured_resolver(now))
                now += PROBE_GAP_S
                observed = identification.observed_external_ip
                if observed and observed != identification.configured_ip:
                    record.pings.append(
                        session.ping_ip(observed, "resolver-external-facing", now)
                    )
                    now += PROBE_GAP_S
            else:
                record.pings.append(session.ping_public_resolver(kind, now))
                now += PROBE_GAP_S
        return now
