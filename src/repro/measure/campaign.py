"""Campaign runner: many devices, many experiments, one dataset.

A campaign instantiates the volunteer population (Table 1's per-carrier
client counts, scaled if asked), schedules each device's experiments
over the study window, runs them in probe-event order and collects an
analysable :class:`~repro.measure.records.Dataset`.

Three execution strategies produce *bit-identical* datasets:

* :class:`Campaign` runs everything in one process, draining one
  :class:`~repro.measure.scheduler.ProbeEventQueue` keyed
  ``(timestamp, carrier_key, device_index, sequence)``.
* :class:`ParallelCampaign` runs one worker process per carrier shard
  (the legacy executor, capped at six shards).
* :class:`ShardedCampaign` shards by *device range within* a carrier:
  the population is cut into deterministic ranges of
  :attr:`CampaignConfig.range_size` consecutive devices, any number of
  ranges can be grouped into ``--shards N`` worker tasks, and shard
  outputs re-merge by the global event key.

What makes sub-carrier sharding exact rather than approximate is the
cache-scope policy: the only mutable state devices share is DNS cache
contents, and every campaign resolution is scoped by the device's
range label (``MobileDevice.cache_scope``), applied identically by the
serial executor.  Range boundaries depend only on the campaign config —
never on the shard count or worker count — so the cache partition, and
therefore every record byte, is invariant across executors and any
``--shards N``.  The identity is asserted in tests via
:meth:`Dataset.content_hash`.

For campaigns too large to materialise, :meth:`ShardedCampaign.run_streaming`
spills each shard's records to JSONL as they are produced and k-way
merges the spill files by event key straight to the output path, so
peak memory is O(shards), not O(campaign).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import shutil
import tempfile
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.errors import ConfigError
from repro.core.world import World, WorldConfig, build_world
from repro.geo.regions import cities_for, city_weights
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    merge_shard_jsonl,
    record_event_key,
)
from repro.measure.scheduler import ExperimentSchedule, ProbeEventQueue

#: Per-carrier client counts from Table 1 of the paper.
PAPER_CLIENT_COUNTS: Dict[str, int] = {
    "att": 33,
    "sprint": 9,
    "tmobile": 31,
    "verizon": 64,
    "skt": 17,
    "lgu": 4,
}

#: Valid ``--executor`` choices.
EXECUTOR_CHOICES = ("auto", "serial", "parallel", "sharded")


def select_executor(
    requested: str = "auto",
    cpu_count: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> str:
    """Resolve an executor request to a concrete strategy.

    ``auto`` picks the sub-carrier ``sharded`` runner whenever it can
    win: at least two cores to run workers on *and* at least two device
    ranges to spread across them (``shard_count`` is the number of
    device ranges, not carriers — sub-carrier sharding scales with the
    population, so worker counts size as ``min(cores, device_ranges)``
    rather than being capped at six carriers).  On a single-core box the
    spawn + world-rebuild overhead makes any multiprocess path strictly
    slower, so ``auto`` falls back to serial there — and only there.
    Explicit requests are honoured as stated — the benchmark forces the
    parallel executors to assert hash identity even where ``auto``
    would not use them.
    """
    if requested not in EXECUTOR_CHOICES:
        raise ConfigError(
            f"unknown executor {requested!r}; expected one of {EXECUTOR_CHOICES}"
        )
    if requested != "auto":
        return requested
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    shards = shard_count if shard_count is not None else len(PAPER_CLIENT_COUNTS)
    if cores < 2 or shards < 2:
        return "serial"
    return "sharded"


@dataclass(frozen=True)
class DeviceRange:
    """A contiguous run of device indices within one carrier.

    Ranges are the unit of sub-carrier sharding *and* of DNS cache
    scoping: every device in ``[start, stop)`` carries the cache scope
    ``"<carrier_key>/r<index>"``.  The range list is a pure function of
    the campaign config (``range_size`` and the resolved per-carrier
    counts) — shard and worker counts only decide how ranges are
    grouped onto processes, never where their boundaries fall.
    """

    carrier_key: str
    index: int
    start: int
    stop: int

    @property
    def device_count(self) -> int:
        return self.stop - self.start

    @property
    def scope(self) -> str:
        return f"{self.carrier_key}/r{self.index}"


@dataclass
class CampaignConfig:
    """Scale and timing of a measurement campaign."""

    #: Devices per carrier; None uses the paper's Table 1 counts.
    devices_per_carrier: Optional[Dict[str, int]] = None
    #: Uniform scale factor on the (paper or explicit) device counts.
    device_scale: float = 1.0
    #: Minimum devices per carrier after scaling.
    min_devices: int = 1
    start: float = 0.0
    duration_days: float = 153.0  # 2014-03-01 .. 2014-08-01
    interval_hours: float = 1.0
    duty_cycle: float = 0.9
    #: Devices per sub-carrier shard range (the cache-scope partition
    #: granularity).  At the default, every carrier of the paper's
    #: Table 1 population fits one range until ``device_scale`` exceeds
    #: 1.0 on Verizon, so historical datasets hash unchanged.
    range_size: int = 32
    options: ExperimentOptions = field(default_factory=ExperimentOptions)

    def resolved_counts(self, carrier_keys: Sequence[str]) -> Dict[str, int]:
        """Device counts per carrier after defaults and scaling."""
        base = dict(self.devices_per_carrier or PAPER_CLIENT_COUNTS)
        counts = {}
        for key in carrier_keys:
            if key not in base:
                raise ConfigError(f"no device count for carrier {key!r}")
            counts[key] = max(self.min_devices, round(base[key] * self.device_scale))
        return counts

    def device_ranges(self, carrier_keys: Sequence[str]) -> List[DeviceRange]:
        """The deterministic device-range list for this config."""
        counts = self.resolved_counts(carrier_keys)
        size = max(1, self.range_size)
        ranges: List[DeviceRange] = []
        for key in carrier_keys:
            count = counts[key]
            for start in range(0, count, size):
                ranges.append(
                    DeviceRange(key, start // size, start, min(start + size, count))
                )
        return ranges


class Campaign:
    """Builds the device population and runs every experiment."""

    def __init__(self, world: World, config: Optional[CampaignConfig] = None):
        self.world = world
        self.config = config or CampaignConfig()
        self.devices: List[MobileDevice] = self._build_devices()
        self.runner = ExperimentRunner(world, self.config.options)

    # -- population ----------------------------------------------------------

    def _build_devices(self) -> List[MobileDevice]:
        devices: List[MobileDevice] = []
        counts = self.config.resolved_counts(list(self.world.operators))
        range_size = max(1, self.config.range_size)
        for carrier_key, count in counts.items():
            operator = self.world.operators[carrier_key]
            cities = cities_for(operator.country)
            weights = city_weights(cities)
            stream = self.world.rng.stream("population", carrier_key)
            for index in range(count):
                device_id = f"{carrier_key}-{index:03d}"
                home = stream.weighted_choice(cities, weights)
                mobility = MobilityModel(
                    home_city=home,
                    candidate_cities=cities,
                    seed=self.world.rng.master_seed,
                    device_key=device_id,
                )
                devices.append(
                    MobileDevice(
                        device_id=device_id,
                        carrier_key=carrier_key,
                        mobility=mobility,
                        device_index=index,
                        cache_scope=f"{carrier_key}/r{index // range_size}",
                    )
                )
        return devices

    def devices_of(self, carrier_key: str) -> List[MobileDevice]:
        """The campaign's devices on one carrier."""
        return [
            device for device in self.devices if device.carrier_key == carrier_key
        ]

    def devices_in_ranges(
        self, ranges: Sequence[DeviceRange]
    ) -> List[MobileDevice]:
        """The devices covered by the given ranges, in range order."""
        by_carrier: Dict[str, List[MobileDevice]] = {}
        for device in self.devices:
            by_carrier.setdefault(device.carrier_key, []).append(device)
        selected: List[MobileDevice] = []
        for shard_range in ranges:
            carrier_devices = by_carrier.get(shard_range.carrier_key, [])
            selected.extend(carrier_devices[shard_range.start: shard_range.stop])
        return selected

    # -- execution ------------------------------------------------------------

    def _schedule(self) -> ExperimentSchedule:
        config = self.config
        return ExperimentSchedule(
            start=config.start,
            end=config.start + config.duration_days * SECONDS_PER_DAY,
            seed=self.world.rng.master_seed,
            interval_s=config.interval_hours * SECONDS_PER_HOUR,
            duty_cycle=config.duty_cycle,
        )

    def _iter_execute(
        self, devices: Sequence[MobileDevice]
    ) -> Iterator[ExperimentRecord]:
        """Yield the devices' experiment records in global event order.

        One :class:`ProbeEventQueue` drives the whole run: each device
        holds a single pending event keyed ``(timestamp, carrier_key,
        device_index, sequence)``; popping the earliest event runs that
        experiment and pushes the device's next scheduled time.  The
        key is globally comparable, so running any *subset* of devices
        yields exactly the serial stream restricted to that subset —
        the property sub-carrier shards rely on to re-merge exactly.
        """
        schedule = self._schedule()
        queue = ProbeEventQueue()
        for device in devices:
            times = schedule.iter_times(device.device_id)
            first = next(times, None)
            if first is not None:
                queue.push(
                    first,
                    device.carrier_key,
                    device.device_index,
                    0,
                    (device, times),
                )
        run = self.runner.run
        while queue:
            at, carrier_key, device_index, sequence, payload = queue.pop()
            device, times = payload
            yield run(device, at, sequence)
            following = next(times, None)
            if following is not None:
                queue.push(
                    following, carrier_key, device_index, sequence + 1, payload
                )

    def _execute(self, devices: Sequence[MobileDevice]) -> List[ExperimentRecord]:
        """Run the given devices' experiments in global event order."""
        return list(self._iter_execute(devices))

    def run_shard(self, carrier_key: str) -> List[ExperimentRecord]:
        """Run only one carrier's devices, in shard-local order.

        Restricted to a single carrier, global event order and
        shard-local order coincide — the property that makes
        per-carrier parallelism exact rather than approximate.
        """
        return self._execute(self.devices_of(carrier_key))

    def run(self) -> Dataset:
        """Run every scheduled experiment, globally event-ordered."""
        records = self._execute(self.devices)
        return self._package(records)

    def _package(self, records: List[ExperimentRecord]) -> Dataset:
        dataset = Dataset(
            experiments=records,
            metadata=self._metadata(len(records)),
        )
        return dataset

    def _metadata(self, experiments: int) -> Dict[str, object]:
        return {
            "seed": self.world.rng.master_seed,
            "devices": len(self.devices),
            "duration_days": self.config.duration_days,
            "interval_hours": self.config.interval_hours,
            "experiments": experiments,
        }

    def _streaming_metadata(self) -> Dict[str, object]:
        metadata = self._metadata(None)
        # The streaming writer cannot know the record count up front;
        # merge_shard_jsonl fills it in as it writes the metadata line.
        del metadata["experiments"]
        return metadata

    def run_streaming(self, output_path: str, sink=None) -> Dict[str, object]:
        """Run serially, streaming records straight to ``output_path``.

        Each record is serialised as it is produced and never held
        beyond the write; record bytes — and therefore
        :meth:`Dataset.content_hash` — are identical to :meth:`run`
        followed by :meth:`Dataset.save`.

        ``sink`` is the pipelined-analysis hook: an object with an
        ``ingest(record)`` method (e.g.
        :class:`repro.analysis.engine.ProjectionAccumulator`) that is
        fed every record, in stream order, before it is serialised — on
        this serial path the analysis fold costs **zero decodes**, the
        record object itself is folded.

        Returns ``{"experiments", "content_hash", "path", "metadata"}``
        where ``metadata`` is the metadata dict the output file carries
        (record count included).
        """
        if sink is None:
            lines = (
                record.to_json_line()
                for record in self._iter_execute(self.devices)
            )
        else:
            ingest = sink.ingest

            def _fold_and_serialise():
                for record in self._iter_execute(self.devices):
                    ingest(record)
                    yield record.to_json_line()

            lines = _fold_and_serialise()
        with open(output_path, "w", encoding="utf-8") as out:
            count, digest = merge_shard_jsonl(
                [lines], out, metadata=self._streaming_metadata()
            )
        metadata = self._streaming_metadata()
        metadata["experiments"] = count
        return {
            "experiments": count,
            "content_hash": digest,
            "path": output_path,
            "metadata": metadata,
        }


def _run_carrier_shard(
    world_config: WorldConfig, config: CampaignConfig, carrier_key: str
) -> List[ExperimentRecord]:
    """Worker entry point: one carrier's campaign in a fresh world.

    Runs in a spawned process, so it must be a module-level function and
    everything it needs must arrive picklable.  The world is rebuilt from
    its config — world construction is deterministic, and building it
    here (instead of pickling a live world) guarantees the shard sees
    pristine caches, exactly like the carrier-restricted serial run.
    """
    world = build_world(world_config)
    campaign = Campaign(world, config)
    return campaign.run_shard(carrier_key)


#: Per-process campaign for sub-carrier shard workers, built once by
#: the pool initializer.  One world serves every range task the worker
#: receives: ranges never share cache scope, so state left by one range
#: cannot perturb another (and compiled plans/memos are content-pure —
#: warm or cold, they produce identical bytes).
_WORKER_CAMPAIGN: Optional[Campaign] = None


def _init_shard_worker(world_config: WorldConfig, config: CampaignConfig) -> None:
    """Pool initializer: build the worker's world + campaign once."""
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = Campaign(build_world(world_config), config)


def _run_shard_ranges(ranges: Sequence[DeviceRange]) -> List[ExperimentRecord]:
    """Worker task: run one group of device ranges, records in memory."""
    campaign = _WORKER_CAMPAIGN
    return campaign._execute(campaign.devices_in_ranges(ranges))


#: Serialized lines buffered per write while spilling shard output.
_SPILL_BLOCK_LINES = 256


def _spill_shard_ranges(ranges: Sequence[DeviceRange], path: str) -> int:
    """Worker task: run one group of ranges, spilling JSONL to ``path``.

    Records are serialised and written as they are produced, so worker
    memory stays O(1) records regardless of shard size — the streaming
    half of the O(shards) packaging bound.
    """
    campaign = _WORKER_CAMPAIGN
    count = 0
    buffer: List[str] = []
    with open(path, "w", encoding="utf-8") as handle:
        for record in campaign._iter_execute(campaign.devices_in_ranges(ranges)):
            buffer.append(record.to_json_line())
            count += 1
            if len(buffer) >= _SPILL_BLOCK_LINES:
                handle.write("\n".join(buffer) + "\n")
                buffer.clear()
        if buffer:
            handle.write("\n".join(buffer) + "\n")
    return count


def _iter_jsonl_lines(path: str) -> Iterator[str]:
    """Yield non-empty lines of a spill file, newline-stripped."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                yield line


class ParallelCampaign(Campaign):
    """Campaign that runs one worker process per carrier shard.

    The legacy executor: carriers are independent shards of the
    simulation, so their experiment streams can run concurrently and be
    merged back into global event order.  Output is bit-identical to
    :meth:`Campaign.run` for the same world config and campaign config,
    but parallelism is capped at the carrier count — prefer
    :class:`ShardedCampaign`, which splits ranges *within* carriers.

    ``workers=0`` falls back to the serial loop; ``workers=None`` uses
    ``min(carrier count, cpu count)``.
    """

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
    ):
        super().__init__(world, config)
        if workers is None:
            workers = min(len(world.operators), os.cpu_count() or 1)
        self.workers = workers

    def run(self) -> Dataset:
        carrier_keys = list(self.world.operators)
        if self.workers <= 0 or len(carrier_keys) <= 1:
            return super().run()
        shards = self._run_shards(carrier_keys)
        merged = list(
            heapq.merge(
                *(shards[key] for key in carrier_keys),
                key=record_event_key,
            )
        )
        dataset = self._package(merged)
        dataset.metadata["workers"] = self.workers
        return dataset

    def _run_shards(
        self, carrier_keys: Sequence[str]
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run every carrier shard across the worker pool.

        Spawn (not fork) keeps workers importable and state-free on
        every platform; each worker rebuilds the world from config.
        """
        context = multiprocessing.get_context("spawn")
        shards: Dict[str, List[ExperimentRecord]] = {}
        with ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _run_carrier_shard, self.world.config, self.config, key
                ): key
                for key in carrier_keys
            }
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            for future in done:
                shards[futures[future]] = future.result()
        return shards


class ShardedCampaign(Campaign):
    """Campaign sharded by device range *within* carriers.

    The device population is cut into deterministic
    :class:`DeviceRange` units (see :meth:`CampaignConfig.device_ranges`);
    ``shards`` groups consecutive ranges into that many worker tasks
    (default: one task per range), and ``workers`` caps the process
    pool at ``min(cpu count, shards)``.  Each worker builds its world
    once (pool initializer) and runs its tasks' ranges through the same
    event queue the serial loop uses, so a shard's record stream is the
    serial stream restricted to its devices; the parent k-way merges
    shard streams by the global event key.  Output is bit-identical to
    :meth:`Campaign.run` for *any* shard and worker count.

    ``workers=0`` falls back to the serial loop.
    """

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
    ):
        super().__init__(world, config)
        self.ranges: List[DeviceRange] = self.config.device_ranges(
            list(world.operators)
        )
        if shards is None or shards <= 0:
            shards = len(self.ranges)
        self.shards = max(1, min(shards, len(self.ranges)))
        if workers is None:
            workers = min(os.cpu_count() or 1, self.shards)
        self.workers = workers

    def shard_tasks(self) -> List[List[DeviceRange]]:
        """Group consecutive ranges into ``shards`` balanced tasks.

        Greedy fair-share packing by device count; deterministic in the
        config alone.  Grouping affects only which process runs which
        ranges — the merged output is invariant because every record
        stream re-merges by the global event key.
        """
        ranges = self.ranges
        shard_count = self.shards
        total = sum(item.device_count for item in ranges)
        tasks: List[List[DeviceRange]] = []
        index = 0
        assigned = 0
        for shard in range(shard_count):
            remaining_shards = shard_count - shard
            target = (total - assigned) / remaining_shards
            task: List[DeviceRange] = []
            size = 0
            while index < len(ranges):
                if task:
                    if (len(ranges) - index) <= (remaining_shards - 1):
                        break  # leave at least one range per later shard
                    if size + ranges[index].device_count > target:
                        break
                task.append(ranges[index])
                size += ranges[index].device_count
                index += 1
            assigned += size
            tasks.append(task)
        return tasks

    def run(self) -> Dataset:
        """Run all shards and merge records in memory."""
        if self.workers <= 0 or self.shards <= 1:
            return super().run()
        shard_records = self._run_tasks_collect(self.shard_tasks())
        merged = list(heapq.merge(*shard_records, key=record_event_key))
        dataset = self._package(merged)
        dataset.metadata["workers"] = self.workers
        dataset.metadata["shards"] = self.shards
        return dataset

    def run_streaming(self, output_path: str, sink=None) -> Dict[str, object]:
        """Run all shards and stream the merged dataset to a file.

        Workers spill event-ordered JSONL per shard; the parent k-way
        merges the spill files straight to ``output_path``, hashing
        record lines as they pass — peak parent memory is O(shards)
        (one pending line per spill file), never O(campaign).  The
        metadata line is appended after the records (loaders accept it
        at any position); record bytes — and therefore
        :meth:`Dataset.content_hash` — are identical to :meth:`run`.

        ``sink`` is the pipelined-analysis hook: on this sharded path
        its ``ingest_line(line)`` method is fed every merged line as it
        is written (each line decoded exactly once, in the parent),
        building the analysis projections with zero re-read of
        ``output_path``.  On the serial fallback the sink folds record
        objects directly — zero decodes (see
        :meth:`Campaign.run_streaming`).

        Returns ``{"experiments", "content_hash", "path", "metadata"}``.
        """
        if self.workers <= 0 or self.shards <= 1:
            return super().run_streaming(output_path, sink)
        tasks = self.shard_tasks()
        tmpdir = tempfile.mkdtemp(prefix="repro-shards-")
        try:
            paths = [
                os.path.join(tmpdir, f"shard-{i:04d}.jsonl")
                for i in range(len(tasks))
            ]
            self._run_tasks_spill(tasks, paths)
            with open(output_path, "w", encoding="utf-8") as out:
                count, digest = merge_shard_jsonl(
                    (_iter_jsonl_lines(path) for path in paths),
                    out,
                    metadata=self._streaming_metadata(),
                    sink=sink.ingest_line if sink is not None else None,
                )
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
        metadata = self._streaming_metadata()
        metadata["experiments"] = count
        return {
            "experiments": count,
            "content_hash": digest,
            "path": output_path,
            "metadata": metadata,
        }

    def _streaming_metadata(self) -> Dict[str, object]:
        metadata = super()._streaming_metadata()
        metadata["workers"] = self.workers
        metadata["shards"] = self.shards
        return metadata

    def _pool(self, context) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.workers, len(self.ranges)) or 1,
            mp_context=context,
            initializer=_init_shard_worker,
            initargs=(self.world.config, self.config),
        )

    def _run_tasks_collect(
        self, tasks: List[List[DeviceRange]]
    ) -> List[List[ExperimentRecord]]:
        context = multiprocessing.get_context("spawn")
        with self._pool(context) as pool:
            futures = [pool.submit(_run_shard_ranges, task) for task in tasks]
            wait(futures, return_when=FIRST_EXCEPTION)
            return [future.result() for future in futures]

    def _run_tasks_spill(
        self, tasks: List[List[DeviceRange]], paths: List[str]
    ) -> List[int]:
        context = multiprocessing.get_context("spawn")
        with self._pool(context) as pool:
            futures = [
                pool.submit(_spill_shard_ranges, task, path)
                for task, path in zip(tasks, paths)
            ]
            wait(futures, return_when=FIRST_EXCEPTION)
            return [future.result() for future in futures]
