"""Campaign runner: many devices, many experiments, one dataset.

A campaign instantiates the volunteer population (Table 1's per-carrier
client counts, scaled if asked), schedules each device's experiments
over the study window, runs them in timestamp order and collects an
analysable :class:`~repro.measure.records.Dataset`.

Two execution strategies produce *bit-identical* datasets:

* :class:`Campaign` runs everything in one process, merging per-device
  schedules lazily into global ``(time, device_id)`` order.
* :class:`ParallelCampaign` exploits the simulation's shard structure:
  carriers never share mutable state (operator plumbing is per-carrier,
  shared caches are operator-scoped, every random stream is derived from
  stable names), so each carrier can run in its own worker process
  against a freshly built world and the shard outputs merge back into
  exactly the order the serial loop would have produced.  The identity
  is asserted in tests via :meth:`Dataset.content_hash`.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.errors import ConfigError
from repro.core.world import World, WorldConfig, build_world
from repro.geo.regions import cities_for, city_weights
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.measure.records import Dataset, ExperimentRecord
from repro.measure.scheduler import ExperimentSchedule

#: Per-carrier client counts from Table 1 of the paper.
PAPER_CLIENT_COUNTS: Dict[str, int] = {
    "att": 33,
    "sprint": 9,
    "tmobile": 31,
    "verizon": 64,
    "skt": 17,
    "lgu": 4,
}

#: Valid ``--executor`` choices.
EXECUTOR_CHOICES = ("auto", "serial", "parallel")


def select_executor(
    requested: str = "auto",
    cpu_count: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> str:
    """Resolve an executor request to ``"serial"`` or ``"parallel"``.

    ``auto`` picks the parallel sharded runner only when it can win:
    at least two cores to run workers on *and* at least two carrier
    shards to spread across them.  On a single-core box the spawn +
    world-rebuild overhead makes the parallel path strictly slower
    (the benchmark's ``parallel_speedup`` < 1), so ``auto`` never
    chooses it there.  Explicit requests are honoured as stated —
    the benchmark forces ``parallel`` to assert hash identity even
    where ``auto`` would not use it.
    """
    if requested not in EXECUTOR_CHOICES:
        raise ConfigError(
            f"unknown executor {requested!r}; expected one of {EXECUTOR_CHOICES}"
        )
    if requested != "auto":
        return requested
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    shards = shard_count if shard_count is not None else len(PAPER_CLIENT_COUNTS)
    if cores < 2 or shards < 2:
        return "serial"
    return "parallel"


@dataclass
class CampaignConfig:
    """Scale and timing of a measurement campaign."""

    #: Devices per carrier; None uses the paper's Table 1 counts.
    devices_per_carrier: Optional[Dict[str, int]] = None
    #: Uniform scale factor on the (paper or explicit) device counts.
    device_scale: float = 1.0
    #: Minimum devices per carrier after scaling.
    min_devices: int = 1
    start: float = 0.0
    duration_days: float = 153.0  # 2014-03-01 .. 2014-08-01
    interval_hours: float = 1.0
    duty_cycle: float = 0.9
    options: ExperimentOptions = field(default_factory=ExperimentOptions)

    def resolved_counts(self, carrier_keys: Sequence[str]) -> Dict[str, int]:
        """Device counts per carrier after defaults and scaling."""
        base = dict(self.devices_per_carrier or PAPER_CLIENT_COUNTS)
        counts = {}
        for key in carrier_keys:
            if key not in base:
                raise ConfigError(f"no device count for carrier {key!r}")
            counts[key] = max(self.min_devices, round(base[key] * self.device_scale))
        return counts


class Campaign:
    """Builds the device population and runs every experiment."""

    def __init__(self, world: World, config: Optional[CampaignConfig] = None):
        self.world = world
        self.config = config or CampaignConfig()
        self.devices: List[MobileDevice] = self._build_devices()
        self.runner = ExperimentRunner(world, self.config.options)

    # -- population ----------------------------------------------------------

    def _build_devices(self) -> List[MobileDevice]:
        devices: List[MobileDevice] = []
        counts = self.config.resolved_counts(list(self.world.operators))
        for carrier_key, count in counts.items():
            operator = self.world.operators[carrier_key]
            cities = cities_for(operator.country)
            weights = city_weights(cities)
            stream = self.world.rng.stream("population", carrier_key)
            for index in range(count):
                device_id = f"{carrier_key}-{index:03d}"
                home = stream.weighted_choice(cities, weights)
                mobility = MobilityModel(
                    home_city=home,
                    candidate_cities=cities,
                    seed=self.world.rng.master_seed,
                    device_key=device_id,
                )
                devices.append(
                    MobileDevice(
                        device_id=device_id,
                        carrier_key=carrier_key,
                        mobility=mobility,
                    )
                )
        return devices

    def devices_of(self, carrier_key: str) -> List[MobileDevice]:
        """The campaign's devices on one carrier."""
        return [
            device for device in self.devices if device.carrier_key == carrier_key
        ]

    # -- execution ------------------------------------------------------------

    def _schedule(self) -> ExperimentSchedule:
        config = self.config
        return ExperimentSchedule(
            start=config.start,
            end=config.start + config.duration_days * SECONDS_PER_DAY,
            seed=self.world.rng.master_seed,
            interval_s=config.interval_hours * SECONDS_PER_HOUR,
            duty_cycle=config.duty_cycle,
        )

    @staticmethod
    def _device_slots(
        device: MobileDevice, schedule: ExperimentSchedule
    ) -> Iterator[Tuple[float, MobileDevice, int]]:
        for sequence, at in enumerate(schedule.iter_times(device.device_id)):
            yield at, device, sequence

    def _execute(self, devices: Sequence[MobileDevice]) -> List[ExperimentRecord]:
        """Run the given devices' experiments in ``(time, device)`` order.

        Per-device schedules are already time-sorted (jitter never
        reorders slots), so an N-way lazy merge replaces materialising
        and sorting the whole campaign queue.  Device ids are unique,
        hence keys are distinct and the merged order is exactly the old
        globally sorted order.
        """
        schedule = self._schedule()
        slots = heapq.merge(
            *(self._device_slots(device, schedule) for device in devices),
            key=lambda slot: (slot[0], slot[1].device_id),
        )
        return [
            self.runner.run(device, at, sequence) for at, device, sequence in slots
        ]

    def run_shard(self, carrier_key: str) -> List[ExperimentRecord]:
        """Run only one carrier's devices, in shard-local order.

        Restricted to a single carrier, global ``(time, device_id)``
        order and shard-local order coincide — the property that makes
        per-carrier parallelism exact rather than approximate.
        """
        return self._execute(self.devices_of(carrier_key))

    def run(self) -> Dataset:
        """Run every scheduled experiment, globally time-ordered."""
        records = self._execute(self.devices)
        return self._package(records)

    def _package(self, records: List[ExperimentRecord]) -> Dataset:
        dataset = Dataset(
            experiments=records,
            metadata={
                "seed": self.world.rng.master_seed,
                "devices": len(self.devices),
                "duration_days": self.config.duration_days,
                "interval_hours": self.config.interval_hours,
                "experiments": len(records),
            },
        )
        return dataset


def _run_carrier_shard(
    world_config: WorldConfig, config: CampaignConfig, carrier_key: str
) -> List[ExperimentRecord]:
    """Worker entry point: one carrier's campaign in a fresh world.

    Runs in a spawned process, so it must be a module-level function and
    everything it needs must arrive picklable.  The world is rebuilt from
    its config — world construction is deterministic, and building it
    here (instead of pickling a live world) guarantees the shard sees
    pristine caches, exactly like the carrier-restricted serial run.
    """
    world = build_world(world_config)
    campaign = Campaign(world, config)
    return campaign.run_shard(carrier_key)


class ParallelCampaign(Campaign):
    """Campaign that runs one worker process per carrier shard.

    Carriers are independent shards of the simulation (see the module
    docstring), so their experiment streams can run concurrently and be
    merged back into global timestamp order.  Output is bit-identical to
    :meth:`Campaign.run` for the same world config and campaign config.

    ``workers=0`` falls back to the serial loop; ``workers=None`` uses
    ``min(carrier count, cpu count)``.
    """

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
    ):
        super().__init__(world, config)
        if workers is None:
            workers = min(len(world.operators), os.cpu_count() or 1)
        self.workers = workers

    def run(self) -> Dataset:
        carrier_keys = list(self.world.operators)
        if self.workers <= 0 or len(carrier_keys) <= 1:
            return super().run()
        shards = self._run_shards(carrier_keys)
        merged = list(
            heapq.merge(
                *(shards[key] for key in carrier_keys),
                key=lambda record: (record.started_at, record.device_id),
            )
        )
        dataset = self._package(merged)
        dataset.metadata["workers"] = self.workers
        return dataset

    def _run_shards(
        self, carrier_keys: Sequence[str]
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run every carrier shard across the worker pool.

        Spawn (not fork) keeps workers importable and state-free on
        every platform; each worker rebuilds the world from config.
        """
        context = multiprocessing.get_context("spawn")
        shards: Dict[str, List[ExperimentRecord]] = {}
        with ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _run_carrier_shard, self.world.config, self.config, key
                ): key
                for key in carrier_keys
            }
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            for future in done:
                shards[futures[future]] = future.result()
        return shards
