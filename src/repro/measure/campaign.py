"""Campaign runner: many devices, many experiments, one dataset.

A campaign instantiates the volunteer population (Table 1's per-carrier
client counts, scaled if asked), schedules each device's experiments
over the study window, runs them in probe-event order and collects an
analysable :class:`~repro.measure.records.Dataset`.

Three execution strategies produce *bit-identical* datasets:

* :class:`Campaign` runs everything in one process, draining one
  :class:`~repro.measure.scheduler.ProbeEventQueue` keyed
  ``(timestamp, carrier_key, device_index, sequence)``.
* :class:`ParallelCampaign` runs one worker process per carrier shard
  (the legacy executor, capped at six shards).
* :class:`ShardedCampaign` shards by *device range within* a carrier:
  the population is cut into deterministic ranges of
  :attr:`CampaignConfig.range_size` consecutive devices, any number of
  ranges can be grouped into ``--shards N`` worker tasks, and shard
  outputs re-merge by the global event key.

What makes sub-carrier sharding exact rather than approximate is the
cache-scope policy: the only mutable state devices share is DNS cache
contents, and every campaign resolution is scoped by the device's
range label (``MobileDevice.cache_scope``), applied identically by the
serial executor.  Range boundaries depend only on the campaign config —
never on the shard count or worker count — so the cache partition, and
therefore every record byte, is invariant across executors and any
``--shards N``.  The identity is asserted in tests via
:meth:`Dataset.content_hash`.

The multiprocess executors run *warm worker pools*:

* **Snapshot bootstrap** — the parent serializes its pristine world
  once (:func:`~repro.core.world.snapshot_world`) and ships the bytes
  to pool initializers; each worker materialises its world with one
  ``pickle.loads`` instead of re-running ``build_world``, with the
  rebuild kept as an automatic fallback.  Snapshot-booted and rebuilt
  workers are asserted byte-identical.
* **Fork-aware contexts** — ``mp_context="auto"`` prefers ``fork``
  where safe (Linux: the snapshot is inherited copy-on-write), then
  ``forkserver``, then ``spawn`` (the portable reference).  Output is
  identical under every context.
* **Persistent pools** — one ``ProcessPoolExecutor`` is reused across
  ``run``/``run_streaming`` calls; lifecycle is explicit
  (:meth:`close`, context manager).  Each run gets a fresh *run
  token*: workers re-boot a pristine campaign per token, so repeated
  runs on one campaign object are idempotent.
* **Overlapped shard→merge** — :meth:`ShardedCampaign.run_streaming`
  tails shard spill files while the shards still execute: the k-way
  merge (and the analysis sink fold, and the output hashing) advances
  as far as every shard's flushed frontier allows, so only the tail of
  the merge waits for the slowest shard.

For campaigns too large to materialise, :meth:`ShardedCampaign.run_streaming`
spills each shard's records to JSONL as they are produced and k-way
merges the spill files by event key straight to the output path, so
peak memory is O(shards), not O(campaign).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import shutil
import sys
import tempfile
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.errors import ConfigError
from repro.core.world import (
    World,
    WorldConfig,
    boot_world,
    build_world,
    measured_bootstrap_s,
    snapshot_world,
)
from repro.geo.regions import cities_for, city_weights
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.measure.records import (
    Dataset,
    ExperimentRecord,
    record_event_key,
)
from repro.measure.scheduler import ExperimentSchedule, ProbeEventQueue

#: Per-carrier client counts from Table 1 of the paper.
PAPER_CLIENT_COUNTS: Dict[str, int] = {
    "att": 33,
    "sprint": 9,
    "tmobile": 31,
    "verizon": 64,
    "skt": 17,
    "lgu": 4,
}

#: Valid ``--executor`` choices.
EXECUTOR_CHOICES = ("auto", "serial", "parallel", "sharded")

#: Valid worker-pool start-method requests.
MP_CONTEXT_CHOICES = ("auto", "fork", "forkserver", "spawn")

#: Estimated fixed cost of standing up one pool worker beyond the world
#: bootstrap itself: interpreter spawn (zero under fork), module
#: imports, and the worker's own device build.
WORKER_SPAWN_OVERHEAD_S = 0.6

#: World-bootstrap estimate used before any measurement exists in this
#: process (see :func:`~repro.core.world.measured_bootstrap_s`).
DEFAULT_WORLD_BOOT_S = 0.25

#: Per-experiment serial simulate estimate (seconds) used when the
#: caller provides an experiment count but no measured rate.
DEFAULT_PER_EXPERIMENT_S = 0.002

#: ``auto`` goes multiprocess only when the estimated serial simulate
#: time exceeds this multiple of one worker's bootstrap cost.
MIN_AMORTIZATION = 2.0


class ExecutorDecision(str):
    """An executor choice that explains itself.

    A plain ``str`` subclass equal to the chosen executor name — every
    existing ``== "serial"`` comparison keeps working — that also
    carries the reasoning: why this executor, and the estimated
    bootstrap/simulate costs the ``auto`` policy weighed.
    """

    def __new__(
        cls,
        executor: str,
        reason: str,
        bootstrap_s: Optional[float] = None,
        simulate_s: Optional[float] = None,
        cpu_count: Optional[int] = None,
        shard_count: Optional[int] = None,
    ) -> "ExecutorDecision":
        self = super().__new__(cls, executor)
        self.reason = reason
        self.bootstrap_s = bootstrap_s
        self.simulate_s = simulate_s
        self.cpu_count = cpu_count
        self.shard_count = shard_count
        return self

    @property
    def executor(self) -> str:
        """The chosen executor name, as a plain string."""
        return str(self)

    def describe(self) -> str:
        """One log-friendly line: choice, reason, and the estimates."""
        parts = [f"executor {self!s}: {self.reason}"]
        if self.bootstrap_s is not None:
            parts.append(f"est. worker bootstrap {self.bootstrap_s:.2f}s")
        if self.simulate_s is not None:
            parts.append(f"est. serial simulate {self.simulate_s:.1f}s")
        return " | ".join(parts)


def select_executor(
    requested: str = "auto",
    cpu_count: Optional[int] = None,
    shard_count: Optional[int] = None,
    experiments: Optional[int] = None,
    bootstrap_s: Optional[float] = None,
    per_experiment_s: Optional[float] = None,
) -> ExecutorDecision:
    """Resolve an executor request to a concrete strategy, with reasons.

    ``auto`` weighs parallelism supply against amortization: it picks
    the sub-carrier ``sharded`` runner when there are at least two
    cores, at least two device ranges to spread across them, *and* the
    estimated serial simulate time exceeds a small multiple of one
    worker's bootstrap cost.  The bootstrap estimate is **measured**
    where possible — the world module records how long snapshot boots
    and rebuilds actually took in this process
    (:func:`~repro.core.world.measured_bootstrap_s`) — instead of the
    old static device-range threshold.  When the caller cannot supply
    an ``experiments`` count the campaign is assumed large (matching
    the historical behaviour for the supply-side checks).

    Explicit requests are honoured as stated — the benchmark forces the
    parallel executors to assert hash identity even where ``auto``
    would not use them.

    Returns an :class:`ExecutorDecision` — a ``str`` subclass equal to
    the chosen executor, carrying the reason and cost estimates.
    """
    if requested not in EXECUTOR_CHOICES:
        raise ConfigError(
            f"unknown executor {requested!r}; expected one of {EXECUTOR_CHOICES}"
        )
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    shards = shard_count if shard_count is not None else len(PAPER_CLIENT_COUNTS)
    if bootstrap_s is None:
        measured = measured_bootstrap_s()
        world_boot = measured if measured is not None else DEFAULT_WORLD_BOOT_S
        bootstrap_s = WORKER_SPAWN_OVERHEAD_S + world_boot
    simulate_s: Optional[float] = None
    if experiments is not None:
        rate = (
            per_experiment_s
            if per_experiment_s is not None
            else DEFAULT_PER_EXPERIMENT_S
        )
        simulate_s = experiments * rate
    context = dict(
        bootstrap_s=bootstrap_s,
        simulate_s=simulate_s,
        cpu_count=cores,
        shard_count=shards,
    )
    if requested != "auto":
        return ExecutorDecision(requested, "explicit request", **context)
    if cores < 2:
        return ExecutorDecision(
            "serial",
            "single core: worker bootstrap can never be amortized",
            **context,
        )
    if shards < 2:
        return ExecutorDecision(
            "serial",
            "a single device range leaves nothing to spread across workers",
            **context,
        )
    if simulate_s is not None and simulate_s < bootstrap_s * MIN_AMORTIZATION:
        return ExecutorDecision(
            "serial",
            f"campaign too small to amortize worker bootstrap "
            f"(~{simulate_s:.1f}s serial vs ~{bootstrap_s:.2f}s per worker)",
            **context,
        )
    return ExecutorDecision(
        "sharded",
        f"{shards} device ranges across {cores} cores amortize the "
        f"per-worker bootstrap",
        **context,
    )


def resolve_mp_context(requested: str = "auto") -> str:
    """Resolve a worker-pool start-method request against the platform.

    ``auto`` prefers ``fork`` where it is available and safe to use
    from this single-threaded parent (Linux — the world snapshot is
    then inherited copy-on-write, making worker bootstrap nearly
    free), then ``forkserver``, then ``spawn`` — the always-available
    portable reference.  Campaign output is byte-identical under every
    context; only bootstrap cost differs.
    """
    if requested not in MP_CONTEXT_CHOICES:
        raise ConfigError(
            f"unknown start method {requested!r}; "
            f"expected one of {MP_CONTEXT_CHOICES}"
        )
    methods = multiprocessing.get_all_start_methods()
    if requested == "auto":
        if sys.platform.startswith("linux") and "fork" in methods:
            return "fork"
        if "forkserver" in methods:
            return "forkserver"
        return "spawn"
    if requested not in methods:
        raise ConfigError(
            f"start method {requested!r} is unavailable on this platform "
            f"(available: {methods})"
        )
    return requested


@dataclass(frozen=True)
class DeviceRange:
    """A contiguous run of device indices within one carrier.

    Ranges are the unit of sub-carrier sharding *and* of DNS cache
    scoping: every device in ``[start, stop)`` carries the cache scope
    ``"<carrier_key>/r<index>"``.  The range list is a pure function of
    the campaign config (``range_size`` and the resolved per-carrier
    counts) — shard and worker counts only decide how ranges are
    grouped onto processes, never where their boundaries fall.
    """

    carrier_key: str
    index: int
    start: int
    stop: int

    @property
    def device_count(self) -> int:
        return self.stop - self.start

    @property
    def scope(self) -> str:
        return f"{self.carrier_key}/r{self.index}"


@dataclass
class CampaignConfig:
    """Scale and timing of a measurement campaign."""

    #: Devices per carrier; None uses the paper's Table 1 counts.
    devices_per_carrier: Optional[Dict[str, int]] = None
    #: Uniform scale factor on the (paper or explicit) device counts.
    device_scale: float = 1.0
    #: Minimum devices per carrier after scaling.
    min_devices: int = 1
    start: float = 0.0
    duration_days: float = 153.0  # 2014-03-01 .. 2014-08-01
    interval_hours: float = 1.0
    duty_cycle: float = 0.9
    #: Devices per sub-carrier shard range (the cache-scope partition
    #: granularity).  At the default, every carrier of the paper's
    #: Table 1 population fits one range until ``device_scale`` exceeds
    #: 1.0 on Verizon, so historical datasets hash unchanged.
    range_size: int = 32
    options: ExperimentOptions = field(default_factory=ExperimentOptions)

    def resolved_counts(self, carrier_keys: Sequence[str]) -> Dict[str, int]:
        """Device counts per carrier after defaults and scaling."""
        base = dict(self.devices_per_carrier or PAPER_CLIENT_COUNTS)
        counts = {}
        for key in carrier_keys:
            if key not in base:
                raise ConfigError(f"no device count for carrier {key!r}")
            counts[key] = max(self.min_devices, round(base[key] * self.device_scale))
        return counts

    def device_ranges(self, carrier_keys: Sequence[str]) -> List[DeviceRange]:
        """The deterministic device-range list for this config."""
        counts = self.resolved_counts(carrier_keys)
        size = max(1, self.range_size)
        ranges: List[DeviceRange] = []
        for key in carrier_keys:
            count = counts[key]
            for start in range(0, count, size):
                ranges.append(
                    DeviceRange(key, start // size, start, min(start + size, count))
                )
        return ranges

    def estimated_experiments(self, carrier_keys: Sequence[str]) -> int:
        """Rough campaign size for executor-selection cost estimates.

        Devices times scheduled slots times duty cycle — an estimate
        (per-device schedules jitter around the duty cycle), but well
        within the factor-of-two accuracy amortization decisions need.
        """
        devices = sum(self.resolved_counts(carrier_keys).values())
        interval_s = max(self.interval_hours, 1e-9) * SECONDS_PER_HOUR
        slots = (self.duration_days * SECONDS_PER_DAY) / interval_s
        return int(devices * slots * self.duty_cycle)


class Campaign:
    """Builds the device population and runs every experiment."""

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        snapshot: Optional[bytes] = None,
    ):
        self.world = world
        self.config = config or CampaignConfig()
        #: Serialized pristine world (None when the world cannot be
        #: pickled — then workers fall back to ``build_world``).  Taken
        #: *before* the population build below mutates the world's RNG
        #: registry, so booting the snapshot restores exactly the state
        #: this campaign's first run starts from.
        self.world_snapshot = (
            snapshot if snapshot is not None else snapshot_world(world)
        )
        self.devices: List[MobileDevice] = self._build_devices()
        self.runner = ExperimentRunner(world, self.config.options)
        #: Whether this object's serial state has served a run already
        #: (repeated serial runs re-boot pristine state first).
        self._ran_serial = False

    # -- population ----------------------------------------------------------

    def _build_devices(self) -> List[MobileDevice]:
        devices: List[MobileDevice] = []
        counts = self.config.resolved_counts(list(self.world.operators))
        range_size = max(1, self.config.range_size)
        for carrier_key, count in counts.items():
            operator = self.world.operators[carrier_key]
            cities = cities_for(operator.country)
            weights = city_weights(cities)
            stream = self.world.rng.stream("population", carrier_key)
            for index in range(count):
                device_id = f"{carrier_key}-{index:03d}"
                home = stream.weighted_choice(cities, weights)
                mobility = MobilityModel(
                    home_city=home,
                    candidate_cities=cities,
                    seed=self.world.rng.master_seed,
                    device_key=device_id,
                )
                devices.append(
                    MobileDevice(
                        device_id=device_id,
                        carrier_key=carrier_key,
                        mobility=mobility,
                        device_index=index,
                        cache_scope=f"{carrier_key}/r{index // range_size}",
                    )
                )
        return devices

    def devices_of(self, carrier_key: str) -> List[MobileDevice]:
        """The campaign's devices on one carrier."""
        return [
            device for device in self.devices if device.carrier_key == carrier_key
        ]

    def devices_in_ranges(
        self, ranges: Sequence[DeviceRange]
    ) -> List[MobileDevice]:
        """The devices covered by the given ranges, in range order."""
        by_carrier: Dict[str, List[MobileDevice]] = {}
        for device in self.devices:
            by_carrier.setdefault(device.carrier_key, []).append(device)
        selected: List[MobileDevice] = []
        for shard_range in ranges:
            carrier_devices = by_carrier.get(shard_range.carrier_key, [])
            selected.extend(carrier_devices[shard_range.start: shard_range.stop])
        return selected

    # -- execution ------------------------------------------------------------

    def _schedule(self) -> ExperimentSchedule:
        config = self.config
        return ExperimentSchedule(
            start=config.start,
            end=config.start + config.duration_days * SECONDS_PER_DAY,
            seed=self.world.rng.master_seed,
            interval_s=config.interval_hours * SECONDS_PER_HOUR,
            duty_cycle=config.duty_cycle,
        )

    def _reset_serial_state(self) -> None:
        """Re-boot pristine world, population and runner.

        A serial execution advances per-device RNG streams, RRC state
        and DNS caches in place, so a second run over the same objects
        would drift.  Booting a pristine world (snapshot when
        available, rebuild otherwise) and re-deriving the population
        restores exactly the state the first run started from — the
        same per-run freshness warm pool workers get from run tokens.
        """
        world, _ = boot_world(self.world_snapshot, self.world.config)
        self.world = world
        self.devices = self._build_devices()
        self.runner = ExperimentRunner(world, self.config.options)

    def _prepare_serial_run(self) -> None:
        """Make repeated serial ``run``/``run_streaming`` idempotent."""
        if self._ran_serial:
            self._reset_serial_state()
        self._ran_serial = True

    def _iter_execute(
        self, devices: Sequence[MobileDevice]
    ) -> Iterator[ExperimentRecord]:
        """Yield the devices' experiment records in global event order.

        One :class:`ProbeEventQueue` drives the whole run: each device
        holds a single pending event keyed ``(timestamp, carrier_key,
        device_index, sequence)``; popping the earliest event runs that
        experiment and pushes the device's next scheduled time.  The
        key is globally comparable, so running any *subset* of devices
        yields exactly the serial stream restricted to that subset —
        the property sub-carrier shards rely on to re-merge exactly.
        """
        schedule = self._schedule()
        queue = ProbeEventQueue()
        for device in devices:
            times = schedule.iter_times(device.device_id)
            first = next(times, None)
            if first is not None:
                queue.push(
                    first,
                    device.carrier_key,
                    device.device_index,
                    0,
                    (device, times),
                )
        run = self.runner.run
        while queue:
            at, carrier_key, device_index, sequence, payload = queue.pop()
            device, times = payload
            yield run(device, at, sequence)
            following = next(times, None)
            if following is not None:
                queue.push(
                    following, carrier_key, device_index, sequence + 1, payload
                )

    def _execute(self, devices: Sequence[MobileDevice]) -> List[ExperimentRecord]:
        """Run the given devices' experiments in global event order."""
        return list(self._iter_execute(devices))

    def run_shard(self, carrier_key: str) -> List[ExperimentRecord]:
        """Run only one carrier's devices, in shard-local order.

        Restricted to a single carrier, global event order and
        shard-local order coincide — the property that makes
        per-carrier parallelism exact rather than approximate.
        """
        return self._execute(self.devices_of(carrier_key))

    def run(self) -> Dataset:
        """Run every scheduled experiment, globally event-ordered."""
        self._prepare_serial_run()
        records = self._execute(self.devices)
        return self._package(records)

    def _package(self, records: List[ExperimentRecord]) -> Dataset:
        dataset = Dataset(
            experiments=records,
            metadata=self._metadata(len(records)),
        )
        return dataset

    def _metadata(self, experiments: int) -> Dict[str, object]:
        return {
            "seed": self.world.rng.master_seed,
            "devices": len(self.devices),
            "duration_days": self.config.duration_days,
            "interval_hours": self.config.interval_hours,
            "experiments": experiments,
        }

    def _streaming_metadata(self) -> Dict[str, object]:
        metadata = self._metadata(None)
        # The streaming writer cannot know the record count up front;
        # merge_shard_jsonl fills it in as it writes the metadata line.
        del metadata["experiments"]
        return metadata

    def run_streaming(
        self, output_path: str, sink=None, backend: Optional[str] = None
    ) -> Dict[str, object]:
        """Run serially, streaming records straight to ``output_path``.

        Each record is serialised as it is produced and never held
        beyond the write; record bytes — and therefore
        :meth:`Dataset.content_hash` — are identical to :meth:`run`
        followed by :meth:`Dataset.save`.

        ``sink`` is the pipelined-analysis hook: an object with an
        ``ingest(record)`` method (e.g.
        :class:`repro.analysis.engine.ProjectionAccumulator`) that is
        fed every record, in stream order, before it is serialised — on
        this serial path the analysis fold costs **zero decodes**, the
        record object itself is folded.

        ``backend`` selects the on-disk layout (see
        :mod:`repro.measure.backends`); the default resolves from the
        output path's extension with JSONL — the byte reference — as
        the fallback.  The content hash is backend-independent.

        Returns ``{"experiments", "content_hash", "path", "metadata"}``
        where ``metadata`` is the metadata dict the output file carries
        (record count included).
        """
        from repro.measure.backends import resolve_backend

        self._prepare_serial_run()
        if sink is None:
            lines = (
                record.to_json_line()
                for record in self._iter_execute(self.devices)
            )
        else:
            ingest = sink.ingest

            def _fold_and_serialise():
                for record in self._iter_execute(self.devices):
                    ingest(record)
                    yield record.to_json_line()

            lines = _fold_and_serialise()
        count, digest = resolve_backend(backend, output_path).write_archive_lines(
            output_path, [lines], metadata=self._streaming_metadata()
        )
        metadata = self._streaming_metadata()
        metadata["experiments"] = count
        return {
            "experiments": count,
            "content_hash": digest,
            "path": output_path,
            "metadata": metadata,
        }


# -- worker processes --------------------------------------------------------

#: Boot materials for this worker process, set by the pool initializer:
#: ``(snapshot_bytes_or_None, world_config, campaign_config)``.
_WORKER_BOOT: Optional[tuple] = None

#: The campaign serving the current run token (see ``_worker_campaign``).
_WORKER_CAMPAIGN: Optional[Campaign] = None
_WORKER_TOKEN: Optional[int] = None

#: ``"snapshot"`` or ``"rebuild"``: how this worker's world last booted.
_WORKER_BOOT_MODE: Optional[str] = None


def _init_shard_worker(
    snapshot: Optional[bytes], world_config: WorldConfig, config: CampaignConfig
) -> None:
    """Pool initializer: stash boot materials and pre-boot for run 0.

    Workers are *warm*: the pool persists across runs, and each run
    token boots a fresh campaign (pristine world, pristine caches) so
    repeated runs are idempotent.  The snapshot rides the initializer
    args — inherited copy-on-write under fork contexts, shipped once
    per worker under spawn — and booting from it skips the world
    rebuild (``build_world`` stays as the automatic fallback).
    """
    global _WORKER_BOOT, _WORKER_CAMPAIGN, _WORKER_TOKEN
    _WORKER_BOOT = (snapshot, world_config, config)
    _WORKER_CAMPAIGN = None
    _WORKER_TOKEN = None
    # Pre-boot the first run's campaign so bootstrap overlaps pool
    # spin-up instead of delaying the first task.
    _worker_campaign(0)


def _worker_campaign(run_token: int) -> Campaign:
    """This worker's campaign for ``run_token``, booting if stale.

    One campaign serves every task of one run: ranges never share
    cache scope, so state left by one range cannot perturb another
    (and compiled plans/memos are content-pure — warm or cold, they
    produce identical bytes).  A *new* token means the parent started
    another run; the worker re-boots pristine state so that run is
    byte-identical to the first.
    """
    global _WORKER_CAMPAIGN, _WORKER_TOKEN, _WORKER_BOOT_MODE
    campaign = _WORKER_CAMPAIGN
    if campaign is not None and _WORKER_TOKEN == run_token:
        return campaign
    snapshot, world_config, config = _WORKER_BOOT
    world, mode = boot_world(snapshot, world_config)
    campaign = Campaign(world, config, snapshot=snapshot)
    _WORKER_CAMPAIGN = campaign
    _WORKER_TOKEN = run_token
    _WORKER_BOOT_MODE = mode
    return campaign


def _run_carrier_shard(run_token: int, carrier_key: str) -> List[ExperimentRecord]:
    """Worker task: one carrier's shard (the parallel executor's unit)."""
    return _worker_campaign(run_token).run_shard(carrier_key)


def _run_shard_ranges(
    run_token: int, ranges: Sequence[DeviceRange]
) -> List[ExperimentRecord]:
    """Worker task: run one group of device ranges, records in memory."""
    campaign = _worker_campaign(run_token)
    return campaign._execute(campaign.devices_in_ranges(ranges))


#: Serialized lines buffered per write while spilling shard output.
_SPILL_BLOCK_LINES = 256


def _spill_shard_ranges(
    run_token: int, ranges: Sequence[DeviceRange], path: str
) -> int:
    """Worker task: run one group of ranges, spilling JSONL to ``path``.

    Records are serialised and written as they are produced, so worker
    memory stays O(1) records regardless of shard size — the streaming
    half of the O(shards) packaging bound.  Writes land in whole-line
    blocks, which is what lets the parent tail the file mid-run for
    the overlapped merge.
    """
    campaign = _worker_campaign(run_token)
    count = 0
    buffer: List[str] = []
    with open(path, "w", encoding="utf-8") as handle:
        for record in campaign._iter_execute(campaign.devices_in_ranges(ranges)):
            buffer.append(record.to_json_line())
            count += 1
            if len(buffer) >= _SPILL_BLOCK_LINES:
                handle.write("\n".join(buffer) + "\n")
                handle.flush()
                buffer.clear()
        if buffer:
            handle.write("\n".join(buffer) + "\n")
    return count


def _iter_jsonl_lines(path: str) -> Iterator[str]:
    """Yield non-empty lines of a spill file, newline-stripped."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                yield line


#: Poll cadence while tailing a still-running shard's spill file.
_TAIL_POLL_S = 0.02


def _tail_jsonl_lines(path: str, future) -> Iterator[str]:
    """Yield a spill file's lines while its producer may still run.

    The overlapped shard→merge pipeline: the k-way merge starts before
    the slowest shard finishes, so sink folding, serialising and
    hashing of already-safe records overlap shard execution.  Each
    shard's stream is event-ordered, so ``heapq.merge`` only pulls
    this shard's next line when it might be the global minimum; while
    the producer is still running that pull blocks here, polling for
    the next flushed block — which is exactly the safety condition (a
    line is emitted only once every shard is known to be past its
    key), so merged bytes are identical to the wait-then-merge path.

    Only complete (newline-terminated) lines are consumed — the worker
    flushes whole-line blocks.  A producer error propagates from here
    once observed.
    """
    offset = 0
    pending = b""
    while True:
        finished = future.done()
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size > offset:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
            pending += chunk
            complete = pending.split(b"\n")
            pending = complete.pop()
            for raw in complete:
                if raw:
                    yield raw.decode("utf-8")
            continue
        if finished:
            break
        time.sleep(_TAIL_POLL_S)
    future.result()  # propagate the worker's exception, if any


class _WarmPoolMixin:
    """Persistent worker-pool lifecycle shared by multiprocess campaigns.

    The pool is created on first use and *reused* across runs — worker
    processes stay warm, so repeat runs pay zero interpreter spawns and
    (via run tokens) one snapshot boot instead of a world rebuild.
    Lifecycle is explicit: :meth:`close` (idempotent) or use the
    campaign as a context manager; garbage collection closes without
    waiting as a backstop.
    """

    def _init_pool_state(self, mp_context: str) -> None:
        self.mp_context: str = resolve_mp_context(mp_context)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0
        self._run_token = 0
        #: Pool lifecycle counters: how many pools this campaign
        #: created and how many runs reused a live one — the bench's
        #: pool-amortization signal.
        self.pool_stats: Dict[str, int] = {"created": 0, "reused": 0}

    def _next_run_token(self) -> int:
        """A fresh token per run: workers re-boot pristine state on it."""
        token = self._run_token
        self._run_token = token + 1
        return token

    def _ensure_pool(self, max_workers: int) -> ProcessPoolExecutor:
        pool = self._executor
        if (
            pool is not None
            and self._executor_workers == max_workers
            and not getattr(pool, "_broken", False)
        ):
            self.pool_stats["reused"] += 1
            return pool
        if pool is not None:
            pool.shutdown(wait=True)
            self._executor = None
        pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(self.mp_context),
            initializer=_init_shard_worker,
            initargs=(self.world_snapshot, self.world.config, self.config),
        )
        self._executor = pool
        self._executor_workers = max_workers
        self.pool_stats["created"] += 1
        return pool

    def close(self, wait: bool = True) -> None:
        """Shut the warm worker pool down (idempotent)."""
        pool = self._executor
        self._executor = None
        self._executor_workers = 0
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):
        try:
            self.close(wait=False)
        except Exception:
            pass


class ParallelCampaign(_WarmPoolMixin, Campaign):
    """Campaign that runs one worker process per carrier shard.

    The legacy executor: carriers are independent shards of the
    simulation, so their experiment streams can run concurrently and be
    merged back into global event order.  Output is bit-identical to
    :meth:`Campaign.run` for the same world config and campaign config,
    but parallelism is capped at the carrier count — prefer
    :class:`ShardedCampaign`, which splits ranges *within* carriers.

    ``workers=0`` falls back to the serial loop; ``workers=None`` uses
    ``min(carrier count, cpu count)``.  The worker pool is warm (see
    :class:`_WarmPoolMixin`): snapshot-booted, persistent across runs,
    closed via :meth:`close` or the context-manager protocol.
    """

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
        mp_context: str = "auto",
    ):
        super().__init__(world, config)
        if workers is None:
            workers = min(len(world.operators), os.cpu_count() or 1)
        self.workers = workers
        self._init_pool_state(mp_context)

    def run(self) -> Dataset:
        carrier_keys = list(self.world.operators)
        if self.workers <= 0 or len(carrier_keys) <= 1:
            return super().run()
        shards = self._run_shards(carrier_keys)
        merged = list(
            heapq.merge(
                *(shards[key] for key in carrier_keys),
                key=record_event_key,
            )
        )
        dataset = self._package(merged)
        dataset.metadata["workers"] = self.workers
        return dataset

    def _run_shards(
        self, carrier_keys: Sequence[str]
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run every carrier shard across the warm worker pool."""
        token = self._next_run_token()
        pool = self._ensure_pool(min(self.workers, len(carrier_keys)) or 1)
        shards: Dict[str, List[ExperimentRecord]] = {}
        futures = {
            pool.submit(_run_carrier_shard, token, key): key
            for key in carrier_keys
        }
        done, _ = wait(futures, return_when=FIRST_EXCEPTION)
        for future in done:
            shards[futures[future]] = future.result()
        return shards


class ShardedCampaign(_WarmPoolMixin, Campaign):
    """Campaign sharded by device range *within* carriers.

    The device population is cut into deterministic
    :class:`DeviceRange` units (see :meth:`CampaignConfig.device_ranges`);
    ``shards`` groups consecutive ranges into that many worker tasks
    (default: one task per range), and ``workers`` caps the process
    pool at ``min(cpu count, shards)``.  Each worker boots its world
    from the parent's snapshot (rebuilds as fallback) and runs its
    tasks' ranges through the same event queue the serial loop uses,
    so a shard's record stream is the serial stream restricted to its
    devices; the parent k-way merges shard streams by the global event
    key.  Output is bit-identical to :meth:`Campaign.run` for *any*
    shard count, worker count and start method.

    The worker pool is warm (see :class:`_WarmPoolMixin`): persistent
    across ``run``/``run_streaming`` calls with per-run tokens keeping
    repeated runs idempotent; close via :meth:`close` or use the
    campaign as a context manager.

    ``workers=0`` falls back to the serial loop.
    """

    def __init__(
        self,
        world: World,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        mp_context: str = "auto",
    ):
        super().__init__(world, config)
        self.ranges: List[DeviceRange] = self.config.device_ranges(
            list(world.operators)
        )
        if shards is None or shards <= 0:
            shards = len(self.ranges)
        self.shards = max(1, min(shards, len(self.ranges)))
        if workers is None:
            workers = min(os.cpu_count() or 1, self.shards)
        self.workers = workers
        self._init_pool_state(mp_context)

    def shard_tasks(self) -> List[List[DeviceRange]]:
        """Group consecutive ranges into ``shards`` balanced tasks.

        Greedy fair-share packing by device count; deterministic in the
        config alone.  Grouping affects only which process runs which
        ranges — the merged output is invariant because every record
        stream re-merges by the global event key.
        """
        ranges = self.ranges
        shard_count = self.shards
        total = sum(item.device_count for item in ranges)
        tasks: List[List[DeviceRange]] = []
        index = 0
        assigned = 0
        for shard in range(shard_count):
            remaining_shards = shard_count - shard
            target = (total - assigned) / remaining_shards
            task: List[DeviceRange] = []
            size = 0
            while index < len(ranges):
                if task:
                    if (len(ranges) - index) <= (remaining_shards - 1):
                        break  # leave at least one range per later shard
                    if size + ranges[index].device_count > target:
                        break
                task.append(ranges[index])
                size += ranges[index].device_count
                index += 1
            assigned += size
            tasks.append(task)
        return tasks

    def run(self) -> Dataset:
        """Run all shards and merge records in memory."""
        if self.workers <= 0 or self.shards <= 1:
            return super().run()
        shard_records = self._run_tasks_collect(self.shard_tasks())
        merged = list(heapq.merge(*shard_records, key=record_event_key))
        dataset = self._package(merged)
        dataset.metadata["workers"] = self.workers
        dataset.metadata["shards"] = self.shards
        return dataset

    def run_streaming(
        self,
        output_path: str,
        sink=None,
        overlap: bool = True,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run all shards and stream the merged dataset to a file.

        Workers spill event-ordered JSONL per shard; the parent k-way
        merges the spill files straight to ``output_path``, hashing
        record lines as they pass — peak parent memory is O(shards)
        (one pending line per spill file), never O(campaign).  With
        ``overlap`` (the default) the merge *tails* the spill files
        while shards still execute: every record the flushed frontiers
        prove safe is folded, hashed and written immediately, so only
        the tail of the merge waits for the slowest shard —
        ``overlap=False`` keeps the wait-then-merge reference path (the
        benchmark measures the advantage between the two; bytes are
        identical).  The metadata line is appended after the records
        (loaders accept it at any position); record bytes — and
        therefore :meth:`Dataset.content_hash` — are identical to
        :meth:`run`.

        ``sink`` is the pipelined-analysis hook: on this sharded path
        its ``ingest_line(line)`` method is fed every merged line as it
        is written (each line decoded exactly once, in the parent),
        building the analysis projections with zero re-read of
        ``output_path``.  On the serial fallback the sink folds record
        objects directly — zero decodes (see
        :meth:`Campaign.run_streaming`).

        ``backend`` selects the final archive's on-disk layout (see
        :mod:`repro.measure.backends`); shard spill files stay JSONL —
        they are transient merge inputs, not archives — and the content
        hash is backend-independent.

        Returns ``{"experiments", "content_hash", "path", "metadata"}``.
        """
        from repro.measure.backends import resolve_backend

        if self.workers <= 0 or self.shards <= 1:
            return super().run_streaming(output_path, sink, backend=backend)
        tasks = self.shard_tasks()
        tmpdir = tempfile.mkdtemp(prefix="repro-shards-")
        try:
            paths = [
                os.path.join(tmpdir, f"shard-{i:04d}.jsonl")
                for i in range(len(tasks))
            ]
            token = self._next_run_token()
            pool = self._ensure_pool(min(self.workers, len(self.ranges)) or 1)
            futures = [
                pool.submit(_spill_shard_ranges, token, task, path)
                for task, path in zip(tasks, paths)
            ]
            if overlap:
                streams = (
                    _tail_jsonl_lines(path, future)
                    for path, future in zip(paths, futures)
                )
            else:
                wait(futures, return_when=FIRST_EXCEPTION)
                for future in futures:
                    future.result()
                streams = (_iter_jsonl_lines(path) for path in paths)
            count, digest = resolve_backend(
                backend, output_path
            ).write_archive_lines(
                output_path,
                streams,
                metadata=self._streaming_metadata(),
                sink=sink.ingest_line if sink is not None else None,
            )
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
        metadata = self._streaming_metadata()
        metadata["experiments"] = count
        return {
            "experiments": count,
            "content_hash": digest,
            "path": output_path,
            "metadata": metadata,
        }

    def _streaming_metadata(self) -> Dict[str, object]:
        metadata = super()._streaming_metadata()
        metadata["workers"] = self.workers
        metadata["shards"] = self.shards
        return metadata

    def _run_tasks_collect(
        self, tasks: List[List[DeviceRange]]
    ) -> List[List[ExperimentRecord]]:
        token = self._next_run_token()
        pool = self._ensure_pool(min(self.workers, len(self.ranges)) or 1)
        futures = [pool.submit(_run_shard_ranges, token, task) for task in tasks]
        wait(futures, return_when=FIRST_EXCEPTION)
        return [future.result() for future in futures]
