"""Campaign runner: many devices, many experiments, one dataset.

A campaign instantiates the volunteer population (Table 1's per-carrier
client counts, scaled if asked), schedules each device's experiments
over the study window, runs them in timestamp order and collects an
analysable :class:`~repro.measure.records.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.core.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.errors import ConfigError
from repro.core.world import World
from repro.geo.regions import cities_for, city_weights
from repro.measure.experiment import ExperimentOptions, ExperimentRunner
from repro.measure.records import Dataset
from repro.measure.scheduler import ExperimentSchedule

#: Per-carrier client counts from Table 1 of the paper.
PAPER_CLIENT_COUNTS: Dict[str, int] = {
    "att": 33,
    "sprint": 9,
    "tmobile": 31,
    "verizon": 64,
    "skt": 17,
    "lgu": 4,
}


@dataclass
class CampaignConfig:
    """Scale and timing of a measurement campaign."""

    #: Devices per carrier; None uses the paper's Table 1 counts.
    devices_per_carrier: Optional[Dict[str, int]] = None
    #: Uniform scale factor on the (paper or explicit) device counts.
    device_scale: float = 1.0
    #: Minimum devices per carrier after scaling.
    min_devices: int = 1
    start: float = 0.0
    duration_days: float = 153.0  # 2014-03-01 .. 2014-08-01
    interval_hours: float = 1.0
    duty_cycle: float = 0.9
    options: ExperimentOptions = field(default_factory=ExperimentOptions)

    def resolved_counts(self, carrier_keys: Sequence[str]) -> Dict[str, int]:
        """Device counts per carrier after defaults and scaling."""
        base = dict(self.devices_per_carrier or PAPER_CLIENT_COUNTS)
        counts = {}
        for key in carrier_keys:
            if key not in base:
                raise ConfigError(f"no device count for carrier {key!r}")
            counts[key] = max(self.min_devices, round(base[key] * self.device_scale))
        return counts


class Campaign:
    """Builds the device population and runs every experiment."""

    def __init__(self, world: World, config: Optional[CampaignConfig] = None):
        self.world = world
        self.config = config or CampaignConfig()
        self.devices: List[MobileDevice] = self._build_devices()
        self.runner = ExperimentRunner(world, self.config.options)

    # -- population ----------------------------------------------------------

    def _build_devices(self) -> List[MobileDevice]:
        devices: List[MobileDevice] = []
        counts = self.config.resolved_counts(list(self.world.operators))
        for carrier_key, count in counts.items():
            operator = self.world.operators[carrier_key]
            cities = cities_for(operator.country)
            weights = city_weights(cities)
            stream = self.world.rng.stream("population", carrier_key)
            for index in range(count):
                device_id = f"{carrier_key}-{index:03d}"
                home = stream.weighted_choice(cities, weights)
                mobility = MobilityModel(
                    home_city=home,
                    candidate_cities=cities,
                    seed=self.world.rng.master_seed,
                    device_key=device_id,
                )
                devices.append(
                    MobileDevice(
                        device_id=device_id,
                        carrier_key=carrier_key,
                        mobility=mobility,
                    )
                )
        return devices

    def devices_of(self, carrier_key: str) -> List[MobileDevice]:
        """The campaign's devices on one carrier."""
        return [
            device for device in self.devices if device.carrier_key == carrier_key
        ]

    # -- execution ------------------------------------------------------------

    def run(self) -> Dataset:
        """Run every scheduled experiment, globally time-ordered."""
        config = self.config
        schedule = ExperimentSchedule(
            start=config.start,
            end=config.start + config.duration_days * SECONDS_PER_DAY,
            seed=self.world.rng.master_seed,
            interval_s=config.interval_hours * SECONDS_PER_HOUR,
            duty_cycle=config.duty_cycle,
        )
        queue: List[tuple] = []
        for device in self.devices:
            for sequence, at in enumerate(schedule.times_for(device.device_id)):
                queue.append((at, device, sequence))
        queue.sort(key=lambda item: (item[0], item[1].device_id))

        dataset = Dataset(
            metadata={
                "seed": self.world.rng.master_seed,
                "devices": len(self.devices),
                "duration_days": config.duration_days,
                "interval_hours": config.interval_hours,
                "experiments": len(queue),
            }
        )
        for at, device, sequence in queue:
            dataset.add(self.runner.run(device, at, sequence))
        return dataset
