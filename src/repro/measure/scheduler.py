"""Experiment scheduling.

Devices ran the experiment "approximately once per hour" (Sec 3.2), but
real volunteer devices miss slots — screens off, no coverage, battery
saver.  The schedule therefore combines a nominal interval, per-slot
jitter, and a duty cycle, all as pure functions of (device, slot).

:class:`ProbeEventQueue` turns those per-device time generators into one
event-driven campaign loop: a single priority queue of probe events
keyed ``(timestamp, carrier_key, device_index, sequence)``.  The key is
total and globally comparable, so any subset of devices drains in the
order the full campaign would have visited them — the property that
makes sub-carrier shard outputs re-mergeable into the exact serial
stream (see ``repro.measure.campaign``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.clock import SECONDS_PER_HOUR
from repro.core.rng import stable_fraction


@dataclass
class ExperimentSchedule:
    """Per-device experiment times over a window."""

    start: float
    end: float
    seed: int
    interval_s: float = SECONDS_PER_HOUR
    #: Fraction of slots that actually produce an experiment.
    duty_cycle: float = 0.9
    #: Jitter applied within each slot, as a fraction of the interval.
    jitter_fraction: float = 0.3

    def times_for(self, device_key: str) -> List[float]:
        """All experiment start times for one device."""
        return list(self.iter_times(device_key))

    def iter_times(self, device_key: str) -> Iterator[float]:
        """Generate experiment times slot by slot."""
        if self.end <= self.start:
            return
        slot = 0
        phase = stable_fraction(self.seed, "phase", device_key) * self.interval_s
        while True:
            base = self.start + phase + slot * self.interval_s
            if base >= self.end:
                return
            keep = stable_fraction(self.seed, "duty", device_key, slot)
            if keep < self.duty_cycle:
                jitter = (
                    stable_fraction(self.seed, "jitter", device_key, slot) - 0.5
                ) * 2.0 * self.jitter_fraction * self.interval_s
                at = min(max(self.start, base + jitter), self.end - 1.0)
                yield at
            slot += 1

    def expected_count(self) -> int:
        """Approximate experiments per device over the window."""
        slots = max(0.0, (self.end - self.start) / self.interval_s)
        return int(slots * self.duty_cycle)


#: One scheduled probe event: the global ordering key plus its payload.
#: ``(timestamp, carrier_key, device_index, sequence)`` totally orders
#: every event of a campaign — timestamps are continuous-jittered floats
#: and ``(carrier_key, device_index)`` is unique per device, so no two
#: queue entries ever compare equal on the key prefix (the payload never
#: participates in heap comparisons).
ProbeEvent = Tuple[float, str, int, int, object]


class ProbeEventQueue:
    """Priority queue of probe events driving a campaign.

    Each device holds exactly one pending event at a time: pop the
    earliest event, run it, push the device's next scheduled time.  This
    is the event-driven replacement for merging per-device generators
    with ``heapq.merge`` — same order (per-device times are
    non-decreasing, so a device's events enter the heap in sequence
    order and end-clamp ties break on ``sequence``), but with an
    explicit, globally comparable key that any shard of devices shares.

    For device populations under 1000 per carrier the key order also
    matches the legacy ``(timestamp, device_id)`` string order
    (``device_id`` embeds the zero-padded index); past that, the numeric
    ``device_index`` keeps ordering sane where the string key would
    compare ``"1000" < "999"`` — and every executor uses this same key,
    so the cross-executor hash invariant holds at any scale.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[ProbeEvent] = []

    def push(
        self,
        at: float,
        carrier_key: str,
        device_index: int,
        sequence: int,
        payload: object = None,
    ) -> None:
        """Schedule one probe event."""
        heapq.heappush(self._heap, (at, carrier_key, device_index, sequence, payload))

    def pop(self) -> ProbeEvent:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[ProbeEvent]:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
