"""Experiment scheduling.

Devices ran the experiment "approximately once per hour" (Sec 3.2), but
real volunteer devices miss slots — screens off, no coverage, battery
saver.  The schedule therefore combines a nominal interval, per-slot
jitter, and a duty cycle, all as pure functions of (device, slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.clock import SECONDS_PER_HOUR
from repro.core.rng import stable_fraction


@dataclass
class ExperimentSchedule:
    """Per-device experiment times over a window."""

    start: float
    end: float
    seed: int
    interval_s: float = SECONDS_PER_HOUR
    #: Fraction of slots that actually produce an experiment.
    duty_cycle: float = 0.9
    #: Jitter applied within each slot, as a fraction of the interval.
    jitter_fraction: float = 0.3

    def times_for(self, device_key: str) -> List[float]:
        """All experiment start times for one device."""
        return list(self.iter_times(device_key))

    def iter_times(self, device_key: str) -> Iterator[float]:
        """Generate experiment times slot by slot."""
        if self.end <= self.start:
            return
        slot = 0
        phase = stable_fraction(self.seed, "phase", device_key) * self.interval_s
        while True:
            base = self.start + phase + slot * self.interval_s
            if base >= self.end:
                return
            keep = stable_fraction(self.seed, "duty", device_key, slot)
            if keep < self.duty_cycle:
                jitter = (
                    stable_fraction(self.seed, "jitter", device_key, slot) - 0.5
                ) * 2.0 * self.jitter_fraction * self.interval_s
                at = min(max(self.start, base + jitter), self.end - 1.0)
                yield at
            slot += 1

    def expected_count(self) -> int:
        """Approximate experiments per device over the window."""
        slots = max(0.0, (self.end - self.start) / self.interval_s)
        return int(slots * self.duty_cycle)
