"""Hash-keyed analysis result cache.

Regenerating every table and figure is pure in the dataset: the same
records produce the same rendered strings.  :class:`AnalysisResultCache`
exploits that by keying rendered artifacts on
:meth:`~repro.measure.records.Dataset.content_hash` — a ``repro-study
report`` re-run (or a benchmark suite) over an unchanged dataset skips
the whole analysis pass and replays the stored text.

``content_hash`` itself is deliberately not memoised on the dataset
(in-place record mutation must change it), so the cache computes it
once per lookup batch and the caller passes it around.

The store is optionally file-backed (one JSON document) so the skip
also works across processes::

    cache = AnalysisResultCache("analysis-cache.json")
    report = cache.get_or_render(dataset_hash, "full-report", render)

Growth is bounded: the store keeps at most ``max_entries`` dataset
hashes, evicting the least-recently-used hash (every artifact under
it) when a new dataset would exceed the cap.  Long-lived caches fed by
ever-changing datasets therefore stay a fixed size instead of
accreting one entry per content hash forever.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional

#: Default bound on distinct dataset hashes a cache retains.  Each
#: entry holds one full rendered report (tens of KB), so a handful of
#: recent datasets is plenty for the replay use case.
DEFAULT_MAX_ENTRIES = 8


class AnalysisResultCache:
    """Rendered-artifact cache keyed by (dataset hash, artifact key).

    With ``path=None`` the cache lives in memory only; with a path it
    loads the JSON store on construction and rewrites it on
    :meth:`save`.  A corrupt or missing store file degrades to an empty
    cache — the cache is an accelerator, never a correctness dependency.

    ``max_entries`` caps the number of distinct dataset hashes held;
    the least-recently-used hash is dropped when a new one would push
    the cache over the cap (a hit refreshes recency).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.path = path
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # Insertion order doubles as recency order: oldest hash first.
        self._entries: Dict[str, Dict[str, str]] = {}
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                entries = stored.get("entries", {})
                if isinstance(entries, dict):
                    self._entries = {
                        str(dataset_hash): {
                            str(key): str(text)
                            for key, text in artifacts.items()
                        }
                        for dataset_hash, artifacts in entries.items()
                        if isinstance(artifacts, dict)
                    }
            except (OSError, ValueError):
                self._entries = {}
            # A store written under a larger cap (or by an older
            # version) may exceed this cache's bound: drop the oldest
            # hashes until it fits.
            while len(self._entries) > self.max_entries:
                self._evict_oldest()

    def _evict_oldest(self) -> None:
        oldest = next(iter(self._entries))
        del self._entries[oldest]

    def get(self, dataset_hash: str, key: str) -> Optional[str]:
        """The stored text for one artifact, or None."""
        artifacts = self._entries.get(dataset_hash)
        text = None if artifacts is None else artifacts.get(key)
        if text is None:
            self.misses += 1
        else:
            self.hits += 1
            # Refresh recency: move the hit hash to the newest slot.
            self._entries[dataset_hash] = self._entries.pop(dataset_hash)
        return text

    def put(self, dataset_hash: str, key: str, text: str) -> None:
        """Store one artifact's rendered text (may evict the LRU hash)."""
        artifacts = self._entries.get(dataset_hash)
        if artifacts is None:
            if len(self._entries) >= self.max_entries:
                self._evict_oldest()
            artifacts = self._entries[dataset_hash] = {}
        else:
            self._entries[dataset_hash] = self._entries.pop(dataset_hash)
        artifacts[key] = text

    def get_or_render(
        self, dataset_hash: str, key: str, render: Callable[[], str]
    ) -> str:
        """The cached text, or ``render()`` stored and returned."""
        text = self.get(dataset_hash, key)
        if text is None:
            text = render()
            self.put(dataset_hash, key, text)
        return text

    def save(self) -> None:
        """Persist to ``path`` (no-op for in-memory caches)."""
        if not self.path:
            return
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump({"entries": self._entries}, handle)
            handle.write("\n")

    def __len__(self) -> int:
        return sum(len(artifacts) for artifacts in self._entries.values())
