"""Hash-keyed analysis result cache.

Regenerating every table and figure is pure in the dataset: the same
records produce the same rendered strings.  :class:`AnalysisResultCache`
exploits that by keying rendered artifacts on
:meth:`~repro.measure.records.Dataset.content_hash` — a ``repro-study
report`` re-run (or a benchmark suite) over an unchanged dataset skips
the whole analysis pass and replays the stored text.

``content_hash`` itself is deliberately not memoised on the dataset
(in-place record mutation must change it), so the cache computes it
once per lookup batch and the caller passes it around.

The store is optionally file-backed (one JSON document) so the skip
also works across processes::

    cache = AnalysisResultCache("analysis-cache.json")
    report = cache.get_or_render(dataset_hash, "full-report", render)
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional


class AnalysisResultCache:
    """Rendered-artifact cache keyed by (dataset hash, artifact key).

    With ``path=None`` the cache lives in memory only; with a path it
    loads the JSON store on construction and rewrites it on
    :meth:`save`.  A corrupt or missing store file degrades to an empty
    cache — the cache is an accelerator, never a correctness dependency.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, str]] = {}
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                entries = stored.get("entries", {})
                if isinstance(entries, dict):
                    self._entries = {
                        str(dataset_hash): {
                            str(key): str(text)
                            for key, text in artifacts.items()
                        }
                        for dataset_hash, artifacts in entries.items()
                        if isinstance(artifacts, dict)
                    }
            except (OSError, ValueError):
                self._entries = {}

    def get(self, dataset_hash: str, key: str) -> Optional[str]:
        """The stored text for one artifact, or None."""
        text = self._entries.get(dataset_hash, {}).get(key)
        if text is None:
            self.misses += 1
        else:
            self.hits += 1
        return text

    def put(self, dataset_hash: str, key: str, text: str) -> None:
        """Store one artifact's rendered text."""
        self._entries.setdefault(dataset_hash, {})[key] = text

    def get_or_render(
        self, dataset_hash: str, key: str, render: Callable[[], str]
    ) -> str:
        """The cached text, or ``render()`` stored and returned."""
        text = self.get(dataset_hash, key)
        if text is None:
            text = render()
            self.put(dataset_hash, key, text)
        return text

    def save(self) -> None:
        """Persist to ``path`` (no-op for in-memory caches)."""
        if not self.path:
            return
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump({"entries": self._entries}, handle)
            handle.write("\n")

    def __len__(self) -> int:
        return sum(len(artifacts) for artifacts in self._entries.values())
