"""Longitudinal analyses.

The paper's stated edge over Xu et al. [25] is longitudinal coverage:
"our study includes longitudinal data from clients which allows us to
monitor changes in DNS configuration from mobile end hosts".  This
module slices the campaign along time:

* per-window resolver inventories (how the set of observed external
  resolvers evolves, and when configurations *change*);
* cumulative discovery curves (how many resolvers/egress points a
  growing observation window reveals — the saturation behaviour that
  says when a measurement campaign has seen enough);
* per-window pairing consistency (does a carrier's behaviour drift?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.consistency import _pairing_consistency
from repro.analysis.engine import get_engine
from repro.core.addressing import prefix24
from repro.core.clock import SECONDS_PER_DAY
from repro.measure.records import Dataset


@dataclass
class WindowInventory:
    """What one carrier's resolver estate looked like in one window."""

    carrier: str
    window_start: float
    window_end: float
    external_ips: set = field(default_factory=set)
    external_prefixes: set = field(default_factory=set)
    consistency_pct: Optional[float] = None
    observations: int = 0


def resolver_inventory_over_time(
    dataset: Dataset,
    carrier: str,
    window_days: float = 14.0,
    resolver_kind: str = "local",
) -> List[WindowInventory]:
    """Windowed inventories of a carrier's observed external resolvers."""
    window_s = window_days * SECONDS_PER_DAY
    windows: Dict[int, WindowInventory] = {}
    pair_counts: Dict[int, Dict[Tuple[str, str], int]] = {}
    engine = get_engine(dataset)
    for started_at, configured, external in engine.id_stream.get(
        (carrier, resolver_kind), []
    ):
        slot = int(started_at // window_s)
        window = windows.get(slot)
        if window is None:
            window = WindowInventory(
                carrier=carrier,
                window_start=slot * window_s,
                window_end=(slot + 1) * window_s,
            )
            windows[slot] = window
        window.external_ips.add(external)
        window.external_prefixes.add(prefix24(external))
        window.observations += 1
        pair_counts.setdefault(slot, {})
        key = (configured, external)
        pair_counts[slot][key] = pair_counts[slot].get(key, 0) + 1
    result = []
    for slot in sorted(windows):
        window = windows[slot]
        counts = pair_counts.get(slot, {})
        if counts:
            window.consistency_pct = _pairing_consistency(counts) * 100.0
        result.append(window)
    return result


def resolver_inventory_over_time_reference(
    dataset: Dataset,
    carrier: str,
    window_days: float = 14.0,
    resolver_kind: str = "local",
) -> List[WindowInventory]:
    """The original record walk (oracle for the engine path)."""
    window_s = window_days * SECONDS_PER_DAY
    windows: Dict[int, WindowInventory] = {}
    pair_counts: Dict[int, Dict[Tuple[str, str], int]] = {}
    for record in dataset.experiments_for(carrier):
        identification = record.resolver_id(resolver_kind)
        if identification is None or not identification.observed_external_ip:
            continue
        slot = int(record.started_at // window_s)
        window = windows.get(slot)
        if window is None:
            window = WindowInventory(
                carrier=carrier,
                window_start=slot * window_s,
                window_end=(slot + 1) * window_s,
            )
            windows[slot] = window
        external = identification.observed_external_ip
        window.external_ips.add(external)
        window.external_prefixes.add(prefix24(external))
        window.observations += 1
        pair_counts.setdefault(slot, {})
        key = (identification.configured_ip, external)
        pair_counts[slot][key] = pair_counts[slot].get(key, 0) + 1
    result = []
    for slot in sorted(windows):
        window = windows[slot]
        counts = pair_counts.get(slot, {})
        if counts:
            window.consistency_pct = _pairing_consistency(counts) * 100.0
        result.append(window)
    return result


def configuration_changes(
    inventories: List[WindowInventory],
) -> List[Tuple[float, str]]:
    """Detect window-to-window changes in the resolver estate.

    A change is a window whose /24 set differs from the previous one —
    the "changes in DNS configuration" the longitudinal data exposes.
    """
    changes: List[Tuple[float, str]] = []
    previous: Optional[WindowInventory] = None
    for window in inventories:
        if previous is not None:
            gained = window.external_prefixes - previous.external_prefixes
            lost = previous.external_prefixes - window.external_prefixes
            if gained or lost:
                changes.append(
                    (
                        window.window_start,
                        f"+{len(gained)}/-{len(lost)} /24s",
                    )
                )
        previous = window
    return changes


@dataclass
class DiscoveryCurve:
    """Cumulative discovery of infrastructure as observation grows."""

    carrier: str
    what: str
    #: (time, cumulative distinct count) steps, one per new discovery.
    steps: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total distinct items discovered."""
        return self.steps[-1][1] if self.steps else 0

    def count_at(self, time_s: float) -> int:
        """Discoveries up to ``time_s``."""
        count = 0
        for at, cumulative in self.steps:
            if at > time_s:
                break
            count = cumulative
        return count

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        """When the curve first reached ``fraction`` of its final total."""
        if not self.steps:
            return None
        target = self.total * fraction
        for at, cumulative in self.steps:
            if cumulative >= target:
                return at
        return None


def resolver_discovery_curve(
    dataset: Dataset, carrier: str, resolver_kind: str = "local"
) -> DiscoveryCurve:
    """Cumulative distinct external resolvers over campaign time."""
    engine = get_engine(dataset)

    def compute() -> DiscoveryCurve:
        curve = DiscoveryCurve(carrier=carrier, what="external-resolvers")
        seen: set = set()
        for started_at, _, external in engine.id_stream.get(
            (carrier, resolver_kind), []
        ):
            if external not in seen:
                seen.add(external)
                curve.steps.append((started_at, len(seen)))
        return curve

    return engine.cached(
        ("resolver_discovery_curve", carrier, resolver_kind), compute
    )


def resolver_discovery_curve_reference(
    dataset: Dataset, carrier: str, resolver_kind: str = "local"
) -> DiscoveryCurve:
    """The original record walk (oracle for the engine path)."""
    curve = DiscoveryCurve(carrier=carrier, what="external-resolvers")
    seen: set = set()
    for record in dataset.experiments_for(carrier):
        identification = record.resolver_id(resolver_kind)
        if identification is None or not identification.observed_external_ip:
            continue
        external = identification.observed_external_ip
        if external not in seen:
            seen.add(external)
            curve.steps.append((record.started_at, len(seen)))
    return curve


def egress_discovery_curve(dataset: Dataset, carrier: str, owns) -> DiscoveryCurve:
    """Cumulative distinct egress points over campaign time (Sec 5.2)."""
    from repro.analysis.egress import egress_ip_of_traceroute

    curve = DiscoveryCurve(carrier=carrier, what="egress-points")
    seen: set = set()
    engine = get_engine(dataset)
    for started_at, hops in engine.egress_stream.get(carrier, []):
        egress = egress_ip_of_traceroute(carrier, hops, owns)
        if egress is not None and egress not in seen:
            seen.add(egress)
            curve.steps.append((started_at, len(seen)))
    return curve


def egress_discovery_curve_reference(
    dataset: Dataset, carrier: str, owns
) -> DiscoveryCurve:
    """The original record walk (oracle for the engine path)."""
    from repro.analysis.egress import egress_ip_of_traceroute

    curve = DiscoveryCurve(carrier=carrier, what="egress-points")
    seen: set = set()
    for record in dataset.experiments_for(carrier):
        for trace in record.traceroutes:
            if trace.target_kind not in ("egress-discovery", "replica"):
                continue
            egress = egress_ip_of_traceroute(carrier, trace.hops, owns)
            if egress is not None and egress not in seen:
                seen.add(egress)
                curve.steps.append((record.started_at, len(seen)))
    return curve
