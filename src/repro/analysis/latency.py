"""Latency extractions: resolution times and resolver distances.

Feeds Figs 3 (resolution time by radio technology), 5/6 (resolution-time
CDFs per carrier), 13 (local vs public resolution), 4 (client- vs
external-facing resolver pings) and 11 (cellular vs public resolver
pings).

Every public function consumes the fused single-pass engine
(:mod:`repro.analysis.engine`); the original per-function record walks
survive as ``*_reference`` oracles, property-tested byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import get_engine
from repro.analysis.stats import ECDF, group_ecdfs
from repro.measure.records import Dataset


def resolution_times(
    dataset: Dataset,
    carrier: str,
    resolver_kind: str = "local",
    attempt: Optional[int] = 1,
) -> ECDF:
    """Resolution-time CDF for one carrier and resolver kind.

    ``attempt=1`` keeps only first-of-pair queries so the back-to-back
    cache probes don't skew the distribution (the paper plots first
    lookups; Fig 7 handles the pairs).
    """
    engine = get_engine(dataset)
    return engine.cached(
        ("resolution_times", carrier, resolver_kind, attempt),
        lambda: ECDF.from_values(
            engine.resolution_values(carrier, resolver_kind, attempt)
        ),
    )


def resolution_times_reference(
    dataset: Dataset,
    carrier: str,
    resolver_kind: str = "local",
    attempt: Optional[int] = 1,
) -> ECDF:
    """The original record walk (the oracle :func:`resolution_times`)."""
    values: List[float] = []
    for record in dataset.experiments_for(carrier):
        for resolution in record.resolutions_via(resolver_kind):
            if resolution.domain.endswith(".net") and "whoami" in resolution.domain:
                continue
            if attempt is not None and resolution.attempt != attempt:
                continue
            values.append(resolution.resolution_ms)
    return ECDF.from_values(values)


def resolution_times_by_technology(
    dataset: Dataset, carrier: str, resolver_kind: str = "local"
) -> Dict[str, ECDF]:
    """Fig 3: per-technology resolution-time CDFs for one carrier."""
    engine = get_engine(dataset)

    def compute() -> Dict[str, ECDF]:
        samples = {
            technology: engine.tech_samples.get(
                (carrier, technology, resolver_kind), []
            )
            for technology in engine.tech_order.get(carrier, [])
        }
        return group_ecdfs(samples)

    return engine.cached(
        ("resolution_times_by_technology", carrier, resolver_kind), compute
    )


def resolution_times_by_technology_reference(
    dataset: Dataset, carrier: str, resolver_kind: str = "local"
) -> Dict[str, ECDF]:
    """The original record walk (oracle for the engine path)."""
    samples: Dict[str, List[float]] = {}
    for record in dataset.experiments_for(carrier):
        bucket = samples.setdefault(record.technology, [])
        for resolution in record.resolutions_via(resolver_kind):
            if resolution.attempt != 1:
                continue
            bucket.append(resolution.resolution_ms)
    return group_ecdfs(samples)


def resolution_times_by_kind(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """Fig 13: local vs Google vs OpenDNS resolution CDFs."""
    engine = get_engine(dataset)

    def compute() -> Dict[str, ECDF]:
        samples = {
            kind: engine.resolution_values(
                carrier, kind, 1, include_whoami=True
            )
            for kind in ("local", "google", "opendns")
        }
        return group_ecdfs(samples)

    return engine.cached(("resolution_times_by_kind", carrier), compute)


def resolution_times_by_kind_reference(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """The original record walk (oracle for the engine path)."""
    samples: Dict[str, List[float]] = {"local": [], "google": [], "opendns": []}
    for record in dataset.experiments_for(carrier):
        for resolution in record.resolutions:
            if resolution.attempt != 1:
                continue
            if resolution.resolver_kind in samples:
                samples[resolution.resolver_kind].append(resolution.resolution_ms)
    return group_ecdfs(samples)


def resolver_ping_latencies(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """Fig 4: ping CDFs to client-facing and external-facing resolvers.

    Keys: ``client`` and ``external``; an absent key means that tier
    never answered (Verizon and LG U+ externals in the paper).
    """
    engine = get_engine(dataset)

    def compute() -> Dict[str, ECDF]:
        samples = {
            "client": engine.ping_samples.get(
                (carrier, "resolver-client-facing"), []
            ),
            "external": engine.ping_samples.get(
                (carrier, "resolver-external-facing"), []
            ),
        }
        return group_ecdfs(samples)

    return engine.cached(("resolver_ping_latencies", carrier), compute)


def resolver_ping_latencies_reference(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """The original record walk (oracle for the engine path)."""
    samples: Dict[str, List[float]] = {"client": [], "external": []}
    for record in dataset.experiments_for(carrier):
        for ping in record.pings:
            if ping.rtt_ms is None:
                continue
            if ping.target_kind == "resolver-client-facing":
                samples["client"].append(ping.rtt_ms)
            elif ping.target_kind == "resolver-external-facing":
                samples["external"].append(ping.rtt_ms)
    return group_ecdfs(samples)


def public_resolver_pings(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """Fig 11: pings to the cellular LDNS vs the public anycast services.

    Keys: ``local-external`` (the carrier's external-facing resolver,
    when it answers), ``google`` and ``opendns``.
    """
    engine = get_engine(dataset)

    def compute() -> Dict[str, ECDF]:
        samples = {
            "local-external": engine.ping_samples.get(
                (carrier, "resolver-external-facing"), []
            ),
            "google": engine.ping_samples.get(
                (carrier, "resolver-public-google"), []
            ),
            "opendns": engine.ping_samples.get(
                (carrier, "resolver-public-opendns"), []
            ),
        }
        return group_ecdfs(samples)

    return engine.cached(("public_resolver_pings", carrier), compute)


def public_resolver_pings_reference(
    dataset: Dataset, carrier: str
) -> Dict[str, ECDF]:
    """The original record walk (oracle for the engine path)."""
    samples: Dict[str, List[float]] = {
        "local-external": [],
        "google": [],
        "opendns": [],
    }
    for record in dataset.experiments_for(carrier):
        for ping in record.pings:
            if ping.rtt_ms is None:
                continue
            if ping.target_kind == "resolver-external-facing":
                samples["local-external"].append(ping.rtt_ms)
            elif ping.target_kind == "resolver-public-google":
                samples["google"].append(ping.rtt_ms)
            elif ping.target_kind == "resolver-public-opendns":
                samples["opendns"].append(ping.rtt_ms)
    return group_ecdfs(samples)


def median_gap_ms(
    first: Optional[ECDF], second: Optional[ECDF]
) -> Optional[float]:
    """Median difference between two CDFs (None when either is missing)."""
    if first is None or second is None or first.is_empty or second.is_empty:
        return None
    return second.median - first.median


def carriers_in(dataset: Dataset, country: Optional[str] = None) -> List[str]:
    """Carrier keys present in the dataset, optionally by country."""
    keys: List[Tuple[str, str]] = [
        (carrier, records[0].country)
        for carrier, records in dataset.by_carrier().items()
    ]
    return [
        carrier
        for carrier, carrier_country in keys
        if country is None or carrier_country == country
    ]
