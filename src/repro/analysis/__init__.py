"""Analysis pipeline: from measurement records to the paper's artifacts."""

from repro.analysis.stats import ECDF, percent_increase, percentile, summarize
from repro.analysis.similarity import (
    cosine_similarity,
    replica_maps_by_resolver,
    similarity_study,
)
from repro.analysis.consistency import (
    ldns_pair_table,
    resolver_timeline,
    unique_resolver_counts,
)
from repro.analysis.latency import (
    resolution_times,
    resolution_times_by_technology,
    resolver_ping_latencies,
)
from repro.analysis.cache import cache_comparison
from repro.analysis.localization import (
    public_replica_comparison,
    replica_differentials,
)
from repro.analysis.egress import count_egress_points
from repro.analysis.reachability import probe_external_reachability

__all__ = [
    "ECDF",
    "percent_increase",
    "percentile",
    "summarize",
    "cosine_similarity",
    "replica_maps_by_resolver",
    "similarity_study",
    "ldns_pair_table",
    "resolver_timeline",
    "unique_resolver_counts",
    "resolution_times",
    "resolution_times_by_technology",
    "resolver_ping_latencies",
    "cache_comparison",
    "public_replica_comparison",
    "replica_differentials",
    "count_egress_points",
    "probe_external_reachability",
]
