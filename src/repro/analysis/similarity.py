"""Replica-map similarity (Sec 5, Fig 10).

For each DNS resolver the paper builds a *replica map*: the set of
replica addresses the resolver was handed, weighted by how often each
appeared.  Cosine similarity between two maps quantifies how much two
resolvers' replica sets overlap; the paper computes it between resolvers
in the same /24 and in different /24s, finding near-identical sets within
a /24 and mostly disjoint sets across /24s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.engine import get_engine
from repro.core.addressing import prefix24
from repro.measure.records import Dataset, ExperimentRecord


def cosine_similarity(
    first: Mapping[str, float], second: Mapping[str, float]
) -> float:
    """Cosine similarity between two weighted replica maps.

    Maps are ``{replica_key: weight}``; weights need not be normalised.
    Returns 0 for orthogonal maps, 1 for proportional ones.
    """
    if not first or not second:
        return 0.0
    dot = sum(weight * second.get(key, 0.0) for key, weight in first.items())
    norm_first = math.sqrt(sum(weight * weight for weight in first.values()))
    norm_second = math.sqrt(sum(weight * weight for weight in second.values()))
    if norm_first == 0.0 or norm_second == 0.0:
        return 0.0
    return dot / (norm_first * norm_second)


def _normalise(counts: Mapping[str, int]) -> Dict[str, float]:
    total = float(sum(counts.values()))
    if total == 0:
        return {}
    return {key: count / total for key, count in counts.items()}


@dataclass
class ReplicaMap:
    """Observed replica distribution for one resolver and domain."""

    resolver_ip: str
    domain: str
    counts: Dict[str, int] = field(default_factory=dict)

    def observe(self, replica_ip: str) -> None:
        """Record one redirection to ``replica_ip``."""
        self.counts[replica_ip] = self.counts.get(replica_ip, 0) + 1

    @property
    def ratios(self) -> Dict[str, float]:
        """The paper's <replica_ip, ratio> map."""
        return _normalise(self.counts)

    @property
    def total_seen(self) -> int:
        """Total redirections observed."""
        return sum(self.counts.values())


def replica_maps_by_resolver(
    dataset: Dataset,
    domain: str,
    carrier: Optional[str] = None,
    resolver_kind: str = "local",
) -> Dict[str, ReplicaMap]:
    """Replica maps keyed by *external* resolver address.

    Associates each experiment's answers for ``domain`` with the external
    resolver the experiment's identification probe observed — the same
    join the paper performs between its resolution and whoami logs.
    """
    engine = get_engine(dataset)
    by_resolver = engine.replica_maps.get((carrier, resolver_kind), {}).get(
        domain, {}
    )
    maps: Dict[str, ReplicaMap] = {}
    for resolver_ip, counts in by_resolver.items():
        # Copy: the engine's count dicts are shared read-only state.
        maps[resolver_ip] = ReplicaMap(
            resolver_ip=resolver_ip, domain=domain, counts=dict(counts)
        )
    return maps


def replica_maps_by_resolver_reference(
    dataset: Dataset,
    domain: str,
    carrier: Optional[str] = None,
    resolver_kind: str = "local",
) -> Dict[str, ReplicaMap]:
    """The original record walk (oracle for :func:`replica_maps_by_resolver`)."""
    maps: Dict[str, ReplicaMap] = {}
    records = dataset if carrier is None else dataset.experiments_for(carrier)
    for record in records:
        resolver_ip = _external_ip_of(record, resolver_kind)
        if resolver_ip is None:
            continue
        for resolution in record.resolutions_via(resolver_kind):
            if resolution.domain != domain:
                continue
            replica_map = maps.get(resolver_ip)
            if replica_map is None:
                replica_map = ReplicaMap(resolver_ip=resolver_ip, domain=domain)
                maps[resolver_ip] = replica_map
            for address in resolution.addresses:
                replica_map.observe(address)
    return maps


def _external_ip_of(record: ExperimentRecord, resolver_kind: str) -> Optional[str]:
    identification = record.resolver_id(resolver_kind)
    if identification is None:
        return None
    return identification.observed_external_ip


@dataclass
class SimilarityStudy:
    """Fig 10's two populations of pairwise similarities."""

    domain: str
    carrier: str
    same_prefix: List[float] = field(default_factory=list)
    different_prefix: List[float] = field(default_factory=list)

    def fraction_disjoint(self) -> float:
        """Share of different-/24 pairs with zero overlap."""
        if not self.different_prefix:
            return 0.0
        zeros = sum(1 for value in self.different_prefix if value == 0.0)
        return zeros / len(self.different_prefix)

    def median_same_prefix(self) -> float:
        """Median similarity within a /24 (paper: close to 1)."""
        if not self.same_prefix:
            return 0.0
        ordered = sorted(self.same_prefix)
        return ordered[len(ordered) // 2]


def _study_from_maps(
    maps: Dict[str, ReplicaMap],
    domain: str,
    carrier: str,
    min_observations: int,
) -> SimilarityStudy:
    eligible = [
        replica_map
        for replica_map in maps.values()
        if replica_map.total_seen >= min_observations
    ]
    study = SimilarityStudy(domain=domain, carrier=carrier)
    for index, first in enumerate(eligible):
        for second in eligible[index + 1 :]:
            value = cosine_similarity(first.ratios, second.ratios)
            if prefix24(first.resolver_ip) == prefix24(second.resolver_ip):
                study.same_prefix.append(value)
            else:
                study.different_prefix.append(value)
    return study


def similarity_study(
    dataset: Dataset,
    domain: str,
    carrier: str,
    resolver_kind: str = "local",
    min_observations: int = 2,
) -> SimilarityStudy:
    """Pairwise cosine similarities, split by /24 co-residence (Fig 10)."""
    from repro.analysis.engine import get_engine as _get_engine

    engine = _get_engine(dataset)
    return engine.cached(
        (
            "similarity_study",
            domain,
            carrier,
            resolver_kind,
            min_observations,
        ),
        lambda: _study_from_maps(
            replica_maps_by_resolver(dataset, domain, carrier, resolver_kind),
            domain,
            carrier,
            min_observations,
        ),
    )


def similarity_study_reference(
    dataset: Dataset,
    domain: str,
    carrier: str,
    resolver_kind: str = "local",
    min_observations: int = 2,
) -> SimilarityStudy:
    """The original record walk (oracle for :func:`similarity_study`)."""
    maps = replica_maps_by_resolver_reference(
        dataset, domain, carrier, resolver_kind
    )
    return _study_from_maps(maps, domain, carrier, min_observations)


def replica_prefix_map(counts: Mapping[str, int]) -> Dict[str, float]:
    """Aggregate a replica map's weights by replica /24 (Sec 6.3)."""
    aggregated: Dict[str, int] = {}
    for replica_ip, count in counts.items():
        block = prefix24(replica_ip)
        aggregated[block] = aggregated.get(block, 0) + count
    return _normalise(aggregated)
