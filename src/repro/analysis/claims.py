"""The paper's claims as a machine-checkable list.

DESIGN.md enumerates fourteen shape targets that define "reproduced".
This module encodes each as a :class:`Claim` with an executable check,
so a user can run ``repro-study verify`` (or :func:`verify_claims`)
against any study — including one with modified carriers, mappings or
scales — and see exactly which of the paper's findings survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

#: A check returns (passed, human-readable evidence).
CheckFn = Callable[["CellularDNSStudy"], Tuple[bool, str]]


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    claim_id: str
    artifact: str
    statement: str
    check: CheckFn


@dataclass
class ClaimResult:
    """Outcome of checking one claim against a study."""

    claim: Claim
    passed: bool
    evidence: str

    def __str__(self) -> str:
        flag = "PASS" if self.passed else "FAIL"
        return f"[{flag}] {self.claim.claim_id} ({self.claim.artifact}): " \
               f"{self.claim.statement}\n       evidence: {self.evidence}"


def _fig2_differentials(study):
    worst = 0.0
    evidence = []
    for carrier in study.world.operators:
        ecdf = study.fig2_replica_differentials(carrier).ecdf()
        if ecdf.is_empty:
            continue
        share = ecdf.fraction_above(50.0)
        worst = max(worst, share)
        evidence.append(f"{carrier}:{share * 100:.0f}%>={50}%")
    return worst > 0.15, "; ".join(evidence)


def _fig3_bands(study):
    evidence = []
    ok = True
    for carrier in ("att", "verizon", "skt"):
        curves = study.fig3_resolution_by_technology(carrier)
        if "LTE" not in curves:
            ok = False
            continue
        others = [
            ecdf.median for name, ecdf in curves.items()
            if name != "LTE" and len(ecdf) >= 10
        ]
        if others and curves["LTE"].median >= min(others):
            ok = False
        evidence.append(f"{carrier}: LTE p50 {curves['LTE'].median:.0f}ms")
    return ok, "; ".join(evidence)


def _t3_verizon(study):
    rows = {row.carrier: row for row in study.table3_ldns_pairs()}
    row = rows.get("verizon")
    if row is None:
        return False, "no verizon identifications"
    return row.consistency_pct == 100.0, f"consistency {row.consistency_pct:.0f}%"


def _t3_indirect(study):
    rows = study.table3_ldns_pairs()
    evidence = "; ".join(
        f"{row.carrier}:{row.client_addresses}->{row.external_addresses}"
        for row in rows
    )
    return (
        all(row.external_addresses >= row.client_addresses for row in rows),
        evidence,
    )


def _fig4_hierarchy(study):
    evidence = []
    ok = True
    for carrier in ("att", "sprint", "tmobile"):
        curves = study.fig4_resolver_distance(carrier)
        if "external" not in curves or "client" not in curves:
            ok = False
            continue
        gap = curves["external"].median - curves["client"].median
        if gap <= 0:
            ok = False
        evidence.append(f"{carrier}: +{gap:.0f}ms")
    for carrier in ("verizon", "lgu"):
        if "external" in study.fig4_resolver_distance(carrier):
            ok = False
            evidence.append(f"{carrier}: external unexpectedly pingable")
    return ok, "; ".join(evidence)


def _fig5_medians(study):
    curves = study.fig5_us_resolution()
    evidence = "; ".join(
        f"{carrier}:{ecdf.median:.0f}ms" for carrier, ecdf in curves.items()
    )
    return (
        all(25.0 < ecdf.median < 120.0 for ecdf in curves.values()),
        evidence,
    )


def _fig6_bimodal(study):
    curves = study.fig6_sk_resolution()
    evidence = "; ".join(
        f"{carrier}: p50 {e.median:.0f} / p90 {e.quantile(0.9):.0f}ms"
        for carrier, e in curves.items()
    )
    return (
        all(e.quantile(0.9) > 3.0 * e.median for e in curves.values()),
        evidence,
    )


def _fig7_misses(study):
    comparison = study.fig7_cache()
    rate = comparison.miss_rate()
    return 0.10 < rate < 0.40, f"miss rate {rate * 100:.0f}%"


def _t4_opaqueness(study):
    rows = {row.carrier: row for row in study.table4_reachability()}
    traceroutes = sum(row.traceroute_responsive for row in rows.values())
    ok = (
        rows["verizon"].ping_fraction > 0.5
        and rows["att"].ping_fraction > 0.5
        and rows["tmobile"].ping_responsive == 0
        and traceroutes == 0
    )
    evidence = (
        f"vz {rows['verizon'].ping_fraction * 100:.0f}% / "
        f"att {rows['att'].ping_fraction * 100:.0f}% ping; "
        f"{traceroutes} traceroutes complete"
    )
    return ok, evidence


def _busiest(study, carrier):
    timelines = [
        study.fig8_resolver_churn(device.device_id)
        for device in study.campaign.devices_of(carrier)
    ]
    return max(timelines, key=lambda t: len(t.observations))


def _fig8_churn(study):
    tmobile = _busiest(study, "tmobile")
    att = _busiest(study, "att")
    skt = _busiest(study, "skt")
    ok = (
        tmobile.unique_ips() > att.unique_ips()
        and skt.unique_prefixes() <= 2
        and skt.unique_ips() >= 3
    )
    evidence = (
        f"tmobile {tmobile.unique_ips()} ips/{tmobile.unique_prefixes()} /24s; "
        f"att {att.unique_ips()}/{att.unique_prefixes()}; "
        f"skt {skt.unique_ips()}/{skt.unique_prefixes()}"
    )
    return ok, evidence


def _fig9_static(study):
    for carrier in ("tmobile", "lgu", "skt"):
        for device in study.campaign.devices_of(carrier):
            timeline = study.fig9_static_timeline(device.device_id)
            if len(timeline.observations) >= 20 and timeline.unique_ips() > 3:
                return True, (
                    f"{device.device_id}: {timeline.unique_ips()} resolvers "
                    f"while stationary"
                )
    return False, "no stationary device with churn found"


def _fig10_similarity(study):
    result = study.fig10_similarity("tmobile")
    ok = (
        result.median_same_prefix() > 0.9
        and result.fraction_disjoint() > 0.6
    )
    evidence = (
        f"same-/24 median {result.median_same_prefix():.2f}; "
        f"diff-/24 disjoint {result.fraction_disjoint() * 100:.0f}%"
    )
    return ok, evidence


def _egress_growth(study):
    counts = study.egress_point_counts()
    observed = max(
        counts[key].count for key in ("sprint", "tmobile", "verizon")
        if key in counts
    )
    return observed > 6, f"max observed egress {observed} (Xu et al.: 4-6)"


def _t5_structure(study):
    rows = {
        (row.carrier, row.resolver_kind): row
        for row in study.table5_resolver_counts()
    }
    verizon_ok = (
        rows[("verizon", "google")].unique_ips
        > rows[("verizon", "local")].unique_ips
    )
    sk_ok = all(
        rows[(carrier, "local")].unique_prefixes <= 2
        for carrier in ("skt", "lgu")
    )
    return verizon_ok and sk_ok, (
        f"verizon google {rows[('verizon', 'google')].unique_ips} vs local "
        f"{rows[('verizon', 'local')].unique_ips} ips; "
        f"skt local /24s {rows[('skt', 'local')].unique_prefixes}"
    )


def _fig11_13_closer_faster(study):
    evidence = []
    ok = True
    for carrier in ("att", "skt"):
        pings = study.fig11_public_distance(carrier)
        if pings["local-external"].median >= pings["google"].median:
            ok = False
        evidence.append(
            f"{carrier} ping: local {pings['local-external'].median:.0f} vs "
            f"google {pings['google'].median:.0f}ms"
        )
    for carrier in study.world.operators:
        curves = study.fig13_public_resolution(carrier)
        if curves["local"].median >= curves["google"].median:
            ok = False
    return ok, "; ".join(evidence)


def _fig12_google_churn(study):
    best = 0
    for device in study.campaign.devices[:40]:
        timeline = study.fig12_google_churn(device.device_id)
        best = max(best, timeline.unique_prefixes())
    return best >= 3, f"max google /24 clusters per device: {best}"


def _fig14_public_parity(study):
    shares = {}
    for carrier in study.world.operators:
        result = study.fig14_public_replicas(carrier)
        shares[carrier] = result.fraction_public_not_worse()
    ok = all(share > 0.7 for share in shares.values())
    evidence = "; ".join(
        f"{carrier}:{share * 100:.0f}%" for carrier, share in shares.items()
    )
    return ok, evidence


#: The claim list, in paper order.
PAPER_CLAIMS: List[Claim] = [
    Claim("C1", "Fig 2",
          "clients are consistently handed replicas 50%+ worse than their "
          "best-seen replica", _fig2_differentials),
    Claim("C2", "Fig 3",
          "resolution times band sharply by radio technology, LTE fastest",
          _fig3_bands),
    Claim("C3", "Table 3",
          "every carrier resolves indirectly (externals >= client addrs)",
          _t3_indirect),
    Claim("C4", "Table 3",
          "Verizon's tiered pairs are 100% consistent", _t3_verizon),
    Claim("C5", "Fig 4",
          "US externals sit farther than client-facing fronts; Verizon/LG U+ "
          "externals ignore clients", _fig4_hierarchy),
    Claim("C6", "Fig 5",
          "US cellular resolution medians are broadband-class (tens of ms)",
          _fig5_medians),
    Claim("C7", "Fig 6",
          "SK resolution is bimodal above the median", _fig6_bimodal),
    Claim("C8", "Fig 7",
          "roughly a fifth of first lookups miss the cache", _fig7_misses),
    Claim("C9", "Table 4",
          "opaqueness: only Verizon/AT&T answer external pings, no "
          "traceroute completes", _t4_opaqueness),
    Claim("C10", "Fig 8",
          "resolver churn: T-Mobile worst, AT&T stable, SK confined to "
          "<=2 /24s", _fig8_churn),
    Claim("C11", "Fig 9",
          "churn persists for stationary clients", _fig9_static),
    Claim("C12", "Fig 10",
          "same-/24 resolvers share replica sets; different /24s are mostly "
          "disjoint", _fig10_similarity),
    Claim("C13", "Sec 5.2",
          "egress points grew well past Xu et al.'s 4-6", _egress_growth),
    Claim("C14", "Table 5",
          "public resolvers expose more IPs; SK locals pack into 1-2 /24s",
          _t5_structure),
    Claim("C15", "Figs 11/13",
          "cellular DNS is closer and resolves faster than public DNS",
          _fig11_13_closer_faster),
    Claim("C16", "Fig 12",
          "Google anycast steers one device across multiple /24 clusters",
          _fig12_google_churn),
    Claim("C17", "Fig 14",
          "public-DNS replicas perform equal or better a large majority of "
          "the time", _fig14_public_parity),
]


def verify_claims(study, claims: List[Claim] = PAPER_CLAIMS) -> List[ClaimResult]:
    """Check every claim against a study."""
    results = []
    for claim in claims:
        try:
            passed, evidence = claim.check(study)
        except Exception as exc:  # a broken check is a failed claim
            passed, evidence = False, f"check raised {type(exc).__name__}: {exc}"
        results.append(ClaimResult(claim=claim, passed=passed, evidence=evidence))
    return results


def render_verification(results: List[ClaimResult]) -> str:
    """Printable checklist."""
    lines = [str(result) for result in results]
    passed = sum(1 for result in results if result.passed)
    lines.append(f"\n{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
