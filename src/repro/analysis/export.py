"""CSV export of figure series.

The benchmark harness prints quantile grids; for actual plotting (the
paper's CDFs and timelines) each figure's raw series can be exported as
CSV with one call.  Files are plain ``x,y`` (CDFs), ``time,index``
(timelines) or labelled multi-column tables — loadable by any plotting
tool without this package installed.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.consistency import ResolverTimeline
from repro.analysis.stats import ECDF


def export_cdf(
    ecdf: ECDF, path: str, points: int = 200, label: str = "value"
) -> int:
    """Write a CDF as ``<label>,cumulative_fraction`` rows."""
    series = ecdf.series(points=points)
    _ensure_parent(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([label, "cdf"])
        for x, y in series:
            writer.writerow([f"{x:.4f}", f"{y:.6f}"])
    return len(series)


def export_cdf_family(
    curves: Dict[str, Optional[ECDF]],
    path: str,
    points: int = 200,
    label: str = "value",
) -> int:
    """Write several CDFs side by side: ``series,<label>,cdf`` rows."""
    _ensure_parent(path)
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", label, "cdf"])
        for name, ecdf in curves.items():
            if ecdf is None or ecdf.is_empty:
                continue
            for x, y in ecdf.series(points=points):
                writer.writerow([name, f"{x:.4f}", f"{y:.6f}"])
                rows += 1
    return rows


def export_timeline(
    timeline: ResolverTimeline, path: str, by_prefix: bool = False
) -> int:
    """Write a resolver timeline as ``time_s,index`` rows (Figs 8/9/12)."""
    series = (
        timeline.enumerated_prefixes() if by_prefix else timeline.enumerated_ips()
    )
    _ensure_parent(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "resolver_index"])
        for at, index in series:
            writer.writerow([f"{at:.1f}", index])
    return len(series)


def export_rows(
    headers: List[str], rows: List[Tuple], path: str
) -> int:
    """Write an arbitrary table (the Tables 1-5)."""
    _ensure_parent(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return len(rows)


def export_study_figures(study, directory: str) -> List[str]:
    """Export every figure's series for one study; returns file paths.

    One CSV per artifact, named after its figure/table id.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def path_of(name: str) -> str:
        full = os.path.join(directory, name)
        written.append(full)
        return full

    export_cdf_family(
        study.fig5_us_resolution(), path_of("fig5_us_resolution.csv"),
        label="resolution_ms",
    )
    export_cdf_family(
        study.fig6_sk_resolution(), path_of("fig6_sk_resolution.csv"),
        label="resolution_ms",
    )
    comparison = study.fig7_cache()
    export_cdf_family(
        {"first": comparison.first, "second": comparison.second},
        path_of("fig7_cache.csv"),
        label="resolution_ms",
    )
    for carrier in study.world.operators:
        export_cdf_family(
            study.fig3_resolution_by_technology(carrier),
            path_of(f"fig3_{carrier}.csv"),
            label="resolution_ms",
        )
        export_cdf_family(
            study.fig4_resolver_distance(carrier),
            path_of(f"fig4_{carrier}.csv"),
            label="rtt_ms",
        )
        export_cdf_family(
            study.fig11_public_distance(carrier),
            path_of(f"fig11_{carrier}.csv"),
            label="rtt_ms",
        )
        export_cdf_family(
            study.fig13_public_resolution(carrier),
            path_of(f"fig13_{carrier}.csv"),
            label="resolution_ms",
        )
        export_cdf(
            study.fig2_replica_differentials(carrier).ecdf(),
            path_of(f"fig2_{carrier}.csv"),
            label="percent_increase",
        )
        export_cdf(
            study.fig14_public_replicas(carrier).ecdf(),
            path_of(f"fig14_{carrier}.csv"),
            label="percent_change",
        )
    export_rows(
        ["carrier", "clients", "country"],
        study.table1_clients(),
        path_of("table1.csv"),
    )
    export_rows(
        ["carrier", "client_addrs", "external_addrs", "pairs", "consistency_pct"],
        [
            (r.carrier, r.client_addresses, r.external_addresses, r.pairs,
             round(r.consistency_pct, 1))
            for r in study.table3_ldns_pairs()
        ],
        path_of("table3.csv"),
    )
    export_rows(
        ["carrier", "resolver_kind", "unique_ips", "unique_prefixes"],
        [
            (r.carrier, r.resolver_kind, r.unique_ips, r.unique_prefixes)
            for r in study.table5_resolver_counts()
        ],
        path_of("table5.csv"),
    )
    return written


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
