"""Failure accounting: delivery outcomes across a campaign.

The pre-transport analyses could only sniff ``None``/NaN sentinels out
of the records; with structured outcomes on the wire (and client-side
inference for legacy archives — see the ``delivery_outcome`` properties
in :mod:`repro.measure.records`), the report can say *how* probes
failed: fault-induced timeouts and losses versus topology-silent
targets, and how much retry budget the clients burned getting their
answers.  On a fault-free campaign every fault column is zero and the
failure columns restate the firewalled/silent structure of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.engine import get_engine
from repro.measure.records import (
    OUTCOME_DELIVERED,
    OUTCOME_LOST,
    OUTCOME_TIMED_OUT,
    Dataset,
)


@dataclass
class FailureRow:
    """One carrier's delivery/loss ledger."""

    carrier: str
    resolutions: int
    resolution_failures: int
    #: Failures the fault scenario induced (explicit outcomes on the
    #: wire), split by kind; zero on fault-free campaigns.
    fault_timeouts: int
    fault_losses: int
    pings: int
    pings_unanswered: int
    http_gets: int
    http_failures: int
    #: Probe-layer retransmissions across DNS, ping and HTTP probes.
    retries: int

    @property
    def resolution_failure_fraction(self) -> float:
        """Share of resolutions that returned no answer."""
        if not self.resolutions:
            return 0.0
        return self.resolution_failures / self.resolutions


def failure_accounting(dataset: Dataset) -> List[FailureRow]:
    """Per-carrier delivery outcomes, carriers sorted by key (fused).

    Reads the engine's per-carrier failure ledger — nine counters
    tallied during the single fused scan (or streamed fold) in
    :class:`~repro.analysis.engine.AnalysisEngine` field order — so the
    report's failure table costs one sorted dict walk instead of a
    dataset re-scan.  Byte-identical to
    :func:`failure_accounting_reference`, the original record walk.
    """
    engine = get_engine(dataset)

    def compute() -> List[FailureRow]:
        return [
            FailureRow(carrier, *counters)
            for carrier, counters in sorted(engine.failure_counts.items())
        ]

    return engine.cached(("failure_accounting",), compute)


def failure_accounting_reference(dataset: Dataset) -> List[FailureRow]:
    """Per-carrier delivery outcomes, carriers sorted by key.

    The original whole-dataset record walk — the oracle the fused
    ledger is property-tested against.  Reads the structured outcome of
    every probe record — explicit when a fault scenario stamped it,
    inferred from the legacy wire shape otherwise — instead of sniffing
    ``None``/NaN sentinels.
    """
    rows: List[FailureRow] = []
    for carrier, records in sorted(dataset.by_carrier().items()):
        resolutions = resolution_failures = 0
        fault_timeouts = fault_losses = 0
        pings = pings_unanswered = 0
        http_gets = http_failures = 0
        retries = 0
        for record in records:
            for resolution in record.resolutions:
                resolutions += 1
                retries += resolution.retries
                if resolution.delivery_outcome != OUTCOME_DELIVERED:
                    resolution_failures += 1
                if resolution.outcome == OUTCOME_TIMED_OUT:
                    fault_timeouts += 1
                elif resolution.outcome == OUTCOME_LOST:
                    fault_losses += 1
            for ping in record.pings:
                pings += 1
                retries += ping.retries
                if ping.delivery_outcome != OUTCOME_DELIVERED:
                    pings_unanswered += 1
                if ping.outcome == OUTCOME_TIMED_OUT:
                    fault_timeouts += 1
                elif ping.outcome == OUTCOME_LOST:
                    fault_losses += 1
            for get in record.http_gets:
                http_gets += 1
                retries += get.retries
                if get.delivery_outcome != OUTCOME_DELIVERED:
                    http_failures += 1
                if get.outcome == OUTCOME_TIMED_OUT:
                    fault_timeouts += 1
                elif get.outcome == OUTCOME_LOST:
                    fault_losses += 1
        rows.append(
            FailureRow(
                carrier=carrier,
                resolutions=resolutions,
                resolution_failures=resolution_failures,
                fault_timeouts=fault_timeouts,
                fault_losses=fault_losses,
                pings=pings,
                pings_unanswered=pings_unanswered,
                http_gets=http_gets,
                http_failures=http_failures,
                retries=retries,
            )
        )
    return rows
