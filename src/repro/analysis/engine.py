"""The fused single-pass analysis engine.

Every table and figure used to re-walk the full dataset independently:
``latency``, ``cache``, ``consistency``, ``longitudinal``, ``similarity``,
``egress``, ``localization`` and ``reachability`` each looped over
``dataset.experiments_for(carrier)`` (or the whole dataset) per public
function.  At campaign-merge scale that re-scan dominates analysis cost —
the same shared-scan problem columnar analytics engines solve with loop
fusion.

:class:`AnalysisEngine` holds that fusion's output: every per-carrier
aggregate the analysis modules need — ECDF input vectors, cache-pair
deltas, resolver-identification streams, replica maps, egress traceroute
rows.  Two provably-equal builders fill it:

* :class:`ProjectionAccumulator` — the production path.  An incremental
  ``ingest(record)``/``finalize()`` fold that needs each record exactly
  once, so the engine can be built *while the campaign streams out*
  (``ShardedCampaign.run_streaming``'s merge sink) just as well as from
  a loaded dataset (:func:`get_engine`).
* ``AnalysisEngine(dataset)`` — the reference oracle: the original
  whole-dataset scan over the columnar projections
  (:meth:`~repro.measure.records.Dataset.columns`).  The property tests
  in ``tests/analysis/test_projection_accumulator.py`` hold the two
  builders to identical engine state over randomised record streams.

The public analysis functions consume these aggregates while keeping
their signatures and **byte-identical** output; the original walks
survive as ``*_reference`` oracles, and the property tests in
``tests/analysis/test_engine_equivalence.py`` hold those paths together
over randomised datasets.

The engine attaches to the dataset (``dataset._engine``) under the same
length-based invalidation contract as the grouping indices: appending
experiments invalidates it, and the next analysis call rebuilds.

Ordering contracts both builders preserve (all load-bearing for byte
identity):

* sample lists accumulate in dataset order, so sorted ECDFs and
  insertion-ordered dicts (technology buckets, replica maps, LDNS pair
  counts) match the reference walks exactly;
* per-record aggregates (cache pairs, Fig 14 rows) are flushed per
  experiment and tagged with the experiment index so multi-carrier
  consumers can re-merge them into dataset order;
* ``resolver_id(kind)`` semantics — *first* identification per kind —
  are applied during the scan.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import DatasetError
from repro.measure.records import (
    OUTCOME_DELIVERED,
    OUTCOME_LOST,
    OUTCOME_TIMED_OUT,
    Dataset,
    ExperimentRecord,
    _decode_experiment,
)

#: ``{attempt: [ms, ...]}`` per (carrier, resolver_kind) key.
_ByAttempt = Dict[int, List[float]]


def get_engine(dataset: Dataset) -> "AnalysisEngine":
    """The dataset's fused engine (built on first use; length-cached)."""
    if not dataset._fresh():
        dataset._invalidate()
    engine = dataset._engine
    if engine is None:
        accumulator = ProjectionAccumulator()
        ingest = accumulator.ingest
        for record in dataset.experiments:
            ingest(record)
        engine = accumulator.finalize()
        dataset._engine = engine
    return engine


def _tally_record_failures(record: ExperimentRecord, counters: List[int]) -> None:
    """Fold one record into a carrier's failure ledger (in place).

    ``counters`` is the nine :class:`~repro.analysis.failures.FailureRow`
    tallies in field order: resolutions, resolution_failures,
    fault_timeouts, fault_losses, pings, pings_unanswered, http_gets,
    http_failures, retries.  Semantics mirror
    ``failure_accounting_reference`` exactly: the failure columns read
    the (possibly inferred) ``delivery_outcome``, the fault columns only
    the explicit ``outcome`` field, and traceroutes are not counted.
    """
    for resolution in record.resolutions:
        counters[0] += 1
        counters[8] += resolution.retries
        outcome = resolution.outcome
        if outcome is None:
            rcode = resolution.rcode
            if rcode == "UNREACHABLE" or rcode == "TIMEOUT":
                counters[1] += 1
        else:
            if outcome != OUTCOME_DELIVERED:
                counters[1] += 1
            if outcome == OUTCOME_TIMED_OUT:
                counters[2] += 1
            elif outcome == OUTCOME_LOST:
                counters[3] += 1
    for ping in record.pings:
        counters[4] += 1
        counters[8] += ping.retries
        outcome = ping.outcome
        if outcome is None:
            if ping.rtt_ms is None:
                counters[5] += 1
        else:
            if outcome != OUTCOME_DELIVERED:
                counters[5] += 1
            if outcome == OUTCOME_TIMED_OUT:
                counters[2] += 1
            elif outcome == OUTCOME_LOST:
                counters[3] += 1
    for get in record.http_gets:
        counters[6] += 1
        counters[8] += get.retries
        outcome = get.outcome
        if outcome is None:
            if get.ttfb_ms is None:
                counters[7] += 1
        else:
            if outcome != OUTCOME_DELIVERED:
                counters[7] += 1
            if outcome == OUTCOME_TIMED_OUT:
                counters[2] += 1
            elif outcome == OUTCOME_LOST:
                counters[3] += 1


class AnalysisEngine:
    """Every per-carrier analysis aggregate, from one fused build.

    Constructed empty (``AnalysisEngine()``) for a
    :class:`ProjectionAccumulator` to fill incrementally — the
    production path — or with a dataset (``AnalysisEngine(dataset)``)
    to run the original whole-dataset columnar scan, kept as the
    reference oracle the accumulator is property-tested against.

    All attributes are read-only shared state: consumers must copy
    before mutating (the rewired analysis functions do).
    """

    __slots__ = (
        "query_cache",
        "res_clean",
        "res_whoami",
        "tech_order",
        "tech_samples",
        "ping_samples",
        "cache_chunks",
        "domain_deltas",
        "ldns_pairs",
        "id_sets",
        "id_stream",
        "observed_externals",
        "device_obs",
        "replica_maps",
        "http_samples",
        "http_rows",
        "fig14_rows",
        "egress_rows",
        "egress_stream",
        "failure_counts",
    )

    def __init__(self, dataset: Optional[Dataset] = None) -> None:
        #: Memoised analysis-function results, keyed ``(name, *args)``.
        #: Pure in the dataset, so appending experiments (which rebuilds
        #: the engine) is the only invalidation needed.  This is what
        #: makes repeated regeneration — report re-renders, claim
        #: verification, the ``benchmarks/bench_*`` suites — cost dict
        #: lookups instead of recomputation.
        self.query_cache: Dict[tuple, object] = {}

        #: Resolution times excluding the whoami echo domains, keyed
        #: ``(carrier, kind) -> {attempt: [ms]}`` (Figs 5/6/13 input).
        self.res_clean: Dict[Tuple[str, str], _ByAttempt] = {}
        #: The whoami complement (no real campaign emits these into
        #: ``resolutions``, but loaded archives may).
        self.res_whoami: Dict[Tuple[str, str], _ByAttempt] = {}
        #: Technologies per carrier, first-seen record order (Fig 3).
        self.tech_order: Dict[str, List[str]] = {}
        #: ``(carrier, technology, kind) -> [ms]``, first attempts only.
        self.tech_samples: Dict[Tuple[str, str, str], List[float]] = {}
        #: ``(carrier, ping target_kind) -> [rtt]`` (Figs 4/11).
        self.ping_samples: Dict[Tuple[str, str], List[float]] = {}
        #: ``(carrier, kind) -> [(exp_index, firsts, seconds, deltas)]``
        #: per-record back-to-back pairs (Fig 7).
        self.cache_chunks: Dict[
            Tuple[str, str], List[Tuple[int, List[float], List[float], List[float]]]
        ] = {}
        #: ``domain -> [first - second, ...]`` over local pairs, dataset
        #: order (per-domain miss rates).
        self.domain_deltas: Dict[str, List[float]] = {}
        #: ``carrier -> {(configured, external): count}`` local
        #: identifications, first-seen pair order (Table 3).
        self.ldns_pairs: Dict[str, Dict[Tuple[str, str], int]] = {}
        #: ``(carrier, kind) -> {external, ...}`` (Table 5, Table 4).
        self.id_sets: Dict[Tuple[str, str], Set[str]] = {}
        #: ``(carrier, kind) -> [(started_at, configured, external)]``
        #: in record order (longitudinal windows/discovery).
        self.id_stream: Dict[Tuple[str, str], List[Tuple[float, str, str]]] = {}
        #: ``carrier -> {external, ...}`` local kind, first-seen carrier
        #: order (reachability).
        self.observed_externals: Dict[str, Set[str]] = {}
        #: ``device -> [(started_at, lat, lon, {kind: external}, carrier)]``
        #: sorted by started_at (Figs 8/9/12 timelines).
        self.device_obs: Dict[
            str, List[Tuple[float, float, float, Dict[str, str], str]]
        ] = {}
        #: ``(carrier | None, kind) -> {domain: {resolver_ip: {replica: n}}}``
        #: — Fig 10's replica maps, for one carrier or the whole dataset.
        self.replica_maps: Dict[
            Tuple[Optional[str], str], Dict[str, Dict[str, Dict[str, int]]]
        ] = {}
        #: ``carrier -> {(device, domain): {replica: [ttfb]}}`` (Fig 2,
        #: default parameters).
        self.http_samples: Dict[
            str, Dict[Tuple[str, str], Dict[str, List[float]]]
        ] = {}
        #: ``carrier -> [(device, domain, kind, replica, ttfb)]`` for
        #: parameterised Fig 2 variants.
        self.http_rows: Dict[str, List[Tuple[str, str, str, str, float]]] = {}
        #: ``carrier -> [(ttfb_of, {domain: {kind: addresses}})]`` per
        #: record (Fig 14).
        self.fig14_rows: Dict[
            str,
            List[Tuple[Dict[str, List[float]], Dict[str, Dict[str, List[str]]]]],
        ] = {}
        #: ``[(carrier, hops)]`` eligible traceroutes, dataset order
        #: (egress counting).
        self.egress_rows: List[Tuple[str, List[List[object]]]] = []
        #: ``carrier -> [(started_at, hops)]`` (egress discovery curves).
        self.egress_stream: Dict[str, List[Tuple[float, List[List[object]]]]] = {}
        #: ``carrier -> [nine FailureRow tallies]`` in first-seen record
        #: order (failure accounting; see :func:`_tally_record_failures`).
        self.failure_counts: Dict[str, List[int]] = {}

        if dataset is not None:
            self._scan_resolver_ids(dataset.columns())
            failure_counts = self.failure_counts
            for record in dataset.experiments:
                counters = failure_counts.get(record.carrier)
                if counters is None:
                    counters = failure_counts[record.carrier] = [0] * 9
                _tally_record_failures(record, counters)

    # -- the scan ----------------------------------------------------------

    def _scan_resolver_ids(self, columns) -> None:
        """The full scan (ids first: later passes join against them)."""
        carrier = columns.carrier

        # Resolver identifications: first record per (experiment, kind).
        ids_by_exp: Dict[int, Dict[str, Tuple[str, Optional[str]]]] = {}
        for exp, kind, configured, external in zip(
            columns.rid_exp,
            columns.rid_kind,
            columns.rid_configured,
            columns.rid_external,
        ):
            ids = ids_by_exp.get(exp)
            if ids is None:
                ids = ids_by_exp[exp] = {}
            if kind not in ids:
                ids[kind] = (configured, external)

        self._scan_experiments(columns, ids_by_exp)
        self._scan_resolutions(columns, ids_by_exp)
        self._scan_pings(columns)
        self._scan_http(columns)
        self._scan_traceroutes(columns)

    def _scan_experiments(self, columns, ids_by_exp) -> None:
        tech_order = self.tech_order
        tech_seen: Dict[str, Set[str]] = {}
        device_obs = self.device_obs
        ldns_pairs = self.ldns_pairs
        id_sets = self.id_sets
        id_stream = self.id_stream
        observed = self.observed_externals
        empty_ids: Dict[str, Tuple[str, Optional[str]]] = {}
        for index, (key, device, started_at, lat, lon, tech) in enumerate(
            zip(
                columns.carrier,
                columns.device_id,
                columns.started_at,
                columns.latitude,
                columns.longitude,
                columns.technology,
            )
        ):
            seen = tech_seen.get(key)
            if seen is None:
                seen = tech_seen[key] = set()
                tech_order[key] = []
            if tech not in seen:
                seen.add(tech)
                tech_order[key].append(tech)

            ids = ids_by_exp.get(index, empty_ids)
            externals = {
                kind: external for kind, (_, external) in ids.items() if external
            }
            rows = device_obs.get(device)
            if rows is None:
                rows = device_obs[device] = []
            rows.append((started_at, lat, lon, externals, key))

            for kind, (configured, external) in ids.items():
                if not external:
                    continue
                id_key = (key, kind)
                seen_set = id_sets.get(id_key)
                if seen_set is None:
                    seen_set = id_sets[id_key] = set()
                seen_set.add(external)
                stream = id_stream.get(id_key)
                if stream is None:
                    stream = id_stream[id_key] = []
                stream.append((started_at, configured, external))
                if kind == "local":
                    observed.setdefault(key, seen_set)
                    pair_counts = ldns_pairs.get(key)
                    if pair_counts is None:
                        pair_counts = ldns_pairs[key] = {}
                    pair = (configured, external)
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
        # by_device() time-orders each group with a stable sort; mirror it.
        for rows in device_obs.values():
            if any(
                earlier[0] > later[0] for earlier, later in zip(rows, rows[1:])
            ):
                rows.sort(key=lambda row: row[0])

    def _scan_resolutions(self, columns, ids_by_exp) -> None:
        res_clean = self.res_clean
        res_whoami = self.res_whoami
        tech_samples = self.tech_samples
        replica_maps = self.replica_maps
        domain_deltas = self.domain_deltas
        carrier = columns.carrier
        technology = columns.technology
        current = -1
        key = ""
        pending: Dict[str, Dict[str, Dict[int, float]]] = {}
        fig14_domains: Dict[str, Dict[str, List[str]]] = {}
        # Hoisted loop state.  Resolutions arrive grouped by experiment
        # (column construction order), and experiments are typically
        # contiguous per carrier (shard merge order), so the inner loop
        # resolves carrier/technology/identification context through
        # small per-experiment and per-carrier memos instead of repeated
        # tuple-keyed lookups on the global aggregate dicts.  The memos
        # are pure caches: a non-contiguous carrier mix only resets them
        # more often, never changes results.
        whoami_memo: Dict[str, bool] = {}
        clean_k: Dict[str, _ByAttempt] = {}  # kind -> by_attempt (carrier)
        whoami_k: Dict[str, _ByAttempt] = {}
        scopes_k: Dict[str, tuple] = {}  # kind -> (carrier scope, global scope)
        tech_k: Dict[str, List[float]] = {}  # kind -> samples (experiment)
        resolver_k: Dict[str, str] = {}  # kind -> external ip (experiment)
        for exp, domain, kind, ms, attempt, addresses in zip(
            columns.res_exp,
            columns.res_domain,
            columns.res_kind,
            columns.res_ms,
            columns.res_attempt,
            columns.res_addresses,
        ):
            if exp != current:
                if current >= 0:
                    self._flush_record(current, key, pending,
                                       fig14_domains, domain_deltas)
                current = exp
                pending = {}
                fig14_domains = {}
                tech_k = {}
                if carrier[exp] != key:
                    key = carrier[exp]
                    clean_k = {}
                    whoami_k = {}
                    scopes_k = {}
                technology_now = technology[exp]
                ids = ids_by_exp.get(exp)
                resolver_k = {}
                if ids is not None:
                    for id_kind, (_, external) in ids.items():
                        # ``is not None``: the similarity join keeps
                        # empty-string externals (reference semantics).
                        if external is not None:
                            resolver_k[id_kind] = external

            whoami = whoami_memo.get(domain)
            if whoami is None:
                whoami = whoami_memo[domain] = (
                    domain.endswith(".net") and "whoami" in domain
                )
            bucket_k = whoami_k if whoami else clean_k
            by_attempt = bucket_k.get(kind)
            if by_attempt is None:
                bucket = res_whoami if whoami else res_clean
                by_attempt = bucket.get((key, kind))
                if by_attempt is None:
                    by_attempt = bucket[(key, kind)] = {}
                bucket_k[kind] = by_attempt
            samples = by_attempt.get(attempt)
            if samples is None:
                samples = by_attempt[attempt] = []
            samples.append(ms)

            if attempt == 1:
                tech_bucket = tech_k.get(kind)
                if tech_bucket is None:
                    tech_key = (key, technology_now, kind)
                    tech_bucket = tech_samples.get(tech_key)
                    if tech_bucket is None:
                        tech_bucket = tech_samples[tech_key] = []
                    tech_k[kind] = tech_bucket
                tech_bucket.append(ms)
                if addresses:
                    fig14_domains.setdefault(domain, {})[kind] = addresses

            pairs = pending.get(kind)
            if pairs is None:
                pairs = pending[kind] = {}
            pairs.setdefault(domain, {})[attempt] = ms

            resolver_ip = resolver_k.get(kind)
            if resolver_ip is not None:
                scopes = scopes_k.get(kind)
                if scopes is None:
                    by_domain = replica_maps.get((key, kind))
                    if by_domain is None:
                        by_domain = replica_maps[(key, kind)] = {}
                    global_domain = replica_maps.get((None, kind))
                    if global_domain is None:
                        global_domain = replica_maps[(None, kind)] = {}
                    scopes = scopes_k[kind] = (by_domain, global_domain)
                for by_domain in scopes:
                    by_resolver = by_domain.get(domain)
                    if by_resolver is None:
                        by_resolver = by_domain[domain] = {}
                    counts = by_resolver.get(resolver_ip)
                    if counts is None:
                        counts = by_resolver[resolver_ip] = {}
                    for address in addresses:
                        counts[address] = counts.get(address, 0) + 1
        if current >= 0:
            self._flush_record(current, key, pending,
                               fig14_domains, domain_deltas)

    def _flush_pairs(self, exp: int, key: str, pending, domain_deltas) -> None:
        """Close one experiment's back-to-back pairs (cache chunks).

        Shared by both builders: the columnar reference scan flushes
        through :meth:`_flush_record`, the incremental accumulator calls
        this directly and appends its own Fig 14 row (with the TTFB map
        already joined).
        """
        for kind, pairs in pending.items():
            firsts: List[float] = []
            seconds: List[float] = []
            deltas: List[float] = []
            for domain, by_attempt in pairs.items():
                first = by_attempt.get(1)
                second = by_attempt.get(2)
                if first is not None:
                    firsts.append(first)
                if second is not None:
                    seconds.append(second)
                if first is not None and second is not None:
                    delta = first - second
                    deltas.append(delta)
                    if kind == "local":
                        bucket = domain_deltas.get(domain)
                        if bucket is None:
                            bucket = domain_deltas[domain] = []
                        bucket.append(delta)
            chunk_key = (key, kind)
            chunks = self.cache_chunks.get(chunk_key)
            if chunks is None:
                chunks = self.cache_chunks[chunk_key] = []
            chunks.append((exp, firsts, seconds, deltas))

    def _flush_record(
        self, exp: int, key: str, pending, fig14_domains, domain_deltas
    ) -> None:
        """Close one experiment: cache pairs and Fig 14 rows."""
        self._flush_pairs(exp, key, pending, domain_deltas)
        if fig14_domains:
            rows = self.fig14_rows.get(key)
            if rows is None:
                rows = self.fig14_rows[key] = []
            rows.append((exp, fig14_domains))

    def _scan_pings(self, columns) -> None:
        ping_samples = self.ping_samples
        carrier = columns.carrier
        for exp, kind, rtt in zip(
            columns.ping_exp, columns.ping_kind, columns.ping_rtt
        ):
            if rtt is None:
                continue
            key = (carrier[exp], kind)
            samples = ping_samples.get(key)
            if samples is None:
                samples = ping_samples[key] = []
            samples.append(rtt)

    def _scan_http(self, columns) -> None:
        http_samples = self.http_samples
        http_rows = self.http_rows
        carrier = columns.carrier
        device = columns.device_id
        ttfb_by_exp: Dict[int, Dict[str, List[float]]] = {}
        # Same hoisting pattern as the resolution scan: per-experiment
        # context (carrier, device, the record's TTFB map) and the
        # current carrier's sample/row buckets live in locals.
        current = -1
        key = ""
        dev = ""
        samples: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
        rows: List[Tuple[str, str, str, str, float]] = []
        exp_ttfb: Dict[str, List[float]] = {}
        for exp, replica, domain, kind, ttfb in zip(
            columns.http_exp,
            columns.http_replica,
            columns.http_domain,
            columns.http_kind,
            columns.http_ttfb,
        ):
            if ttfb is None:
                continue
            if exp != current:
                current = exp
                dev = device[exp]
                exp_ttfb = ttfb_by_exp.get(exp)
                if exp_ttfb is None:
                    exp_ttfb = ttfb_by_exp[exp] = {}
                if carrier[exp] != key:
                    key = carrier[exp]
                    samples = http_samples.get(key)
                    if samples is None:
                        samples = http_samples[key] = {}
                    rows = http_rows.get(key)
                    if rows is None:
                        rows = http_rows[key] = []
            samples.setdefault((dev, domain), {}).setdefault(
                replica, []
            ).append(ttfb)
            rows.append((dev, domain, kind, replica, ttfb))
            exp_ttfb.setdefault(replica, []).append(ttfb)
        # Join the per-record TTFB maps onto the Fig 14 resolution rows.
        empty: Dict[str, List[float]] = {}
        for key, rows in self.fig14_rows.items():
            self.fig14_rows[key] = [
                (ttfb_by_exp.get(exp, empty), domains)
                for exp, domains in rows
            ]

    def _scan_traceroutes(self, columns) -> None:
        egress_rows = self.egress_rows
        egress_stream = self.egress_stream
        carrier = columns.carrier
        started_at = columns.started_at
        for exp, kind, hops in zip(
            columns.trace_exp, columns.trace_kind, columns.trace_hops
        ):
            if kind not in ("egress-discovery", "replica"):
                continue
            key = carrier[exp]
            egress_rows.append((key, hops))
            stream = egress_stream.get(key)
            if stream is None:
                stream = egress_stream[key] = []
            stream.append((started_at[exp], hops))

    # -- composed accessors -------------------------------------------------

    def cached(self, key: tuple, compute):
        """Memoise one analysis result under the engine's lifetime.

        ``key`` is ``(function_name, *hashable_args)``.  Results are
        shared across callers and must be treated as read-only — the
        rewired analysis functions already hand out engine state under
        that contract.  Appending experiments rebuilds the engine and
        thereby drops the memo.
        """
        try:
            return self.query_cache[key]
        except KeyError:
            result = compute()
            self.query_cache[key] = result
            return result

    def resolution_values(
        self, carrier: str, kind: str, attempt: Optional[int],
        include_whoami: bool = False,
    ) -> List[float]:
        """Resolution-time samples for one carrier and resolver kind.

        ``attempt=None`` merges all attempts.  Consumers feed the result
        to :meth:`ECDF.from_values`, which sorts — so merge order is
        irrelevant to output identity.  The returned list may be shared
        engine state: treat as read-only.
        """
        buckets = [self.res_clean.get((carrier, kind))]
        if include_whoami:
            buckets.append(self.res_whoami.get((carrier, kind)))
        parts: List[List[float]] = []
        for by_attempt in buckets:
            if not by_attempt:
                continue
            if attempt is not None:
                samples = by_attempt.get(attempt)
                if samples:
                    parts.append(samples)
            else:
                parts.extend(by_attempt.values())
        if len(parts) == 1:
            return parts[0]
        merged: List[float] = []
        for samples in parts:
            merged.extend(samples)
        return merged


class ProjectionAccumulator:
    """Incremental builder of :class:`AnalysisEngine` state.

    The fused whole-dataset scan, split into a per-record fold: feed
    every experiment exactly once — as an object via :meth:`ingest`
    (the serial streaming path and :func:`get_engine`) or as a merged
    JSONL line via :meth:`ingest_line` (the sharded streaming merge) —
    then :meth:`finalize` returns an engine whose state is equal,
    aggregate for aggregate, to ``AnalysisEngine(dataset)`` over the
    same records in the same order.  Records must arrive in dataset
    order: the experiment index tags cache chunks, and first-seen
    insertion orders are load-bearing for byte-identical rendering.

    State held beyond the engine's own aggregates is O(distinct
    carriers + distinct domains): a per-carrier technology-seen set and
    the whoami-domain memo.  Per-record working state (cache pairs, the
    Fig 14 domain map, the TTFB map) lives and dies inside one
    :meth:`ingest` call, so accumulator memory tracks the *aggregates*,
    never the raw record stream.
    """

    __slots__ = ("engine", "count", "_tech_seen", "_whoami_memo",
                 "_fig14_empty")

    def __init__(self) -> None:
        self.engine = AnalysisEngine()
        #: Records folded so far == the next record's experiment index.
        self.count = 0
        self._tech_seen: Dict[str, Set[str]] = {}
        self._whoami_memo: Dict[str, bool] = {}
        #: Shared empty TTFB map for Fig 14 rows of experiments with no
        #: answered GET (the reference scan shares one dict likewise).
        self._fig14_empty: Dict[str, List[float]] = {}

    def ingest(self, record: ExperimentRecord) -> None:
        """Fold one experiment into the engine's aggregates."""
        engine = self.engine
        exp = self.count
        self.count = exp + 1
        key = record.carrier
        started_at = record.started_at

        # Resolver identifications: first record per kind.
        ids: Dict[str, Tuple[str, Optional[str]]] = {}
        for rid in record.resolver_ids:
            if rid.resolver_kind not in ids:
                ids[rid.resolver_kind] = (
                    rid.configured_ip, rid.observed_external_ip
                )

        # Experiment-level aggregates (technology order, device
        # timelines, identification sets/streams, LDNS pairs).
        seen = self._tech_seen.get(key)
        if seen is None:
            seen = self._tech_seen[key] = set()
            engine.tech_order[key] = []
        tech = record.technology
        if tech not in seen:
            seen.add(tech)
            engine.tech_order[key].append(tech)

        externals = {
            kind: external for kind, (_, external) in ids.items() if external
        }
        obs_rows = engine.device_obs.get(record.device_id)
        if obs_rows is None:
            obs_rows = engine.device_obs[record.device_id] = []
        obs_rows.append(
            (started_at, record.latitude, record.longitude, externals, key)
        )

        id_sets = engine.id_sets
        id_stream = engine.id_stream
        for kind, (configured, external) in ids.items():
            if not external:
                continue
            id_key = (key, kind)
            seen_set = id_sets.get(id_key)
            if seen_set is None:
                seen_set = id_sets[id_key] = set()
            seen_set.add(external)
            stream = id_stream.get(id_key)
            if stream is None:
                stream = id_stream[id_key] = []
            stream.append((started_at, configured, external))
            if kind == "local":
                # Aliases the id_sets set (reference semantics).
                engine.observed_externals.setdefault(key, seen_set)
                pair_counts = engine.ldns_pairs.get(key)
                if pair_counts is None:
                    pair_counts = engine.ldns_pairs[key] = {}
                pair = (configured, external)
                pair_counts[pair] = pair_counts.get(pair, 0) + 1

        # Resolutions: latency buckets, technology samples, back-to-back
        # pairs, replica maps, Fig 14 domain maps.
        resolutions = record.resolutions
        if resolutions:
            pending: Dict[str, Dict[str, Dict[int, float]]] = {}
            fig14_domains: Dict[str, Dict[str, List[str]]] = {}
            resolver_k: Dict[str, str] = {}
            for id_kind, (_, external) in ids.items():
                # ``is not None``: the similarity join keeps
                # empty-string externals (reference semantics).
                if external is not None:
                    resolver_k[id_kind] = external
            whoami_memo = self._whoami_memo
            res_clean = engine.res_clean
            res_whoami = engine.res_whoami
            tech_samples = engine.tech_samples
            replica_maps = engine.replica_maps
            for resolution in resolutions:
                domain = resolution.domain
                kind = resolution.resolver_kind
                ms = resolution.resolution_ms
                attempt = resolution.attempt
                addresses = resolution.addresses
                whoami = whoami_memo.get(domain)
                if whoami is None:
                    whoami = whoami_memo[domain] = (
                        domain.endswith(".net") and "whoami" in domain
                    )
                bucket = res_whoami if whoami else res_clean
                by_attempt = bucket.get((key, kind))
                if by_attempt is None:
                    by_attempt = bucket[(key, kind)] = {}
                samples = by_attempt.get(attempt)
                if samples is None:
                    samples = by_attempt[attempt] = []
                samples.append(ms)

                if attempt == 1:
                    tech_key = (key, tech, kind)
                    tech_bucket = tech_samples.get(tech_key)
                    if tech_bucket is None:
                        tech_bucket = tech_samples[tech_key] = []
                    tech_bucket.append(ms)
                    if addresses:
                        fig14_domains.setdefault(domain, {})[kind] = addresses

                pairs = pending.get(kind)
                if pairs is None:
                    pairs = pending[kind] = {}
                pairs.setdefault(domain, {})[attempt] = ms

                resolver_ip = resolver_k.get(kind)
                if resolver_ip is not None:
                    for scope in ((key, kind), (None, kind)):
                        by_domain = replica_maps.get(scope)
                        if by_domain is None:
                            by_domain = replica_maps[scope] = {}
                        by_resolver = by_domain.get(domain)
                        if by_resolver is None:
                            by_resolver = by_domain[domain] = {}
                        counts = by_resolver.get(resolver_ip)
                        if counts is None:
                            counts = by_resolver[resolver_ip] = {}
                        for address in addresses:
                            counts[address] = counts.get(address, 0) + 1

        # Pings.
        ping_samples = engine.ping_samples
        for ping in record.pings:
            rtt = ping.rtt_ms
            if rtt is None:
                continue
            ping_key = (key, ping.target_kind)
            samples = ping_samples.get(ping_key)
            if samples is None:
                samples = ping_samples[ping_key] = []
            samples.append(rtt)

        # HTTP GETs.  Buckets (and the record's TTFB map) are created on
        # the first *answered* GET only — reference semantics: the
        # columnar scan ``continue``s on None before touching state.
        exp_ttfb: Optional[Dict[str, List[float]]] = None
        http_samples = None
        http_rows = None
        device = record.device_id
        for get in record.http_gets:
            ttfb = get.ttfb_ms
            if ttfb is None:
                continue
            if exp_ttfb is None:
                exp_ttfb = {}
                http_samples = engine.http_samples.get(key)
                if http_samples is None:
                    http_samples = engine.http_samples[key] = {}
                http_rows = engine.http_rows.get(key)
                if http_rows is None:
                    http_rows = engine.http_rows[key] = []
            http_samples.setdefault((device, get.domain), {}).setdefault(
                get.replica_ip, []
            ).append(ttfb)
            http_rows.append(
                (device, get.domain, get.resolver_kind, get.replica_ip, ttfb)
            )
            exp_ttfb.setdefault(get.replica_ip, []).append(ttfb)

        # Close the experiment: cache pairs, then the Fig 14 row with
        # the TTFB map already joined on (the reference scan joins all
        # rows after its HTTP pass; per-carrier row order is identical).
        if resolutions:
            engine._flush_pairs(exp, key, pending, engine.domain_deltas)
            if fig14_domains:
                fig14 = engine.fig14_rows.get(key)
                if fig14 is None:
                    fig14 = engine.fig14_rows[key] = []
                fig14.append((
                    exp_ttfb if exp_ttfb is not None else self._fig14_empty,
                    fig14_domains,
                ))

        # Traceroutes (egress-eligible kinds only).
        egress_stream = engine.egress_stream
        for trace in record.traceroutes:
            if trace.target_kind not in ("egress-discovery", "replica"):
                continue
            engine.egress_rows.append((key, trace.hops))
            stream = egress_stream.get(key)
            if stream is None:
                stream = egress_stream[key] = []
            stream.append((started_at, trace.hops))

        # Failure ledger.
        counters = engine.failure_counts.get(key)
        if counters is None:
            counters = engine.failure_counts[key] = [0] * 9
        _tally_record_failures(record, counters)

    def ingest_line(self, line: str) -> None:
        """Fold one merged JSONL line (decoded exactly once).

        Blank and ``_metadata`` lines are skipped; canonical lines take
        the slot-assigning fast decoder, anything else falls back to
        :meth:`ExperimentRecord.from_json` — the same ladder
        :meth:`Dataset.load_jsonl` runs, so a streamed engine sees the
        records a post-hoc load would.
        """
        line = line.strip()
        if not line or line.startswith('{"_metadata"'):
            return
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"bad dataset line: {exc}") from exc
        record = _decode_experiment(payload)
        if record is None:
            record = ExperimentRecord.from_json(line)
        self.ingest(record)

    def finalize(self) -> AnalysisEngine:
        """Seal and return the engine (call once, after the last record).

        Mirrors the reference scan's epilogue: device timelines get the
        conditional stable time-sort ``by_device()`` applies.
        """
        for rows in self.engine.device_obs.values():
            if any(
                earlier[0] > later[0]
                for earlier, later in zip(rows, rows[1:])
            ):
                rows.sort(key=lambda row: row[0])
        return self.engine


class StreamedDataset(Dataset):
    """The analysis-facing stand-in a streamed campaign produces.

    Holds **no records**: just the finalized engine, the content hash
    the streaming merge digested, and the experiment count — everything
    report rendering actually consumes.  The full analysis suite renders
    byte-identically from this object because every fused primitive
    reads engine aggregates; any code path that would need the raw
    records raises :class:`DatasetError` loudly instead of silently
    rendering from nothing.
    """

    __slots__ = ("pinned_hash", "experiment_count")

    def __init__(
        self,
        engine: AnalysisEngine,
        content_hash: str,
        experiments: int,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(metadata=dict(metadata or {}))
        self.pinned_hash = content_hash
        self.experiment_count = experiments
        # The empty record list is "fresh" (indexed at length 0), so
        # get_engine serves the attached engine without a rebuild.
        self._indexed_len = 0
        self._engine = engine

    def content_hash(self) -> str:
        """The hash the streaming merge computed, byte-equal to the
        post-hoc hash of the written file."""
        return self.pinned_hash

    def __len__(self) -> int:
        return self.experiment_count

    def carriers(self) -> List[str]:
        """Carrier keys in first-seen order (engine-backed)."""
        return list(self._engine.tech_order)

    def device_ids(self) -> List[str]:
        """Distinct device ids, sorted (engine-backed)."""
        return sorted(self._engine.device_obs)

    def _no_records(self, method: str):
        raise DatasetError(
            f"Dataset.{method} needs raw experiment records, but this "
            f"dataset was streamed: only engine aggregates were kept. "
            f"Load the written JSONL for record-level access."
        )

    def add(self, record) -> None:
        self._no_records("add")

    def __iter__(self):
        self._no_records("__iter__")

    def by_carrier(self):
        self._no_records("by_carrier")

    def by_device(self):
        self._no_records("by_device")

    def experiments_for(self, carrier: str):
        self._no_records("experiments_for")

    def resolutions_by_domain(self):
        self._no_records("resolutions_by_domain")

    def columns(self):
        self._no_records("columns")

    def filter(self, predicate):
        self._no_records("filter")

    def dump_jsonl(self, stream):
        self._no_records("dump_jsonl")
