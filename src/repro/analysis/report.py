"""Plain-text rendering of tables and CDF curves.

The benchmark harness prints each reproduced table/figure in a form that
can be eyeballed against the paper: fixed-width tables for the tables,
quantile grids for the CDFs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import ECDF

#: Quantiles printed for every CDF.
CDF_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width table with optional title."""
    columns = [
        [str(header)] + [_cell(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _cell(value).ljust(width) for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


def format_cdfs(
    curves: Dict[str, Optional[ECDF]],
    title: str = "",
    unit: str = "ms",
    quantiles: Sequence[float] = CDF_QUANTILES,
) -> str:
    """Quantile grid for a family of CDFs (one row per curve)."""
    headers = ["series", "n"] + [f"p{int(q * 100)}" for q in quantiles]
    rows: List[List[object]] = []
    for name, ecdf in curves.items():
        if ecdf is None or ecdf.is_empty:
            rows.append([name, 0] + ["-"] * len(quantiles))
            continue
        rows.append(
            [name, len(ecdf)]
            + [f"{ecdf.quantile(q):.1f}" for q in quantiles]
        )
    label = f"{title} ({unit})" if title else f"({unit})"
    return format_table(headers, rows, title=label)


def format_timeline(
    series: Sequence[tuple],
    title: str = "",
    width: int = 72,
    left_label: str = "",
    right_label: str = "",
) -> str:
    """ASCII rendering of an enumerated timeline (Figs 8, 9, 12).

    ``series`` is (time, index) pairs as produced by
    :meth:`~repro.analysis.consistency.ResolverTimeline.enumerated_ips`;
    each dot marks one observation at that resolver index.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("  (no observations)")
        return "\n".join(lines)
    start = series[0][0]
    end = series[-1][0]
    span = max(end - start, 1.0)
    peak = max(index for _, index in series)
    for level in range(peak, 0, -1):
        row = [" "] * width
        for at, index in series:
            if index == level:
                column = min(width - 1, int((at - start) / span * (width - 1)))
                row[column] = "•"
        lines.append(f"  {level:>3} |{''.join(row)}")
    lines.append(f"      +{'-' * width}")
    if left_label or right_label:
        gap = max(1, width - len(left_label) - len(right_label))
        lines.append(f"       {left_label}{' ' * gap}{right_label}")
    return "\n".join(lines)


def format_fractions(
    rows: Dict[str, float], title: str = "", as_percent: bool = True
) -> str:
    """A two-column name/fraction table."""
    factor = 100.0 if as_percent else 1.0
    suffix = "%" if as_percent else ""
    table_rows = [
        [name, f"{value * factor:.1f}{suffix}"] for name, value in rows.items()
    ]
    return format_table(["series", "value"], table_rows, title=title)
