"""LDNS pairing and resolver consistency (Sec 4.1, 4.5, 6.1).

Three artifacts come out of here:

* **Table 3**: per carrier, the number of client-facing and
  external-facing resolver addresses observed, and the consistency of
  their pairings (for each client-facing address, the share of its
  measurements going to its most common external partner).
* **Figs 8/9/12**: per-device timelines of external resolvers,
  enumerated in order of first appearance — both raw addresses and /24
  prefixes — optionally filtered to a static location cluster.
* **Table 5**: unique resolver addresses and /24s per carrier for the
  local, Google and OpenDNS resolver kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import get_engine
from repro.core.addressing import prefix24
from repro.geo.coordinates import GeoPoint
from repro.measure.records import Dataset, ExperimentRecord, RESOLVER_KINDS


@dataclass
class LdnsPairRow:
    """One carrier's row of Table 3."""

    carrier: str
    client_addresses: int
    external_addresses: int
    pairs: int
    #: Measurement-weighted mean of per-client-resolver max-share.
    consistency_pct: float


def ldns_pair_table(dataset: Dataset) -> List[LdnsPairRow]:
    """Compute Table 3 from resolver-identification records."""
    engine = get_engine(dataset)

    def compute() -> List[LdnsPairRow]:
        rows = []
        for carrier, pair_counts in sorted(engine.ldns_pairs.items()):
            clients = {client for client, _ in pair_counts}
            externals = {external for _, external in pair_counts}
            consistency = _pairing_consistency(pair_counts)
            rows.append(
                LdnsPairRow(
                    carrier=carrier,
                    client_addresses=len(clients),
                    external_addresses=len(externals),
                    pairs=len(pair_counts),
                    consistency_pct=consistency * 100.0,
                )
            )
        return rows

    return engine.cached(("ldns_pair_table",), compute)


def ldns_pair_table_reference(dataset: Dataset) -> List[LdnsPairRow]:
    """The original record walk (oracle for :func:`ldns_pair_table`)."""
    rows = []
    for carrier, records in sorted(dataset.by_carrier().items()):
        pair_counts: Dict[Tuple[str, str], int] = {}
        for record in records:
            identification = record.resolver_id("local")
            if identification is None or not identification.observed_external_ip:
                continue
            key = (
                identification.configured_ip,
                identification.observed_external_ip,
            )
            pair_counts[key] = pair_counts.get(key, 0) + 1
        if not pair_counts:
            continue
        clients = {client for client, _ in pair_counts}
        externals = {external for _, external in pair_counts}
        consistency = _pairing_consistency(pair_counts)
        rows.append(
            LdnsPairRow(
                carrier=carrier,
                client_addresses=len(clients),
                external_addresses=len(externals),
                pairs=len(pair_counts),
                consistency_pct=consistency * 100.0,
            )
        )
    return rows


def _pairing_consistency(pair_counts: Dict[Tuple[str, str], int]) -> float:
    """Measurement-weighted max-share consistency.

    A client resolver load-balanced evenly across two externals scores
    0.5, matching the paper's definition.
    """
    by_client: Dict[str, Dict[str, int]] = {}
    for (client, external), count in pair_counts.items():
        by_client.setdefault(client, {})[external] = count
    weighted = 0.0
    total = 0
    for externals in by_client.values():
        volume = sum(externals.values())
        weighted += max(externals.values()) / volume * volume
        total += volume
    return weighted / total if total else 0.0


@dataclass
class ResolverTimeline:
    """A device's external-resolver history (Figs 8, 9, 12)."""

    device_id: str
    carrier: str
    resolver_kind: str
    #: (time, resolver_ip) in time order.
    observations: List[Tuple[float, str]] = field(default_factory=list)

    def enumerated_ips(self) -> List[Tuple[float, int]]:
        """(time, index) with indices assigned by first appearance."""
        order: Dict[str, int] = {}
        series = []
        for at, ip in self.observations:
            if ip not in order:
                order[ip] = len(order) + 1
            series.append((at, order[ip]))
        return series

    def enumerated_prefixes(self) -> List[Tuple[float, int]]:
        """(time, index) over /24 prefixes, first-appearance order."""
        order: Dict[str, int] = {}
        series = []
        for at, ip in self.observations:
            block = prefix24(ip)
            if block not in order:
                order[block] = len(order) + 1
            series.append((at, order[block]))
        return series

    def unique_ips(self) -> int:
        """Distinct resolver addresses seen."""
        return len({ip for _, ip in self.observations})

    def unique_prefixes(self) -> int:
        """Distinct /24s seen."""
        return len({prefix24(ip) for _, ip in self.observations})

    def changes(self) -> int:
        """Number of consecutive-observation resolver changes."""
        changes = 0
        previous: Optional[str] = None
        for _, ip in self.observations:
            if previous is not None and ip != previous:
                changes += 1
            previous = ip
        return changes


def resolver_timeline(
    dataset: Dataset,
    device_id: str,
    resolver_kind: str = "local",
    within_km_of: Optional[GeoPoint] = None,
    radius_km: float = 10.0,
) -> ResolverTimeline:
    """One device's external-resolver timeline.

    ``within_km_of`` reproduces Fig 9's static-client filter: only
    experiments within ``radius_km`` of the given centroid count.
    """
    engine = get_engine(dataset)

    def compute() -> ResolverTimeline:
        rows = engine.device_obs.get(device_id, [])
        carrier = rows[0][4] if rows else ""
        timeline = ResolverTimeline(
            device_id=device_id, carrier=carrier, resolver_kind=resolver_kind
        )
        for started_at, latitude, longitude, externals, _ in rows:
            if within_km_of is not None:
                position = GeoPoint(latitude, longitude)
                if position.distance_km(within_km_of) > radius_km:
                    continue
            external = externals.get(resolver_kind)
            if external is None:
                continue
            timeline.observations.append((started_at, external))
        return timeline

    centroid = (
        (within_km_of.latitude, within_km_of.longitude)
        if within_km_of is not None
        else None
    )
    return engine.cached(
        ("resolver_timeline", device_id, resolver_kind, centroid, radius_km),
        compute,
    )


def resolver_timeline_reference(
    dataset: Dataset,
    device_id: str,
    resolver_kind: str = "local",
    within_km_of: Optional[GeoPoint] = None,
    radius_km: float = 10.0,
) -> ResolverTimeline:
    """The original record walk (oracle for :func:`resolver_timeline`)."""
    records = dataset.by_device().get(device_id, [])
    carrier = records[0].carrier if records else ""
    timeline = ResolverTimeline(
        device_id=device_id, carrier=carrier, resolver_kind=resolver_kind
    )
    for record in records:
        if within_km_of is not None:
            position = GeoPoint(record.latitude, record.longitude)
            if position.distance_km(within_km_of) > radius_km:
                continue
        identification = record.resolver_id(resolver_kind)
        if identification is None or not identification.observed_external_ip:
            continue
        timeline.observations.append(
            (record.started_at, identification.observed_external_ip)
        )
    return timeline


def device_location_centroid(records: List[ExperimentRecord]) -> Optional[GeoPoint]:
    """Mean reported position of a device's experiments."""
    if not records:
        return None
    lat = sum(record.latitude for record in records) / len(records)
    lon = sum(record.longitude for record in records) / len(records)
    return GeoPoint(lat, lon)


@dataclass
class ResolverCountRow:
    """One (carrier, resolver kind) cell of Table 5."""

    carrier: str
    resolver_kind: str
    unique_ips: int
    unique_prefixes: int


def unique_resolver_counts(dataset: Dataset) -> List[ResolverCountRow]:
    """Table 5: distinct external resolver IPs and /24s per provider."""
    engine = get_engine(dataset)

    def compute() -> List[ResolverCountRow]:
        rows = []
        for (carrier, kind), addresses in sorted(engine.id_sets.items()):
            if kind not in RESOLVER_KINDS:
                continue
            rows.append(
                ResolverCountRow(
                    carrier=carrier,
                    resolver_kind=kind,
                    unique_ips=len(addresses),
                    unique_prefixes=len({prefix24(ip) for ip in addresses}),
                )
            )
        return rows

    return engine.cached(("unique_resolver_counts",), compute)


def unique_resolver_counts_reference(dataset: Dataset) -> List[ResolverCountRow]:
    """The original record walk (oracle for :func:`unique_resolver_counts`)."""
    seen: Dict[Tuple[str, str], set] = {}
    for record in dataset:
        for kind in RESOLVER_KINDS:
            identification = record.resolver_id(kind)
            if identification is None or not identification.observed_external_ip:
                continue
            seen.setdefault((record.carrier, kind), set()).add(
                identification.observed_external_ip
            )
    rows = []
    for (carrier, kind), addresses in sorted(seen.items()):
        rows.append(
            ResolverCountRow(
                carrier=carrier,
                resolver_kind=kind,
                unique_ips=len(addresses),
                unique_prefixes=len({prefix24(ip) for ip in addresses}),
            )
        )
    return rows
