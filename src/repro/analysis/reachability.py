"""External reachability of cellular resolvers (Table 4, Sec 4.4).

The paper launched pings and traceroutes *from a university network*
toward every external-facing resolver its devices had discovered.  Only
Verizon's and AT&T's answered pings in any number; none answered
traceroutes — cellular opaqueness extends to the DNS infrastructure.

This module re-runs that campaign against the simulated Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.engine import get_engine
from repro.core.rng import RandomStream
from repro.measure.records import Dataset


@dataclass
class ReachabilityRow:
    """One carrier's row of Table 4."""

    carrier: str
    total: int
    ping_responsive: int
    traceroute_responsive: int

    @property
    def ping_fraction(self) -> float:
        """Share of resolvers answering external pings."""
        return self.ping_responsive / self.total if self.total else 0.0


def observed_external_resolvers(dataset: Dataset) -> Dict[str, List[str]]:
    """External resolver addresses discovered per carrier."""
    engine = get_engine(dataset)
    return engine.cached(
        ("observed_external_resolvers",),
        lambda: {
            carrier: sorted(ips)
            for carrier, ips in engine.observed_externals.items()
        },
    )


def observed_external_resolvers_reference(
    dataset: Dataset,
) -> Dict[str, List[str]]:
    """The original record walk (oracle for the engine path)."""
    seen: Dict[str, set] = {}
    for record in dataset:
        identification = record.resolver_id("local")
        if identification is None or not identification.observed_external_ip:
            continue
        seen.setdefault(record.carrier, set()).add(
            identification.observed_external_ip
        )
    return {carrier: sorted(ips) for carrier, ips in seen.items()}


def probe_external_reachability(
    world,
    dataset: Dataset,
    stream: Optional[RandomStream] = None,
    resolvers: Optional[Dict[str, List[str]]] = None,
) -> List[ReachabilityRow]:
    """Table 4: probe each discovered resolver from the university vantage.

    ``resolvers`` overrides the discovered per-carrier address lists
    (the regeneration suite passes the reference walk's result when
    exercising the oracle path).
    """
    if stream is None:
        stream = world.rng.stream("reachability")
    if resolvers is None:
        resolvers = observed_external_resolvers(dataset)
    rows: List[ReachabilityRow] = []
    transport = world.transport
    for carrier, addresses in sorted(resolvers.items()):
        ping_ok = 0
        traceroute_ok = 0
        for address in addresses:
            origin = world.vantage.origin(stream)
            # Analysis re-probes pass no ``probe`` kind: the vantage is
            # outside every carrier, so fault scenarios never apply and
            # the draws match the pre-transport walk exactly.
            if transport.ping(origin, address, stream).delivered:
                ping_ok += 1
            result, _ = transport.traceroute(origin, address, stream)
            if result.reached:
                traceroute_ok += 1
        rows.append(
            ReachabilityRow(
                carrier=carrier,
                total=len(addresses),
                ping_responsive=ping_ok,
                traceroute_responsive=traceroute_ok,
            )
        )
    return rows
