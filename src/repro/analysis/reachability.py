"""External reachability of cellular resolvers (Table 4, Sec 4.4).

The paper launched pings and traceroutes *from a university network*
toward every external-facing resolver its devices had discovered.  Only
Verizon's and AT&T's answered pings in any number; none answered
traceroutes — cellular opaqueness extends to the DNS infrastructure.

This module re-runs that campaign against the simulated Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.rng import RandomStream
from repro.measure.records import Dataset


@dataclass
class ReachabilityRow:
    """One carrier's row of Table 4."""

    carrier: str
    total: int
    ping_responsive: int
    traceroute_responsive: int

    @property
    def ping_fraction(self) -> float:
        """Share of resolvers answering external pings."""
        return self.ping_responsive / self.total if self.total else 0.0


def observed_external_resolvers(dataset: Dataset) -> Dict[str, List[str]]:
    """External resolver addresses discovered per carrier."""
    seen: Dict[str, set] = {}
    for record in dataset:
        identification = record.resolver_id("local")
        if identification is None or not identification.observed_external_ip:
            continue
        seen.setdefault(record.carrier, set()).add(
            identification.observed_external_ip
        )
    return {carrier: sorted(ips) for carrier, ips in seen.items()}


def probe_external_reachability(
    world,
    dataset: Dataset,
    stream: Optional[RandomStream] = None,
) -> List[ReachabilityRow]:
    """Table 4: probe each discovered resolver from the university vantage."""
    if stream is None:
        stream = world.rng.stream("reachability")
    rows: List[ReachabilityRow] = []
    for carrier, addresses in sorted(observed_external_resolvers(dataset).items()):
        ping_ok = 0
        traceroute_ok = 0
        for address in addresses:
            origin = world.vantage.origin(stream)
            if world.internet.measure_rtt(origin, address, stream) is not None:
                ping_ok += 1
            result = world.internet.traceroute(origin, address, stream)
            if result.reached:
                traceroute_ok += 1
        rows.append(
            ReachabilityRow(
                carrier=carrier,
                total=len(addresses),
                ping_responsive=ping_ok,
                traceroute_responsive=traceroute_ok,
            )
        )
    return rows
