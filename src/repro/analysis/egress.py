"""Egress-point identification from device traceroutes (Sec 5.2).

The paper counts egress points by finding, in each device traceroute,
the first hop whose address lies *outside* the operator's network and
taking the previous responding hop as the egress router.  The analysis
here replicates that, using an IP -> owner predicate in place of whois.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.analysis.engine import get_engine
from repro.measure.records import Dataset

#: Given a carrier key and an address, says whether the carrier owns it.
OwnershipOracle = Callable[[str, str], bool]


@dataclass
class EgressCount:
    """Distinct egress points observed for one carrier."""

    carrier: str
    egress_ips: Set[str] = field(default_factory=set)
    traceroutes_used: int = 0

    @property
    def count(self) -> int:
        """Number of distinct egress routers seen."""
        return len(self.egress_ips)


def egress_ip_of_traceroute(
    carrier: str, hops: List[List[object]], owns: OwnershipOracle
) -> Optional[str]:
    """The paper's rule applied to one traceroute's hops.

    ``hops`` are (ttl, ip, rtt) triples; unresponsive hops carry None.
    Returns the last in-network responding hop before the first
    out-of-network hop.
    """
    previous_in_network: Optional[str] = None
    for _, ip, _ in hops:
        if ip is None:
            continue
        if owns(carrier, str(ip)):
            previous_in_network = str(ip)
            continue
        # First hop outside the operator's network.
        return previous_in_network
    return None


def count_egress_points(
    dataset: Dataset, owns: OwnershipOracle
) -> Dict[str, EgressCount]:
    """Egress counts per carrier over all external traceroutes."""
    engine = get_engine(dataset)
    counts: Dict[str, EgressCount] = {}
    for carrier, hops in engine.egress_rows:
        egress = egress_ip_of_traceroute(carrier, hops, owns)
        entry = counts.setdefault(carrier, EgressCount(carrier=carrier))
        entry.traceroutes_used += 1
        if egress is not None:
            entry.egress_ips.add(egress)
    return counts


def count_egress_points_reference(
    dataset: Dataset, owns: OwnershipOracle
) -> Dict[str, EgressCount]:
    """The original record walk (oracle for :func:`count_egress_points`)."""
    counts: Dict[str, EgressCount] = {}
    for record in dataset:
        for traceroute in record.traceroutes:
            if traceroute.target_kind not in ("egress-discovery", "replica"):
                continue
            egress = egress_ip_of_traceroute(
                record.carrier, traceroute.hops, owns
            )
            entry = counts.setdefault(
                record.carrier, EgressCount(carrier=record.carrier)
            )
            entry.traceroutes_used += 1
            if egress is not None:
                entry.egress_ips.add(egress)
    return counts


def world_ownership_oracle(world) -> OwnershipOracle:
    """An ownership predicate backed by the simulated registries.

    Stands in for the whois lookups the paper used to classify hop
    addresses.
    """

    def owns(carrier: str, address: str) -> bool:
        operator = world.operators.get(carrier)
        if operator is None:
            return False
        return operator.owns_ip(address)

    return owns
