"""Statistical primitives: ECDFs, percentiles, distribution summaries.

Every figure in the paper is a CDF; :class:`ECDF` is the shared
representation the benches print and the tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of non-empty values."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def percent_increase(value: float, baseline: float) -> float:
    """Percent increase of ``value`` over ``baseline`` (0 when equal)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (value / baseline - 1.0) * 100.0


@dataclass
class ECDF:
    """An empirical CDF over a sample."""

    values: np.ndarray

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "ECDF":
        """Build from any iterable, dropping NaNs."""
        array = np.asarray(list(values), dtype=float)
        array = array[~np.isnan(array)]
        return cls(values=np.sort(array))

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def is_empty(self) -> bool:
        """True when no samples survived."""
        return self.values.size == 0

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        if self.is_empty:
            raise ValueError("ECDF of empty sample")
        return float(np.searchsorted(self.values, x, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1])."""
        if self.is_empty:
            raise ValueError("ECDF of empty sample")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def fraction_at_most(self, x: float) -> float:
        """Alias of :meth:`evaluate`, reads better in assertions."""
        return self.evaluate(x)

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.evaluate(x)

    def series(self, points: int = 50) -> List[tuple]:
        """(x, F(x)) pairs suitable for printing a figure's curve."""
        if self.is_empty:
            return []
        qs = np.linspace(0.0, 1.0, points)
        return [(float(np.quantile(self.values, q)), float(q)) for q in qs]

    def __repr__(self) -> str:
        if self.is_empty:
            return "ECDF(empty)"
        return (
            f"ECDF(n={len(self)}, p50={self.median:.1f}, "
            f"p90={self.quantile(0.9):.1f})"
        )


@dataclass
class DistributionSummary:
    """Headline numbers for one distribution."""

    count: int
    mean: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float

    def row(self) -> List[float]:
        """Values in report-column order."""
        return [
            self.count,
            self.mean,
            self.p10,
            self.p25,
            self.median,
            self.p75,
            self.p90,
            self.p99,
        ]


def summarize(values: Iterable[float]) -> Optional[DistributionSummary]:
    """Summary of a sample, or None when it is empty."""
    array = np.asarray(list(values), dtype=float)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return None
    return DistributionSummary(
        count=int(array.size),
        mean=float(array.mean()),
        p10=float(np.percentile(array, 10)),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
    )


def group_ecdfs(samples: Dict[str, Iterable[float]]) -> Dict[str, ECDF]:
    """ECDFs per group, dropping empty groups."""
    result = {}
    for key, values in samples.items():
        ecdf = ECDF.from_values(values)
        if not ecdf.is_empty:
            result[key] = ecdf
    return result
