"""Statistical primitives: ECDFs, percentiles, distribution summaries.

Every figure in the paper is a CDF; :class:`ECDF` is the shared
representation the benches print and the tests assert against.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def is_measured(value: Optional[float]) -> bool:
    """Whether a probe yielded a measurement (a delivered outcome).

    The explicit predicate for what used to be scattered ``is None`` /
    NaN sniffing: undelivered probes are recorded as ``None`` (pings,
    HTTP) or NaN (resolutions) on the wire, and analyses must treat the
    two spellings identically.
    """
    return value is not None and value == value


def measured_mask(array: np.ndarray) -> np.ndarray:
    """Boolean mask of measured entries in a float array (NaN = failed)."""
    return ~np.isnan(array)


def drop_unmeasured(values: Iterable[Optional[float]]) -> List[float]:
    """Only the measured values, in order."""
    return [float(v) for v in values if is_measured(v)]


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of non-empty values."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def percent_increase(value: float, baseline: float) -> float:
    """Percent increase of ``value`` over ``baseline`` (0 when equal)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (value / baseline - 1.0) * 100.0


@dataclass
class ECDF:
    """An empirical CDF over a sample.

    The sample is sorted exactly once, at construction; every lookup
    (:meth:`evaluate`, :meth:`quantile`, :meth:`series`) is then served
    from the sorted list via :func:`bisect.bisect_right` or direct
    indexing — no per-call numpy dispatch.  :meth:`quantile` reproduces
    ``np.quantile``'s linear interpolation bit-for-bit (including its
    ``gamma >= 0.5`` lerp branch), which the property tests assert.
    """

    values: np.ndarray
    #: The same sample as a sorted list of Python floats (bisect input).
    _sorted: Optional[List[float]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "ECDF":
        """Build from any iterable, dropping unmeasured (NaN) entries."""
        data = sorted(v for v in map(float, values) if is_measured(v))
        return cls(values=np.asarray(data, dtype=float), _sorted=data)

    @property
    def _data(self) -> List[float]:
        """Sorted Python floats, derived lazily for hand-built instances."""
        if self._sorted is None:
            self._sorted = [float(v) for v in np.sort(self.values)]
        return self._sorted

    def __len__(self) -> int:
        return len(self._data)

    @property
    def is_empty(self) -> bool:
        """True when no samples survived."""
        return not self._data

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        data = self._data
        if not data:
            raise ValueError("ECDF of empty sample")
        return bisect_right(data, x) / len(data)

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), linear interpolation."""
        data = self._data
        if not data:
            raise ValueError("ECDF of empty sample")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        position = q * (len(data) - 1)
        lower = int(position)
        if lower >= len(data) - 1:
            return data[-1]
        gamma = position - lower
        a, b = data[lower], data[lower + 1]
        if gamma >= 0.5:
            return b - (b - a) * (1.0 - gamma)
        return a + (b - a) * gamma

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def fraction_at_most(self, x: float) -> float:
        """Alias of :meth:`evaluate`, reads better in assertions."""
        return self.evaluate(x)

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.evaluate(x)

    def series(self, points: int = 50) -> List[tuple]:
        """(x, F(x)) pairs suitable for printing a figure's curve."""
        if self.is_empty:
            return []
        if points <= 1:
            qs = [0.0] * max(points, 0)
        else:
            qs = [index / (points - 1) for index in range(points)]
        return [(self.quantile(q), q) for q in qs]

    def __repr__(self) -> str:
        if self.is_empty:
            return "ECDF(empty)"
        return (
            f"ECDF(n={len(self)}, p50={self.median:.1f}, "
            f"p90={self.quantile(0.9):.1f})"
        )


@dataclass
class DistributionSummary:
    """Headline numbers for one distribution."""

    count: int
    mean: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float

    def row(self) -> List[float]:
        """Values in report-column order."""
        return [
            self.count,
            self.mean,
            self.p10,
            self.p25,
            self.median,
            self.p75,
            self.p90,
            self.p99,
        ]


def summarize(values: Iterable[float]) -> Optional[DistributionSummary]:
    """Summary of a sample, or None when it is empty."""
    array = np.asarray(list(values), dtype=float)
    array = array[measured_mask(array)]
    if array.size == 0:
        return None
    return DistributionSummary(
        count=int(array.size),
        mean=float(array.mean()),
        p10=float(np.percentile(array, 10)),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
    )


def group_ecdfs(samples: Dict[str, Iterable[float]]) -> Dict[str, ECDF]:
    """ECDFs per group, dropping empty groups."""
    result = {}
    for key, values in samples.items():
        ecdf = ECDF.from_values(values)
        if not ecdf.is_empty:
            result[key] = ecdf
    return result
