"""Replica localization quality (Fig 2 and Fig 14).

Fig 2: for each user and domain, every replica server the user was ever
redirected to is scored as the percent increase of its mean HTTP latency
(time-to-first-byte) over the user's best-seen replica.  Users being
"consistently directed towards replica servers with latencies 100%
greater than other existing replicas" is the paper's headline motivation.

Fig 14: per experiment and domain, the replicas returned through a
public resolver are compared with those returned through the cellular
resolver, both aggregated by /24; equal prefixes score 0, otherwise the
percent difference of the two replica sets' measured latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import get_engine
from repro.analysis.stats import ECDF
from repro.core.addressing import prefix24
from repro.measure.records import Dataset


@dataclass
class ReplicaDifferentials:
    """Fig 2 data for one carrier (optionally one domain)."""

    carrier: str
    domain: Optional[str]
    #: Percent increases, one entry per (user, replica) pair.
    per_replica: List[float] = field(default_factory=list)
    #: Percent increases weighted by access counts (per observation).
    per_access: List[float] = field(default_factory=list)

    def ecdf(self, weighted: bool = False) -> ECDF:
        """The CDF the figure plots."""
        return ECDF.from_values(self.per_access if weighted else self.per_replica)


def replica_differentials(
    dataset: Dataset,
    carrier: str,
    domain: Optional[str] = None,
    resolver_kind: Optional[str] = None,
    min_samples_per_replica: int = 1,
) -> ReplicaDifferentials:
    """Compute Fig 2's percent-increase population for one carrier.

    ``resolver_kind=None`` (the default) scores every replica the user
    was ever redirected to, whichever resolver returned it — the paper's
    "all replica servers seen" framing.  Pass ``"local"`` to restrict to
    cellular-DNS redirections.
    """
    engine = get_engine(dataset)

    def compute() -> ReplicaDifferentials:
        if domain is None and resolver_kind is None:
            # The default shape is pre-aggregated by the fused scan.
            samples = engine.http_samples.get(carrier, {})
        else:
            # Filtered variants rebuild from the flat per-carrier rows.
            samples = {}
            for (
                device,
                row_domain,
                row_kind,
                replica,
                ttfb,
            ) in engine.http_rows.get(carrier, []):
                if domain is not None and row_domain != domain:
                    continue
                if resolver_kind is not None and row_kind != resolver_kind:
                    continue
                samples.setdefault((device, row_domain), {}).setdefault(
                    replica, []
                ).append(ttfb)
        result = ReplicaDifferentials(carrier=carrier, domain=domain)
        for replica_samples in samples.values():
            means = {
                replica_ip: sum(values) / len(values)
                for replica_ip, values in replica_samples.items()
                if len(values) >= min_samples_per_replica
            }
            if len(means) < 2:
                continue
            best = min(means.values())
            if best <= 0:
                continue
            for replica_ip, mean in means.items():
                increase = (mean / best - 1.0) * 100.0
                result.per_replica.append(increase)
                result.per_access.extend(
                    [increase] * len(replica_samples[replica_ip])
                )
        return result

    return engine.cached(
        (
            "replica_differentials",
            carrier,
            domain,
            resolver_kind,
            min_samples_per_replica,
        ),
        compute,
    )


def replica_differentials_reference(
    dataset: Dataset,
    carrier: str,
    domain: Optional[str] = None,
    resolver_kind: Optional[str] = None,
    min_samples_per_replica: int = 1,
) -> ReplicaDifferentials:
    """The original record walk (oracle for :func:`replica_differentials`)."""
    # (device, domain) -> replica_ip -> [ttfb samples]
    samples: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for record in dataset.experiments_for(carrier):
        for http in record.http_gets:
            if http.ttfb_ms is None:
                continue
            if domain is not None and http.domain != domain:
                continue
            if resolver_kind is not None and http.resolver_kind != resolver_kind:
                continue
            key = (record.device_id, http.domain)
            samples.setdefault(key, {}).setdefault(http.replica_ip, []).append(
                http.ttfb_ms
            )
    result = ReplicaDifferentials(carrier=carrier, domain=domain)
    for replica_samples in samples.values():
        means = {
            replica_ip: sum(values) / len(values)
            for replica_ip, values in replica_samples.items()
            if len(values) >= min_samples_per_replica
        }
        if len(means) < 2:
            continue
        best = min(means.values())
        if best <= 0:
            continue
        for replica_ip, mean in means.items():
            increase = (mean / best - 1.0) * 100.0
            result.per_replica.append(increase)
            result.per_access.extend(
                [increase] * len(replica_samples[replica_ip])
            )
    return result


@dataclass
class PublicReplicaComparison:
    """Fig 14 data for one carrier and public resolver kind."""

    carrier: str
    public_kind: str
    #: Percent change of public-resolver replica latency vs local's
    #: (0 when the /24-aggregated replica sets match).
    percent_changes: List[float] = field(default_factory=list)

    def ecdf(self) -> ECDF:
        """The CDF the figure plots."""
        return ECDF.from_values(self.percent_changes)

    def fraction_equal(self) -> float:
        """Share of comparisons where both resolvers tie (same /24s)."""
        if not self.percent_changes:
            return 0.0
        ties = sum(1 for value in self.percent_changes if value == 0.0)
        return ties / len(self.percent_changes)

    def fraction_public_not_worse(self) -> float:
        """Share where the public choice is equal or better (<= 0)."""
        if not self.percent_changes:
            return 0.0
        good = sum(1 for value in self.percent_changes if value <= 0.0)
        return good / len(self.percent_changes)


def public_replica_comparison(
    dataset: Dataset,
    carrier: str,
    public_kind: str = "google",
) -> PublicReplicaComparison:
    """Compute Fig 14's relative replica performance for one carrier.

    For each experiment and domain: take the replica /24s returned by the
    local resolver and by the public one.  Identical /24 sets score 0.
    Otherwise each set's latency is the mean measured TTFB of its
    replicas in this experiment, and the score is the percent change of
    the public set over the local set.
    """
    engine = get_engine(dataset)

    def compute() -> PublicReplicaComparison:
        result = PublicReplicaComparison(
            carrier=carrier, public_kind=public_kind
        )
        for ttfb_of, by_domain in engine.fig14_rows.get(carrier, []):
            for domain, by_kind in by_domain.items():
                local = by_kind.get("local")
                public = by_kind.get(public_kind)
                if not local or not public:
                    continue
                local_blocks = {prefix24(ip) for ip in local}
                public_blocks = {prefix24(ip) for ip in public}
                if local_blocks == public_blocks:
                    result.percent_changes.append(0.0)
                    continue
                local_latency = _set_latency(local, ttfb_of)
                public_latency = _set_latency(public, ttfb_of)
                if local_latency is None or public_latency is None:
                    continue
                result.percent_changes.append(
                    (public_latency / local_latency - 1.0) * 100.0
                )
        return result

    return engine.cached(
        ("public_replica_comparison", carrier, public_kind), compute
    )


def public_replica_comparison_reference(
    dataset: Dataset,
    carrier: str,
    public_kind: str = "google",
) -> PublicReplicaComparison:
    """The original record walk (oracle for :func:`public_replica_comparison`)."""
    result = PublicReplicaComparison(carrier=carrier, public_kind=public_kind)
    for record in dataset.experiments_for(carrier):
        ttfb_of: Dict[str, List[float]] = {}
        for http in record.http_gets:
            if http.ttfb_ms is not None:
                ttfb_of.setdefault(http.replica_ip, []).append(http.ttfb_ms)
        by_domain: Dict[str, Dict[str, List[str]]] = {}
        for resolution in record.resolutions:
            if resolution.attempt != 1 or not resolution.addresses:
                continue
            by_domain.setdefault(resolution.domain, {})[
                resolution.resolver_kind
            ] = resolution.addresses
        for domain, by_kind in by_domain.items():
            local = by_kind.get("local")
            public = by_kind.get(public_kind)
            if not local or not public:
                continue
            local_blocks = {prefix24(ip) for ip in local}
            public_blocks = {prefix24(ip) for ip in public}
            if local_blocks == public_blocks:
                result.percent_changes.append(0.0)
                continue
            local_latency = _set_latency(local, ttfb_of)
            public_latency = _set_latency(public, ttfb_of)
            if local_latency is None or public_latency is None:
                continue
            result.percent_changes.append(
                (public_latency / local_latency - 1.0) * 100.0
            )
    return result


def _set_latency(
    addresses: List[str], ttfb_of: Dict[str, List[float]]
) -> Optional[float]:
    values: List[float] = []
    for address in addresses:
        values.extend(ttfb_of.get(address, []))
    if not values:
        return None
    return sum(values) / len(values)
