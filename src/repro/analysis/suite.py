"""Full table+figure regeneration as one timed, cacheable artifact.

``regenerate_report`` renders every reproduced table (1-5) and figure
(2-14 summaries and quantile grids) into a single text document — the
complete analysis output of a study.  It exists for three reasons:

* **One entry point** for the analysis fast path: the whole document is
  produced from the fused engine's single scan, so "regenerate
  everything" costs one pass over the dataset plus rendering.
* **An executable identity check**: ``reference=True`` renders the same
  document through the original per-function record walks (the
  ``*_reference`` oracles).  The two texts must be byte-identical —
  ``measure.bench.bench_analysis`` and the ``bench_check`` gate assert
  it on every run.
* **A cacheable unit**: the rendered text is pure in the dataset, so a
  :class:`~repro.analysis.result_cache.AnalysisResultCache` keyed by
  ``Dataset.content_hash`` replays it without recomputation.

Table 4's external probes draw from a *fresh* deterministic stream per
regeneration (not the world registry's shared stateful stream), so
repeated regenerations — fused, reference, cached-or-not — render
identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.analysis import (
    cache,
    consistency,
    egress,
    failures,
    latency,
    localization,
    longitudinal,
    reachability,
    similarity,
)
from repro.analysis.reachability import probe_external_reachability
from repro.analysis.report import format_cdfs, format_table
from repro.analysis.result_cache import AnalysisResultCache
from repro.core.rng import RandomStream

#: Artifact key the full report is cached under.
REPORT_KEY = "full-report"

#: Fig 10's default domain (the study's similarity example).
SIMILARITY_DOMAIN = "www.buzzfeed.com"

#: The analysis primitives the suite composes.  The fused set reads the
#: single-pass engine; the reference set replays the original walks.
#: Both produce byte-identical renderings.
_FUSED: Dict[str, Callable] = {
    "resolution_times": latency.resolution_times,
    "resolution_times_by_technology": latency.resolution_times_by_technology,
    "resolution_times_by_kind": latency.resolution_times_by_kind,
    "resolver_ping_latencies": latency.resolver_ping_latencies,
    "public_resolver_pings": latency.public_resolver_pings,
    "cache_comparison": cache.cache_comparison,
    "per_domain_miss_rates": cache.per_domain_miss_rates,
    "ldns_pair_table": consistency.ldns_pair_table,
    "unique_resolver_counts": consistency.unique_resolver_counts,
    "resolver_timeline": consistency.resolver_timeline,
    "replica_differentials": localization.replica_differentials,
    "public_replica_comparison": localization.public_replica_comparison,
    "similarity_study": similarity.similarity_study,
    "count_egress_points": egress.count_egress_points,
    "resolver_discovery_curve": longitudinal.resolver_discovery_curve,
    "observed_external_resolvers": reachability.observed_external_resolvers,
    "failure_accounting": failures.failure_accounting,
}

_REFERENCE: Dict[str, Callable] = {
    "resolution_times": latency.resolution_times_reference,
    "resolution_times_by_technology":
        latency.resolution_times_by_technology_reference,
    "resolution_times_by_kind": latency.resolution_times_by_kind_reference,
    "resolver_ping_latencies": latency.resolver_ping_latencies_reference,
    "public_resolver_pings": latency.public_resolver_pings_reference,
    "cache_comparison": cache.cache_comparison_reference,
    "per_domain_miss_rates": cache.per_domain_miss_rates_reference,
    "ldns_pair_table": consistency.ldns_pair_table_reference,
    "unique_resolver_counts": consistency.unique_resolver_counts_reference,
    "resolver_timeline": consistency.resolver_timeline_reference,
    "replica_differentials": localization.replica_differentials_reference,
    "public_replica_comparison":
        localization.public_replica_comparison_reference,
    "similarity_study": similarity.similarity_study_reference,
    "count_egress_points": egress.count_egress_points_reference,
    "resolver_discovery_curve":
        longitudinal.resolver_discovery_curve_reference,
    "observed_external_resolvers":
        reachability.observed_external_resolvers_reference,
    "failure_accounting": failures.failure_accounting_reference,
}

US_CARRIERS = ("att", "sprint", "tmobile", "verizon")
SK_CARRIERS = ("skt", "lgu")


@dataclass
class RegeneratedReport:
    """One full regeneration: the text plus where the time went."""

    text: str
    dataset_hash: str
    tables_s: float
    figures_s: float
    #: True when the text came out of the result cache untouched.
    cached: bool = False


def regenerate_report(
    study,
    reference: bool = False,
    cache_store: Optional[AnalysisResultCache] = None,
) -> RegeneratedReport:
    """Render every table and figure of a study as one text document.

    ``reference=True`` routes through the original per-function walks
    (never cached — the oracle must actually run).  With a cache, an
    unchanged dataset replays the stored text after one content hash.
    """
    dataset = study.dataset
    dataset_hash = dataset.content_hash()
    key = REPORT_KEY + (":reference" if reference else "")
    if cache_store is not None and not reference:
        stored = cache_store.get(dataset_hash, key)
        if stored is not None:
            return RegeneratedReport(
                text=stored,
                dataset_hash=dataset_hash,
                tables_s=0.0,
                figures_s=0.0,
                cached=True,
            )
    functions = _REFERENCE if reference else _FUSED

    started = perf_counter()
    sections = _render_tables(study, functions)
    tables_s = perf_counter() - started

    started = perf_counter()
    sections.extend(_render_figures(study, functions))
    figures_s = perf_counter() - started

    text = "\n\n".join(sections) + "\n"
    if cache_store is not None and not reference:
        cache_store.put(dataset_hash, key, text)
        cache_store.save()
    return RegeneratedReport(
        text=text,
        dataset_hash=dataset_hash,
        tables_s=tables_s,
        figures_s=figures_s,
    )


# -- tables -------------------------------------------------------------------


def _render_tables(study, functions: Dict[str, Callable]) -> List[str]:
    dataset = study.dataset
    sections = [study.render_table1()]

    sections.append(
        format_table(
            ["Domain", "CDN", "Edge", "TTL"],
            study.table2_domains(),
            title="Table 2: measured domains",
        )
    )

    rows3 = [
        (
            study.world.operators[row.carrier].display_name,
            row.client_addresses,
            row.external_addresses,
            row.pairs,
            f"{row.consistency_pct:.1f}",
        )
        for row in functions["ldns_pair_table"](dataset)
    ]
    sections.append(
        format_table(
            ["Provider", "Client", "External", "Pairs", "Consistency %"],
            rows3,
            title="Table 3: LDNS pairs seen by mobile clients",
        )
    )

    # A fresh deterministic stream per regeneration: the registry's
    # shared "reachability" stream is stateful, and this document must
    # render identically however many times it is regenerated.
    stream = RandomStream(study.world.rng.master_seed, "analysis-suite.t4")
    rows4 = [
        (row.carrier, row.total, row.ping_responsive, row.traceroute_responsive)
        for row in probe_external_reachability(
            study.world,
            dataset,
            stream=stream,
            resolvers=functions["observed_external_resolvers"](dataset),
        )
    ]
    sections.append(
        format_table(
            ["carrier", "resolvers", "ping ok", "traceroute ok"],
            rows4,
            title="Table 4: external reachability",
        )
    )

    rows5 = [
        (row.carrier, row.resolver_kind, row.unique_ips, row.unique_prefixes)
        for row in functions["unique_resolver_counts"](dataset)
    ]
    sections.append(
        format_table(
            ["carrier", "resolver", "unique IPs", "unique /24s"],
            rows5,
            title="Table 5: unique resolver addresses per provider",
        )
    )

    failure_rows = [
        (
            row.carrier,
            row.resolutions,
            row.resolution_failures,
            row.fault_timeouts,
            row.fault_losses,
            row.pings,
            row.pings_unanswered,
            row.http_gets,
            row.http_failures,
            row.retries,
        )
        for row in functions["failure_accounting"](dataset)
    ]
    sections.append(
        format_table(
            ["carrier", "resolutions", "failed", "fault t/o", "fault loss",
             "pings", "unanswered", "http", "failed", "retries"],
            failure_rows,
            title="Failure accounting: delivery outcomes per carrier",
        )
    )
    return sections


# -- figures ------------------------------------------------------------------


def _render_figures(study, functions: Dict[str, Callable]) -> List[str]:
    dataset = study.dataset
    carriers = [key for key in study.world.operators]
    sections: List[str] = []

    sections.append(
        format_cdfs(
            {
                carrier: functions["replica_differentials"](
                    dataset, carrier
                ).ecdf()
                for carrier in carriers
            },
            title="Fig 2: replica latency increase over best-seen",
            unit="%",
        )
    )

    for carrier in carriers:
        sections.append(
            format_cdfs(
                functions["resolution_times_by_technology"](dataset, carrier),
                title=f"Fig 3 [{carrier}]: resolution time by technology",
            )
        )

    for carrier in carriers:
        sections.append(
            format_cdfs(
                functions["resolver_ping_latencies"](dataset, carrier),
                title=f"Fig 4 [{carrier}]: resolver pings",
            )
        )

    sections.append(
        format_cdfs(
            {
                carrier: functions["resolution_times"](dataset, carrier)
                for carrier in US_CARRIERS
            },
            title="Fig 5: DNS resolution time, US carriers",
        )
    )
    sections.append(
        format_cdfs(
            {
                carrier: functions["resolution_times"](dataset, carrier)
                for carrier in SK_CARRIERS
            },
            title="Fig 6: DNS resolution time, SK carriers",
        )
    )

    comparison = functions["cache_comparison"](dataset, list(US_CARRIERS))
    fig7 = [
        format_cdfs(
            {"first": comparison.first, "second": comparison.second},
            title="Fig 7: back-to-back lookups, US carriers",
        ),
        f"Fig 7: first-lookup cache miss rate "
        f"{comparison.miss_rate() * 100:.0f}%",
        format_table(
            ["domain", "miss rate"],
            [
                (domain, f"{rate * 100:.1f}%")
                for domain, rate in functions["per_domain_miss_rates"](dataset)
            ],
            title="Fig 7b: per-domain first-lookup miss rates",
        ),
    ]
    sections.extend(fig7)

    sections.append(
        _churn_table(
            dataset, functions, "local",
            "Fig 8: external-resolver churn (busiest device per carrier)",
        )
    )
    sections.append(
        _churn_table(
            dataset, functions, "google",
            "Fig 12: Google resolver churn (busiest device per carrier)",
        )
    )

    fig10_rows = []
    for carrier in carriers:
        result = functions["similarity_study"](
            dataset, SIMILARITY_DOMAIN, carrier
        )
        fig10_rows.append(
            (
                carrier,
                len(result.same_prefix),
                len(result.different_prefix),
                f"{result.median_same_prefix():.2f}",
                f"{result.fraction_disjoint() * 100:.0f}%",
            )
        )
    sections.append(
        format_table(
            ["carrier", "same-/24 pairs", "diff-/24 pairs",
             "same-/24 median", "diff-/24 disjoint"],
            fig10_rows,
            title=f"Fig 10: replica-map similarity ({SIMILARITY_DOMAIN})",
        )
    )

    for carrier in carriers:
        sections.append(
            format_cdfs(
                functions["public_resolver_pings"](dataset, carrier),
                title=f"Fig 11 [{carrier}]: cellular vs public resolver pings",
            )
        )

    for carrier in carriers:
        sections.append(
            format_cdfs(
                functions["resolution_times_by_kind"](dataset, carrier),
                title=f"Fig 13 [{carrier}]: local vs public resolution",
            )
        )

    fig14_rows = []
    for carrier in carriers:
        result = functions["public_replica_comparison"](dataset, carrier)
        fig14_rows.append(
            (
                carrier,
                len(result.percent_changes),
                f"{result.fraction_equal() * 100:.0f}%",
                f"{result.fraction_public_not_worse() * 100:.0f}%",
            )
        )
    sections.append(
        format_table(
            ["carrier", "comparisons", "equal /24s", "public <= local"],
            fig14_rows,
            title="Fig 14: public-resolver replica parity (google)",
        )
    )

    owns = _ownership_oracle(study.world)
    counts = functions["count_egress_points"](dataset, owns)
    egress_rows = [
        (carrier, entry.traceroutes_used, entry.count)
        for carrier, entry in sorted(counts.items())
    ]
    discovery = [
        (
            carrier,
            functions["resolver_discovery_curve"](dataset, carrier).total,
        )
        for carrier in carriers
    ]
    sections.append(
        format_table(
            ["carrier", "traceroutes", "egress points"],
            egress_rows,
            title="Sec 5.2: egress points per carrier",
        )
    )
    sections.append(
        format_table(
            ["carrier", "distinct external resolvers"],
            discovery,
            title="Sec 4.5: resolver discovery totals",
        )
    )
    return sections


def _churn_table(
    dataset, functions: Dict[str, Callable], resolver_kind: str, title: str
) -> str:
    """Busiest-device timeline statistics per carrier (Figs 8/12)."""
    busiest: Dict[str, object] = {}
    for device_id in dataset.device_ids():
        timeline = functions["resolver_timeline"](
            dataset, device_id, resolver_kind
        )
        current = busiest.get(timeline.carrier)
        if current is None or len(timeline.observations) > len(
            current.observations
        ):
            busiest[timeline.carrier] = timeline
    rows = [
        (
            carrier,
            timeline.device_id,
            len(timeline.observations),
            timeline.unique_ips(),
            timeline.unique_prefixes(),
            timeline.changes(),
        )
        for carrier, timeline in sorted(busiest.items())
    ]
    return format_table(
        ["carrier", "device", "obs", "unique IPs", "unique /24s", "changes"],
        rows,
        title=title,
    )


def _ownership_oracle(world):
    from repro.analysis.egress import world_ownership_oracle

    return world_ownership_oracle(world)
