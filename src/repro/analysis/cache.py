"""Cache behaviour from back-to-back queries (Fig 7).

The experiment issues each local-resolver lookup twice in quick
succession.  The second query should hit the (just-populated) cache;
comparing the two distributions exposes how often the *first* was a
miss — the paper sees ~20% misses even for very popular names, thanks to
the short TTLs CDNs use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import merge as _heapq_merge
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import get_engine
from repro.analysis.stats import ECDF
from repro.measure.records import Dataset


@dataclass
class CacheComparison:
    """First- vs second-lookup distributions for a set of carriers."""

    carriers: List[str]
    first: ECDF
    second: ECDF
    #: Per-pair deltas (first - second), ms.
    deltas: List[float] = field(default_factory=list)

    def miss_rate(self, threshold_ms: float = 15.0) -> float:
        """Estimated first-lookup miss rate.

        A pair whose first lookup exceeds its second by more than
        ``threshold_ms`` is counted as a miss (the extra time is the
        upstream fetch).
        """
        if not self.deltas:
            return 0.0
        misses = sum(1 for delta in self.deltas if delta > threshold_ms)
        return misses / len(self.deltas)


def cache_comparison(
    dataset: Dataset,
    carriers: Optional[List[str]] = None,
    resolver_kind: str = "local",
) -> CacheComparison:
    """Fig 7: pair up attempts 1 and 2 of each (experiment, domain).

    Consumes the fused engine's per-record pair chunks; multi-carrier
    chunks are re-merged by experiment index so the delta list matches
    the dataset-order reference walk exactly.
    """
    if carriers is None:
        carriers = dataset.carriers()
    wanted = set(carriers)
    engine = get_engine(dataset)

    def compute() -> CacheComparison:
        streams = [
            chunks
            for carrier in dataset.carriers()
            if carrier in wanted
            for chunks in [engine.cache_chunks.get((carrier, resolver_kind))]
            if chunks
        ]
        if len(streams) == 1:
            chunks = streams[0]
        else:
            # Per-carrier chunk lists are each ascending in experiment
            # index; heapq.merge restores global dataset order.
            chunks = _heapq_merge(*streams)
        firsts: List[float] = []
        seconds: List[float] = []
        deltas: List[float] = []
        for _, chunk_firsts, chunk_seconds, chunk_deltas in chunks:
            firsts.extend(chunk_firsts)
            seconds.extend(chunk_seconds)
            deltas.extend(chunk_deltas)
        return CacheComparison(
            carriers=list(carriers),
            first=ECDF.from_values(firsts),
            second=ECDF.from_values(seconds),
            deltas=deltas,
        )

    return engine.cached(
        ("cache_comparison", tuple(carriers), resolver_kind), compute
    )


def cache_comparison_reference(
    dataset: Dataset,
    carriers: Optional[List[str]] = None,
    resolver_kind: str = "local",
) -> CacheComparison:
    """The original record walk (oracle for :func:`cache_comparison`)."""
    if carriers is None:
        carriers = dataset.carriers()
    wanted = set(carriers)
    firsts: List[float] = []
    seconds: List[float] = []
    deltas: List[float] = []
    if len(wanted) == 1:
        # Single-carrier figures hit the per-carrier index.
        records = dataset.experiments_for(next(iter(wanted)))
    else:
        records = [record for record in dataset if record.carrier in wanted]
    for record in records:
        pairs: Dict[str, Dict[int, float]] = {}
        for resolution in record.resolutions_via(resolver_kind):
            pairs.setdefault(resolution.domain, {})[resolution.attempt] = (
                resolution.resolution_ms
            )
        for by_attempt in pairs.values():
            if 1 in by_attempt:
                firsts.append(by_attempt[1])
            if 2 in by_attempt:
                seconds.append(by_attempt[2])
            if 1 in by_attempt and 2 in by_attempt:
                deltas.append(by_attempt[1] - by_attempt[2])
    return CacheComparison(
        carriers=list(carriers),
        first=ECDF.from_values(firsts),
        second=ECDF.from_values(seconds),
        deltas=deltas,
    )


def per_domain_miss_rates(
    dataset: Dataset, threshold_ms: float = 15.0
) -> List[Tuple[str, float]]:
    """(domain, estimated miss rate) across all carriers."""
    engine = get_engine(dataset)

    def compute() -> List[Tuple[str, float]]:
        rows = []
        for domain, deltas in sorted(engine.domain_deltas.items()):
            misses = sum(1 for delta in deltas if delta > threshold_ms)
            rows.append((domain, misses / len(deltas)))
        return rows

    return engine.cached(("per_domain_miss_rates", threshold_ms), compute)


def per_domain_miss_rates_reference(
    dataset: Dataset, threshold_ms: float = 15.0
) -> List[Tuple[str, float]]:
    """The original record walk (oracle for :func:`per_domain_miss_rates`)."""
    by_domain: Dict[str, List[float]] = {}
    for record in dataset:
        pairs: Dict[str, Dict[int, float]] = {}
        for resolution in record.resolutions_via("local"):
            pairs.setdefault(resolution.domain, {})[resolution.attempt] = (
                resolution.resolution_ms
            )
        for domain, by_attempt in pairs.items():
            if 1 in by_attempt and 2 in by_attempt:
                by_domain.setdefault(domain, []).append(
                    by_attempt[1] - by_attempt[2]
                )
    rows = []
    for domain, deltas in sorted(by_domain.items()):
        misses = sum(1 for delta in deltas if delta > threshold_ms)
        rows.append((domain, misses / len(deltas)))
    return rows
