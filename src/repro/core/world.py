"""World assembly: every substrate instantiated and wired together.

:func:`build_world` produces the complete simulated Internet the
measurement campaign runs against: transit backbone, university vantage,
origin + CDN + resolver-echo authorities, Google/OpenDNS anycast
services, and the six carrier networks.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdn.mapping import ResolverLocator
from repro.cdn.provider import (
    CDN_FOOTPRINTS,
    CDNProvider,
    build_cdn,
    build_origin_authorities,
)
from repro.cellnet.operator import CellularOperator
from repro.cellnet.presets import CarrierConfig, build_operator, default_carrier_configs
from repro.core.addressing import PrefixAllocator
from repro.core.asn import ASKind
from repro.core.backbone import ExternalVantage, TransitBackbone
from repro.core.faults import FaultScenario
from repro.core.internet import VirtualInternet
from repro.core.node import Host
from repro.core.rng import RngRegistry
from repro.core.transport import Transport
from repro.dns.authoritative import ResolverEchoAuthority, StaticAuthority
from repro.dns.public_dns import PublicDnsService, build_public_dns
from repro.dns.zone import ZoneDirectory
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import (
    ASIA_PACIFIC_CITIES,
    US_CITIES,
    city_named,
)

#: The controlled zone used for resolver identification (Sec 3.2), a
#: stand-in for the subdomain of the authors' research group site.
WHOAMI_ZONE = "whoami.aqualab-repro.net"

#: Anycast service addresses.
GOOGLE_DNS_IP = "8.8.8.8"
OPENDNS_IP = "208.67.222.222"

#: Google Public DNS operated ~30 distributed /24 resolver sites [9].
GOOGLE_CLUSTER_CITIES = [city.name for city in US_CITIES[:25]] + [
    "Tokyo",
    "Osaka",
    "Taipei",
    "Hong Kong",
    "Singapore",
]

#: OpenDNS ran a smaller footprint.
OPENDNS_CLUSTER_CITIES = [city.name for city in US_CITIES[:16]] + [
    "Tokyo",
    "Singapore",
]


@dataclass
class WorldConfig:
    """Knobs for world construction."""

    seed: int = 2014
    carriers: List[CarrierConfig] = field(default_factory=default_carrier_configs)
    google_instability: float = 0.18
    opendns_instability: float = 0.12
    public_warm_prob: float = 0.95
    #: Enable EDNS Client Subnet end-to-end (resolvers forward client
    #: /24s, CDNs map on them).  Off by default: the paper predates wide
    #: ECS deployment, and the baseline must match what it measured.
    ecs_enabled: bool = False
    #: Overrides forwarded to every CDN's MappingPolicy.
    cdn_mapping_overrides: Dict[str, object] = field(default_factory=dict)
    #: Force one A TTL on every CDN answer (cache ablations); None keeps
    #: the per-domain catalogue TTLs.
    cdn_a_ttl_override: Optional[int] = None
    #: Fault scenario the world's transport layer enforces.  None (and
    #: the bundled ``baseline``) mean fault-free: the campaign must then
    #: hash byte-identically to the pre-transport engine.  Scenarios are
    #: plain frozen dataclasses, so they survive the WorldConfig pickling
    #: that parallel campaign shards rebuild their worlds from.
    scenario: Optional[FaultScenario] = None

    def content_hash(self) -> str:
        """Stable digest of the configuration's content.

        Keys the world-snapshot cache: two configs with equal content
        hash build byte-identical worlds, so their workers can share one
        serialized snapshot.  Dataclass ``repr`` is deterministic over
        the field types a config holds (scalars, lists/dicts of frozen
        dataclasses), which keeps the key readable in debuggers.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()


@dataclass
class World:
    """Handles to everything the measurement layer needs."""

    config: WorldConfig
    rng: RngRegistry
    internet: VirtualInternet
    directory: ZoneDirectory
    backbone: TransitBackbone
    vantage: ExternalVantage
    operators: Dict[str, CellularOperator]
    cdns: Dict[str, CDNProvider]
    origin_authorities: List[StaticAuthority]
    echo_authority: ResolverEchoAuthority
    google_dns: PublicDnsService
    opendns: PublicDnsService
    #: The delivery layer every simulated packet crosses.
    transport: Transport
    #: The address allocator, kept so extensions (operator CDNs, extra
    #: vantage points) can claim further prefixes after construction.
    allocator: Optional[PrefixAllocator] = None
    #: Memoised /24 -> representative member address (see
    #: :meth:`canonical_resolver_anchor`); pure over the static host
    #: registry, so the memo can never make two lookups disagree.
    _block_anchors: Dict[str, str] = field(default_factory=dict, repr=False)

    def operator(self, key: str) -> CellularOperator:
        """Look a carrier up by key."""
        return self.operators[key]

    def public_service(self, kind: str) -> PublicDnsService:
        """The public DNS service behind a resolver kind label."""
        if kind == "google":
            return self.google_dns
        if kind == "opendns":
            return self.opendns
        raise KeyError(f"unknown public resolver kind {kind!r}")

    def replica_owner(self, ip: str) -> Optional[CDNProvider]:
        """Which CDN owns a replica address."""
        for provider in self.cdns.values():
            if provider.replica_by_ip(ip) is not None:
                return provider
        return None

    def locate_ip(self, ip: str) -> Optional[Tuple[GeoPoint, bool]]:
        """(location, is_cellular) of an address — the CDN's view.

        This is what stands in for the measurement infrastructure real
        CDNs run; the is_cellular bit is what degrades their estimate.
        Client-pool addresses (which only ever reach a CDN via EDNS
        Client Subnet) resolve to the egress region their /24 slice NATs
        through.
        """
        host = self.internet.host(ip)
        if host is not None:
            return host.location, host.asys.kind is ASKind.CELLULAR
        for operator in self.operators.values():
            location = operator.locate_client_ip(ip)
            if location is not None:
                return location, True
        return None

    def canonical_resolver_anchor(self, ip: str) -> str:
        """The /24's representative member — the CDN's measurement unit.

        CDN mapping policies group resolvers by /24 and measure each
        block once (Sec 5.1), so the block's location estimate must be a
        property of the block itself, never of whichever member queried
        first.  The representative is the numerically lowest registered
        host inside the /24 (deterministic over the static registry);
        addresses with no registered blockmates canonicalise to
        themselves.
        """
        from repro.core.addressing import ip_to_int, prefix24

        block = prefix24(ip)
        anchors = self._block_anchors
        representative = anchors.get(block)
        if representative is None:
            members = [
                host.ip
                for host in self.internet.hosts()
                if prefix24(host.ip) == block
            ]
            representative = min(members, key=ip_to_int) if members else ip
            anchors[block] = representative
        return representative


def _echo_authority(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    allocator: PrefixAllocator,
) -> ResolverEchoAuthority:
    """The research group's ADNS serving the whoami zone."""
    from repro.core.asn import AutonomousSystem, FirewallPolicy

    system = AutonomousSystem(
        asn=104,
        name="Aqualab Research ADNS",
        kind=ASKind.UNIVERSITY,
        firewall=FirewallPolicy(blocks_inbound=False),
    )
    internet.register_system(system)
    prefix = allocator.allocate24()
    system.add_prefix(prefix)
    host = Host(
        ip=prefix.host(53),
        name="adns.aqualab-repro.net",
        asys=system,
        location=city_named("Chicago").location,
        stack_latency_ms=0.4,
    )
    internet.register_host(host)
    authority = ResolverEchoAuthority(host=host, zone_apex=WHOAMI_ZONE)
    directory.register(WHOAMI_ZONE, authority)
    return authority


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Assemble the full simulated Internet."""
    config = config or WorldConfig()
    rng = RngRegistry(config.seed)
    internet = VirtualInternet()
    transport = Transport(internet, scenario=config.scenario)
    directory = ZoneDirectory()
    allocator = PrefixAllocator.parse("16.0.0.0/6")

    backbone = TransitBackbone.build(
        internet,
        US_CITIES + ASIA_PACIFIC_CITIES,
        allocator,
    )
    vantage = ExternalVantage.build(internet, allocator)
    origin_authorities = build_origin_authorities(internet, directory, allocator)
    echo_authority = _echo_authority(internet, directory, allocator)

    world = World(
        config=config,
        rng=rng,
        internet=internet,
        directory=directory,
        backbone=backbone,
        vantage=vantage,
        operators={},
        cdns={},
        origin_authorities=origin_authorities,
        echo_authority=echo_authority,
        google_dns=None,  # type: ignore[arg-type]  # filled below
        opendns=None,  # type: ignore[arg-type]
        transport=transport,
        allocator=allocator,
    )

    locator: ResolverLocator = world.locate_ip
    for key in CDN_FOOTPRINTS:
        world.cdns[key] = build_cdn(
            internet,
            directory,
            key,
            allocator,
            locator,
            seed=rng.stream("cdn", key).randint(0, 2**31),
            mapping_overrides=dict(config.cdn_mapping_overrides),
            a_ttl_override=config.cdn_a_ttl_override,
            anchor_canon=world.canonical_resolver_anchor,
        )

    world.google_dns = build_public_dns(
        internet,
        directory,
        name="GoogleDNS",
        anycast_ip=GOOGLE_DNS_IP,
        asn=15169 + 100000,  # distinct from the CDN AS of the same company
        cities=[city_named(name) for name in GOOGLE_CLUSTER_CITIES],
        allocator=allocator,
        seed=rng.stream("public", "google").randint(0, 2**31),
        background_warm_prob=config.public_warm_prob,
        route_instability=config.google_instability,
        transport=transport,
    )
    world.opendns = build_public_dns(
        internet,
        directory,
        name="OpenDNS",
        anycast_ip=OPENDNS_IP,
        asn=36692,
        cities=[city_named(name) for name in OPENDNS_CLUSTER_CITIES],
        allocator=allocator,
        seed=rng.stream("public", "opendns").randint(0, 2**31),
        background_warm_prob=config.public_warm_prob,
        route_instability=config.opendns_instability,
        transport=transport,
    )

    for carrier in config.carriers:
        operator = build_operator(
            internet,
            directory,
            carrier,
            allocator,
            seed=rng.stream("carrier", carrier.key).randint(0, 2**31),
            transport=transport,
        )
        operator.ecs_enabled = config.ecs_enabled
        world.operators[carrier.key] = operator
    if config.ecs_enabled:
        world.google_dns.ecs_enabled = True
        world.opendns.ecs_enabled = True
    return world


# -- world snapshots ---------------------------------------------------------
#
# Multiprocess campaign workers used to re-run :func:`build_world` per
# worker process.  A *snapshot* amortizes that: the parent serializes a
# pristine world once, ships the bytes to pool initializers, and each
# worker materialises its world with one ``pickle.loads`` — several
# times cheaper than a rebuild, and (under fork contexts) inherited
# copy-on-write instead of being re-shipped.  Snapshots only exist for
# *pristine* worlds: once resolution runs, lazy memo caches hold
# compiled closures that cannot (and should not) be serialized, and
# :func:`snapshot_world` returns None — callers then fall back to
# shipping the config and rebuilding, exactly the old behaviour.

#: Serialized pristine worlds per :meth:`WorldConfig.content_hash`.
_SNAPSHOT_CACHE: Dict[str, bytes] = {}

#: Most recent measured bootstrap costs in seconds, fed to
#: ``select_executor``'s amortization estimate: ``snapshot_boot_s`` is
#: one ``pickle.loads`` of a world snapshot, ``rebuild_boot_s`` one
#: ``build_world`` — whichever a worker would actually pay.
SNAPSHOT_TIMINGS: Dict[str, float] = {}

#: RNG stream prefixes :func:`build_world` itself creates.  Any other
#: stream on the registry means someone has drawn from the world since
#: it was built — it is no longer the pristine state a snapshot must
#: capture.
_BUILD_STREAM_PREFIXES = ("cdn.", "public.", "carrier.")


def _is_pristine(world: World) -> bool:
    """True while nothing has drawn from the world since build.

    Keyed off the RNG registry: every consumer (population build,
    experiment runner, analysis, benches) opens streams outside the
    build-time namespaces, so a registry holding only build-time
    streams is an exact pristineness witness.
    """
    streams = getattr(world.rng, "_streams", {})
    return all(name.startswith(_BUILD_STREAM_PREFIXES) for name in streams)


def snapshot_world(world: World) -> Optional[bytes]:
    """Serialize a pristine world, or None when it cannot be.

    The result is cached per config content hash, so every campaign
    (and every benchmark pool) over the same config shares one
    serialization.  Used worlds are refused outright — a snapshot must
    reproduce first-run state, and a world that has served draws is
    past it (heavily-used worlds also hold unpicklable
    compiled-sampler closures, which would fail the dump anyway) — and
    the caller ships the config instead, exactly the old behaviour.
    """
    key = world.config.content_hash()
    cached = _SNAPSHOT_CACHE.get(key)
    if cached is not None:
        return cached
    if not _is_pristine(world):
        return None
    try:
        started = time.perf_counter()
        data = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        SNAPSHOT_TIMINGS["serialize_s"] = time.perf_counter() - started
    except Exception:
        return None
    _SNAPSHOT_CACHE[key] = data
    return data


def boot_world(
    snapshot: Optional[bytes], config: WorldConfig
) -> Tuple[World, str]:
    """Materialise a worker's world: snapshot if possible, else rebuild.

    Returns ``(world, mode)`` with ``mode`` one of ``"snapshot"`` /
    ``"rebuild"``.  Both paths produce byte-identical campaign output
    (asserted by the worker-pool test suite); the snapshot path is just
    cheaper.  Timings land in :data:`SNAPSHOT_TIMINGS` so executor
    selection can reason about *measured* bootstrap cost.
    """
    if snapshot is not None:
        try:
            started = time.perf_counter()
            world = pickle.loads(snapshot)
            SNAPSHOT_TIMINGS["snapshot_boot_s"] = time.perf_counter() - started
            return world, "snapshot"
        except Exception:
            pass
    started = time.perf_counter()
    world = build_world(config)
    SNAPSHOT_TIMINGS["rebuild_boot_s"] = time.perf_counter() - started
    return world, "rebuild"


def measured_bootstrap_s() -> Optional[float]:
    """Best current estimate of one worker's world-bootstrap seconds.

    Prefers the snapshot-boot measurement (what a warm pool actually
    pays per run) and falls back to the rebuild measurement; None until
    either has been observed in this process.
    """
    timings = SNAPSHOT_TIMINGS
    return timings.get("snapshot_boot_s", timings.get("rebuild_boot_s"))
