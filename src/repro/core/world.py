"""World assembly: every substrate instantiated and wired together.

:func:`build_world` produces the complete simulated Internet the
measurement campaign runs against: transit backbone, university vantage,
origin + CDN + resolver-echo authorities, Google/OpenDNS anycast
services, and the six carrier networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdn.mapping import ResolverLocator
from repro.cdn.provider import (
    CDN_FOOTPRINTS,
    CDNProvider,
    build_cdn,
    build_origin_authorities,
)
from repro.cellnet.operator import CellularOperator
from repro.cellnet.presets import CarrierConfig, build_operator, default_carrier_configs
from repro.core.addressing import PrefixAllocator
from repro.core.asn import ASKind
from repro.core.backbone import ExternalVantage, TransitBackbone
from repro.core.faults import FaultScenario
from repro.core.internet import VirtualInternet
from repro.core.node import Host
from repro.core.rng import RngRegistry
from repro.core.transport import Transport
from repro.dns.authoritative import ResolverEchoAuthority, StaticAuthority
from repro.dns.public_dns import PublicDnsService, build_public_dns
from repro.dns.zone import ZoneDirectory
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import (
    ASIA_PACIFIC_CITIES,
    US_CITIES,
    city_named,
)

#: The controlled zone used for resolver identification (Sec 3.2), a
#: stand-in for the subdomain of the authors' research group site.
WHOAMI_ZONE = "whoami.aqualab-repro.net"

#: Anycast service addresses.
GOOGLE_DNS_IP = "8.8.8.8"
OPENDNS_IP = "208.67.222.222"

#: Google Public DNS operated ~30 distributed /24 resolver sites [9].
GOOGLE_CLUSTER_CITIES = [city.name for city in US_CITIES[:25]] + [
    "Tokyo",
    "Osaka",
    "Taipei",
    "Hong Kong",
    "Singapore",
]

#: OpenDNS ran a smaller footprint.
OPENDNS_CLUSTER_CITIES = [city.name for city in US_CITIES[:16]] + [
    "Tokyo",
    "Singapore",
]


@dataclass
class WorldConfig:
    """Knobs for world construction."""

    seed: int = 2014
    carriers: List[CarrierConfig] = field(default_factory=default_carrier_configs)
    google_instability: float = 0.18
    opendns_instability: float = 0.12
    public_warm_prob: float = 0.95
    #: Enable EDNS Client Subnet end-to-end (resolvers forward client
    #: /24s, CDNs map on them).  Off by default: the paper predates wide
    #: ECS deployment, and the baseline must match what it measured.
    ecs_enabled: bool = False
    #: Overrides forwarded to every CDN's MappingPolicy.
    cdn_mapping_overrides: Dict[str, object] = field(default_factory=dict)
    #: Force one A TTL on every CDN answer (cache ablations); None keeps
    #: the per-domain catalogue TTLs.
    cdn_a_ttl_override: Optional[int] = None
    #: Fault scenario the world's transport layer enforces.  None (and
    #: the bundled ``baseline``) mean fault-free: the campaign must then
    #: hash byte-identically to the pre-transport engine.  Scenarios are
    #: plain frozen dataclasses, so they survive the WorldConfig pickling
    #: that parallel campaign shards rebuild their worlds from.
    scenario: Optional[FaultScenario] = None


@dataclass
class World:
    """Handles to everything the measurement layer needs."""

    config: WorldConfig
    rng: RngRegistry
    internet: VirtualInternet
    directory: ZoneDirectory
    backbone: TransitBackbone
    vantage: ExternalVantage
    operators: Dict[str, CellularOperator]
    cdns: Dict[str, CDNProvider]
    origin_authorities: List[StaticAuthority]
    echo_authority: ResolverEchoAuthority
    google_dns: PublicDnsService
    opendns: PublicDnsService
    #: The delivery layer every simulated packet crosses.
    transport: Transport
    #: The address allocator, kept so extensions (operator CDNs, extra
    #: vantage points) can claim further prefixes after construction.
    allocator: Optional[PrefixAllocator] = None

    def operator(self, key: str) -> CellularOperator:
        """Look a carrier up by key."""
        return self.operators[key]

    def public_service(self, kind: str) -> PublicDnsService:
        """The public DNS service behind a resolver kind label."""
        if kind == "google":
            return self.google_dns
        if kind == "opendns":
            return self.opendns
        raise KeyError(f"unknown public resolver kind {kind!r}")

    def replica_owner(self, ip: str) -> Optional[CDNProvider]:
        """Which CDN owns a replica address."""
        for provider in self.cdns.values():
            if provider.replica_by_ip(ip) is not None:
                return provider
        return None

    def locate_ip(self, ip: str) -> Optional[Tuple[GeoPoint, bool]]:
        """(location, is_cellular) of an address — the CDN's view.

        This is what stands in for the measurement infrastructure real
        CDNs run; the is_cellular bit is what degrades their estimate.
        Client-pool addresses (which only ever reach a CDN via EDNS
        Client Subnet) resolve to the egress region their /24 slice NATs
        through.
        """
        host = self.internet.host(ip)
        if host is not None:
            return host.location, host.asys.kind is ASKind.CELLULAR
        for operator in self.operators.values():
            location = operator.locate_client_ip(ip)
            if location is not None:
                return location, True
        return None


def _echo_authority(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    allocator: PrefixAllocator,
) -> ResolverEchoAuthority:
    """The research group's ADNS serving the whoami zone."""
    from repro.core.asn import AutonomousSystem, FirewallPolicy

    system = AutonomousSystem(
        asn=104,
        name="Aqualab Research ADNS",
        kind=ASKind.UNIVERSITY,
        firewall=FirewallPolicy(blocks_inbound=False),
    )
    internet.register_system(system)
    prefix = allocator.allocate24()
    system.add_prefix(prefix)
    host = Host(
        ip=prefix.host(53),
        name="adns.aqualab-repro.net",
        asys=system,
        location=city_named("Chicago").location,
        stack_latency_ms=0.4,
    )
    internet.register_host(host)
    authority = ResolverEchoAuthority(host=host, zone_apex=WHOAMI_ZONE)
    directory.register(WHOAMI_ZONE, authority)
    return authority


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Assemble the full simulated Internet."""
    config = config or WorldConfig()
    rng = RngRegistry(config.seed)
    internet = VirtualInternet()
    transport = Transport(internet, scenario=config.scenario)
    directory = ZoneDirectory()
    allocator = PrefixAllocator.parse("16.0.0.0/6")

    backbone = TransitBackbone.build(
        internet,
        US_CITIES + ASIA_PACIFIC_CITIES,
        allocator,
    )
    vantage = ExternalVantage.build(internet, allocator)
    origin_authorities = build_origin_authorities(internet, directory, allocator)
    echo_authority = _echo_authority(internet, directory, allocator)

    world = World(
        config=config,
        rng=rng,
        internet=internet,
        directory=directory,
        backbone=backbone,
        vantage=vantage,
        operators={},
        cdns={},
        origin_authorities=origin_authorities,
        echo_authority=echo_authority,
        google_dns=None,  # type: ignore[arg-type]  # filled below
        opendns=None,  # type: ignore[arg-type]
        transport=transport,
        allocator=allocator,
    )

    locator: ResolverLocator = world.locate_ip
    for key in CDN_FOOTPRINTS:
        world.cdns[key] = build_cdn(
            internet,
            directory,
            key,
            allocator,
            locator,
            seed=rng.stream("cdn", key).randint(0, 2**31),
            mapping_overrides=dict(config.cdn_mapping_overrides),
            a_ttl_override=config.cdn_a_ttl_override,
        )

    world.google_dns = build_public_dns(
        internet,
        directory,
        name="GoogleDNS",
        anycast_ip=GOOGLE_DNS_IP,
        asn=15169 + 100000,  # distinct from the CDN AS of the same company
        cities=[city_named(name) for name in GOOGLE_CLUSTER_CITIES],
        allocator=allocator,
        seed=rng.stream("public", "google").randint(0, 2**31),
        background_warm_prob=config.public_warm_prob,
        route_instability=config.google_instability,
        transport=transport,
    )
    world.opendns = build_public_dns(
        internet,
        directory,
        name="OpenDNS",
        anycast_ip=OPENDNS_IP,
        asn=36692,
        cities=[city_named(name) for name in OPENDNS_CLUSTER_CITIES],
        allocator=allocator,
        seed=rng.stream("public", "opendns").randint(0, 2**31),
        background_warm_prob=config.public_warm_prob,
        route_instability=config.opendns_instability,
        transport=transport,
    )

    for carrier in config.carriers:
        operator = build_operator(
            internet,
            directory,
            carrier,
            allocator,
            seed=rng.stream("carrier", carrier.key).randint(0, 2**31),
            transport=transport,
        )
        operator.ecs_enabled = config.ecs_enabled
        world.operators[carrier.key] = operator
    if config.ecs_enabled:
        world.google_dns.ecs_enabled = True
        world.opendns.ecs_enabled = True
    return world
