"""Deterministic, named random-number streams.

Every stochastic component of the simulation draws from its own named
substream derived from a single master seed.  Two properties follow:

* Runs are bit-reproducible given the same seed.
* Adding a new component (a new device, a new resolver) does not perturb
  the random draws of existing components, because each stream is seeded
  independently from ``sha256(master_seed, name)`` rather than from a shared
  sequential generator.
"""

from __future__ import annotations

import hashlib
import math
import random
from functools import lru_cache
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@lru_cache(maxsize=1 << 18)
def _derived_from_parts(master_seed: int, parts: tuple) -> int:
    """Memoised ``derive_seed`` over raw name parts.

    ``stable_index``/``stable_fraction`` are keyed by epoch-quantised
    inputs (device, hour, lease epoch, ...), so the same parts recur for
    every probe inside an epoch; hashing the tuple beats re-joining the
    name string and re-running SHA-256 each time.  Purity makes the memo
    invisible to determinism.  The miss path is ``derive_seed`` inlined
    (same name string, same digest) because epoch rollovers put it on
    the campaign hot path.
    """
    name = ":".join(map(str, parts))
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named pseudo-random stream with networking-flavoured helpers.

    Wraps :class:`random.Random` and adds the distributions the latency and
    behaviour models need (log-normal in milliseconds, bounded normal,
    weighted choice).
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.name = name
        self._rng = random.Random(derive_seed(master_seed, name))

    # -- passthroughs -----------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(options, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal deviate."""
        return self._rng.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential deviate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    # -- derived distributions --------------------------------------------

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given (unnormalised) weights."""
        if len(options) != len(weights):
            raise ValueError("options and weights must have the same length")
        return self._rng.choices(options, weights=weights, k=1)[0]

    def lognormal_ms(self, median_ms: float, sigma: float) -> float:
        """Log-normal latency sample parameterised by its *median*.

        Network latencies are right-skewed; a log-normal with ``mu =
        ln(median)`` matches the CDF shapes reported for cellular RTTs
        (long tail above p80, tight body).
        """
        if median_ms <= 0:
            raise ValueError("median_ms must be positive")
        return math.exp(math.log(median_ms) + sigma * self._rng.gauss(0.0, 1.0))

    def lognormal_from_log(self, log_median: float, sigma: float) -> float:
        """Log-normal sample from a *precomputed* ``ln(median)``.

        Bit-identical to ``lognormal_ms(median, sigma)`` when
        ``log_median == math.log(median)`` — same single Gaussian draw,
        same arithmetic — but skips the per-call ``math.log`` and the
        positivity check.  Used by precompiled RTT samplers on hot paths.
        """
        return math.exp(log_median + sigma * self._rng.gauss(0.0, 1.0))

    def bounded_gauss(self, mu: float, sigma: float, low: float, high: float) -> float:
        """Normal deviate clamped to [low, high]."""
        return min(high, max(low, self._rng.gauss(mu, sigma)))

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._rng.random() < probability

    def __repr__(self) -> str:
        return f"RandomStream(name={self.name!r})"


class RngRegistry:
    """Factory and cache of named :class:`RandomStream` objects.

    The registry hands out one stream per name; asking for the same name
    twice returns the same stream so a component's draws stay sequential.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, *name_parts: object) -> RandomStream:
        """Return the stream for the given dotted name parts.

        Example: ``registry.stream("device", device_id, "radio")``.
        """
        name = ".".join(str(part) for part in name_parts)
        if name not in self._streams:
            self._streams[name] = RandomStream(self.master_seed, name)
        return self._streams[name]

    def fork(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{suffix}"))

    def known_streams(self) -> Iterable[str]:
        """Names of the streams created so far (for debugging)."""
        return sorted(self._streams)

    def __repr__(self) -> str:
        return f"RngRegistry(master_seed={self.master_seed}, streams={len(self._streams)})"


def spread_evenly(total: int, buckets: int) -> list:
    """Split ``total`` into ``buckets`` integer parts that differ by <= 1.

    Deterministic helper used when distributing clients/resolvers across
    groups without randomness.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    base, extra = divmod(total, buckets)
    return [base + (1 if index < extra else 0) for index in range(buckets)]


def make_stream(seed: int, name: str = "default") -> RandomStream:
    """Convenience constructor for a standalone stream."""
    return RandomStream(seed, name)


def stable_index(master_seed: int, *parts: object, modulo: int) -> int:
    """A deterministic pseudo-random index, pure in its inputs.

    Unlike a :class:`RandomStream`, the result does not depend on how many
    draws happened before: the same ``(seed, parts)`` always yields the
    same index.  Used for time-epoch-keyed assignments (which external
    resolver a device maps to during hour N) so that assignment churn is
    reproducible regardless of measurement order.
    """
    if modulo <= 0:
        raise ValueError("modulo must be positive")
    return _derived_from_parts(master_seed, parts) % modulo


def stable_fraction(master_seed: int, *parts: object) -> float:
    """Deterministic pseudo-random float in [0, 1), pure in its inputs."""
    return _derived_from_parts(master_seed, parts) / float(1 << 64)
