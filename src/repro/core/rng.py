"""Deterministic, named random-number streams with vectorized draw pools.

Every stochastic component of the simulation draws from its own named
substream derived from a single master seed.  Two properties follow:

* Runs are bit-reproducible given the same seed.
* Adding a new component (a new device, a new resolver) does not perturb
  the random draws of existing components, because each stream is seeded
  independently from ``sha256(master_seed, name)`` rather than from a shared
  sequential generator.

**The draw-pool layer.**  Per-draw calls into :class:`random.Random` are
the campaign's innermost cost: every RTT is one ``gauss`` closure call.
:class:`RandomStream` therefore refills a *uniform pool* — a block of raw
``random()`` outputs drawn from the underlying Mersenne Twister in one
list comprehension — and derives every distribution from pool entries
with arithmetic copied verbatim from CPython's ``random`` module:

* ``uniform(a, b)``   = ``a + (b - a) * u``
* ``expovariate(l)``  = ``-log(1 - u) / l``
* ``bernoulli(p)``    = ``u < p``
* ``gauss(mu, s)``    = Box–Muller over two pool uniforms, with the
  same pending-value slot ``random.Random.gauss`` keeps (each pair of
  uniforms yields a cos- and a sin-deviate; the second is held for the
  next call).
* ``weighted_choice`` = ``options[bisect(cum, u * total)]`` with the
  cumulative weights memoised per distinct weight tuple.

Because the pool holds *uniforms* (the generator's ground truth) rather
than transformed deviates, interleaving any mix of pooled calls —
singles, :meth:`gauss_block`, ``bernoulli`` between two ``gauss`` —
consumes the Mersenne Twister in exactly the scalar order, so every
value is bit-identical to the scalar implementation.  The scalar
implementations survive as ``*_reference`` oracles, and the property
tests in ``tests/core/test_rng_pools.py`` assert identity across
interleavings and pool-refill boundaries.

The refill deliberately avoids numpy: on this toolchain ``np.log`` /
``np.exp`` / ``np.sqrt`` differ from ``math.*`` by 1 ulp on a small
fraction of inputs (measured: ~0.3% of 200k samples for the Box–Muller
``sqrt(-2 log u)`` chain), which would break the byte-identity contract
``Dataset.content_hash`` pins.

Only the ``getrandbits`` family (``randint``/``choice``/``sample``/
``shuffle``) cannot be served from the uniform pool — those consume
Twister words through a different code path.  The stream therefore keeps
*two cursors* over the one deterministic sequence: a scalar cursor
(``_rng``) parked at the last consumed draw, and an identically seeded
read-ahead twin (``_ahead``) that pool refills drain.  A
``getrandbits``-family call triggers a *realignment*: the scalar cursor
burns the pool draws consumed so far, the unconsumed tail is dropped
(to be regenerated identically after the twin resyncs), and the call
proceeds scalar on ``_rng``.  In this simulation realignments occur
only at world build time, on streams that make no pooled draws first.
"""

from __future__ import annotations

import hashlib
import math
import random
from bisect import bisect as _bisect
from functools import lru_cache
from itertools import accumulate as _accumulate
from typing import Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

_exp = math.exp
_log = math.log
_sqrt = math.sqrt
_cos = math.cos
_sin = math.sin
_isfinite = math.isfinite
TWOPI = 2.0 * math.pi

#: Default uniforms per pool refill.  Large enough that refill overhead
#: (one list comprehension off the read-ahead cursor) amortises to
#: ~nothing per draw; small enough that a realignment never replays more
#: than this many uniforms.
POOL_BLOCK = 512


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@lru_cache(maxsize=1 << 18)
def _derived_from_parts(master_seed: int, parts: tuple) -> int:
    """Memoised ``derive_seed`` over raw name parts.

    ``stable_index``/``stable_fraction`` are keyed by epoch-quantised
    inputs (device, hour, lease epoch, ...), so the same parts recur for
    every probe inside an epoch; hashing the tuple beats re-joining the
    name string and re-running SHA-256 each time.  Purity makes the memo
    invisible to determinism.  The miss path is ``derive_seed`` inlined
    (same name string, same digest) because epoch rollovers put it on
    the campaign hot path.
    """
    name = ":".join(map(str, parts))
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derived_seed_cache_info() -> Dict[str, int]:
    """Hit/miss statistics of the ``_derived_from_parts`` memo.

    Surfaced through the benchmark stage breakdown so epoch-rollover
    churn in ``stable_index``/``stable_fraction`` is visible in
    ``BENCH_campaign.json``.
    """
    info = _derived_from_parts.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "currsize": info.currsize,
        "maxsize": info.maxsize,
    }


class RandomStream:
    """A named pseudo-random stream with networking-flavoured helpers.

    Wraps :class:`random.Random`, adds the distributions the latency and
    behaviour models need (log-normal in milliseconds, bounded normal,
    weighted choice), and serves every float-valued draw from a
    block-refilled uniform pool (see the module docstring for the
    identity contract).

    Pool counters — :attr:`pool_refills`, :attr:`pool_hits` (uniforms
    consumed from the pool), :attr:`pool_realignments` — feed the
    ``sampler`` section of ``BENCH_campaign.json``.
    """

    __slots__ = (
        "name",
        "_rng",
        "_ahead",
        "_stale",
        "_gen_unsynced",
        "_u",
        "_pos",
        "_pending",
        "_block",
        "_refill_hint",
        "_cum_memo",
        "pool_refills",
        "pool_generated",
        "pool_realignments",
    )

    def __init__(
        self, master_seed: int, name: str, pool_block: int = POOL_BLOCK
    ) -> None:
        self.name = name
        seed = derive_seed(master_seed, name)
        #: Scalar cursor: positioned at the last *consumed* draw.  The
        #: ``getrandbits`` family and the ``*_reference`` oracles run on
        #: this generator, so their word consumption is exactly scalar.
        self._rng = random.Random(seed)
        #: Read-ahead cursor: an identically seeded twin that the pool
        #: refills drain.  Splitting the cursors means a refill is just
        #: a list comprehension — no ``getstate`` snapshot of the 625-word
        #: Twister state per block.
        self._ahead = random.Random(seed)
        #: Whether ``_ahead`` has fallen behind ``_rng`` (a scalar-family
        #: call advanced ``_rng`` directly); the next refill resyncs.
        self._stale = False
        #: Uniforms drawn into pools since the cursors were last level —
        #: what a realignment must burn on ``_rng``, minus the tail.
        self._gen_unsynced = 0
        #: The uniform pool: raw ``random()`` outputs, refilled in blocks.
        self._u: List[float] = []
        self._pos = 0
        #: Pending second Box–Muller deviate (mirrors ``gauss_next``).
        self._pending: Optional[float] = None
        self._block = pool_block
        #: One-shot request to make the next refill at least this big
        #: (callers that know an attempt set's size use :meth:`prefill`).
        self._refill_hint = 0
        #: Cumulative-weight memo for :meth:`weighted_choice`.
        self._cum_memo: dict = {}
        self.pool_refills = 0
        self.pool_generated = 0
        self.pool_realignments = 0

    # -- pool machinery ----------------------------------------------------

    def _refill(self) -> None:
        """Draw a fresh block of uniforms from the read-ahead cursor.

        Only called on an empty pool.  If a scalar-family call moved
        ``_rng`` since the last sync, the read-ahead twin first jumps to
        ``_rng``'s position (one ``getstate``/``setstate`` pair — paid
        per realignment, not per refill)."""
        if self._stale:
            self._ahead.setstate(self._rng.getstate())
            self._stale = False
        n = self._block
        hint = self._refill_hint
        if hint > n:
            n = hint
        self._refill_hint = 0
        draw = self._ahead.random
        self._u = [draw() for _ in range(n)]
        self._pos = 0
        self._gen_unsynced += n
        self.pool_refills += 1
        self.pool_generated += n

    def _realign(self) -> None:
        """Advance the scalar cursor to the pool-consumption position.

        ``getrandbits``-family calls consume Twister words directly, so
        they must run on a generator positioned exactly after the last
        consumed uniform: burn the consumed pool draws on ``_rng`` and
        drop the unconsumed tail (its values will be regenerated,
        identically, by future refills of the resynced twin).
        """
        u = self._u
        burn = self._gen_unsynced - (len(u) - self._pos)
        if burn > 0:
            draw = self._rng.random
            for _ in range(burn):
                draw()
        self._gen_unsynced = 0
        self._stale = True
        if not u:
            return
        self.pool_generated -= len(u) - self._pos
        self._u = []
        self._pos = 0
        self.pool_realignments += 1

    def prefill(self, n: int) -> None:
        """Hint that roughly ``n`` uniforms are about to be consumed.

        Sizes the *next* refill so one block covers the whole attempt
        set (the measure layer calls this before probing an experiment's
        replica set).  Purely a batching hint — draw values and order
        are unaffected.
        """
        remaining = len(self._u) - self._pos
        if n > remaining:
            hint = n - remaining
            if hint > self._refill_hint:
                self._refill_hint = hint

    @property
    def pool_hits(self) -> int:
        """Uniforms served from the pool so far."""
        return self.pool_generated - (len(self._u) - self._pos)

    # -- uniforms ----------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1) (one pool entry)."""
        pos = self._pos
        u = self._u
        if pos >= len(u):
            self._refill()
            pos = 0
            u = self._u
        self._pos = pos + 1
        return u[pos]

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high] (CPython's exact arithmetic)."""
        return low + (high - low) * self.random()

    def uniform_block(self, n: int) -> List[float]:
        """``n`` uniforms in [0, 1), in draw order."""
        pos = self._pos
        u = self._u
        end = pos + n
        if end <= len(u):
            self._pos = end
            return u[pos:end]
        out = []
        append = out.append
        for _ in range(n):
            if pos >= len(u):
                self._pos = pos
                self._refill()
                pos = 0
                u = self._u
            append(u[pos])
            pos += 1
        self._pos = pos
        return out

    # -- getrandbits family (realigning passthroughs) ----------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        self._realign()
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        self._realign()
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        self._realign()
        return self._rng.sample(options, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._realign()
        self._rng.shuffle(items)

    # -- gaussians ---------------------------------------------------------

    def _std_gauss(self) -> float:
        """One raw standard-normal deviate (the ``z`` of CPython's
        ``gauss``): pending slot first, else a Box–Muller pair over two
        pool uniforms with the sin-deviate parked for the next call."""
        z = self._pending
        if z is None:
            pos = self._pos
            u = self._u
            if pos + 2 <= len(u):
                u1 = u[pos]
                u2 = u[pos + 1]
                self._pos = pos + 2
            else:
                # Pair spans a refill boundary; the pool is an artifact,
                # the uniform sequence is continuous across it.
                u1 = self.random()
                u2 = self.random()
            x2pi = u1 * TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - u2))
            z = _cos(x2pi) * g2rad
            self._pending = _sin(x2pi) * g2rad
        else:
            self._pending = None
        return z

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal deviate (bit-identical to ``random.Random.gauss``)."""
        return mu + self._std_gauss() * sigma

    def std_gauss(self) -> float:
        """Standard normal deviate, ``== gauss(0.0, 1.0)`` bit for bit.

        The hot samplers inline ``exp(m + s * std_gauss())`` around this
        (`lognormal_from_log`'s arithmetic with the frame removed).
        ``_std_gauss``'s body is duplicated here (pending slot, pooled
        pair, parked sin-deviate) to drop one frame from the hottest
        scalar draw.
        """
        z = self._pending
        if z is None:
            pos = self._pos
            u = self._u
            if pos + 2 <= len(u):
                u1 = u[pos]
                u2 = u[pos + 1]
                self._pos = pos + 2
            else:
                u1 = self.random()
                u2 = self.random()
            x2pi = u1 * TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - u2))
            z = _cos(x2pi) * g2rad
            self._pending = _sin(x2pi) * g2rad
        else:
            self._pending = None
        return 0.0 + z * 1.0

    def gauss_block(self, n: int) -> List[float]:
        """``n`` standard-normal deviates, in draw order.

        Byte-identical to ``n`` successive ``gauss(0.0, 1.0)`` calls:
        the pending deviate is consumed first, pairs are transformed
        from consecutive pool uniforms, and a trailing half-pair parks
        its sin-deviate in the pending slot.  Compiled resolution plans
        and the fused probe paths consume one contiguous block per
        chain instead of one closure call per draw.
        """
        # Fast paths: every uniform the block needs is already pooled —
        # transform in place with all loop state in locals.  This is the
        # shape the fused probe and plan paths hit almost always (they
        # prefill per attempt set).  A parked pending deviate does not
        # fall off the fast path: it is emitted as element 0 and the
        # remaining ``n - 1`` deviates come from pooled pairs (odd-sized
        # fused blocks park a sin-deviate, so pending-first is the
        # *common* shape on the probe path, not the exception).
        if n > 0 and self._pending is not None:
            z = self._pending
            k = n - 1
            if k == 0:
                self._pending = None
                return [0.0 + z * 1.0]
            pool = self._u
            pos = self._pos
            if pos + ((k + 1) & ~1) <= len(pool):
                self._pending = None
                sqrt = _sqrt
                log = _log
                cos = _cos
                sin = _sin
                out = [0.0 + z * 1.0]
                append = out.append
                end = pos + (k & ~1)
                while pos < end:
                    x2pi = pool[pos] * TWOPI
                    g2rad = sqrt(-2.0 * log(1.0 - pool[pos + 1]))
                    append(0.0 + cos(x2pi) * g2rad * 1.0)
                    append(0.0 + sin(x2pi) * g2rad * 1.0)
                    pos += 2
                if k & 1:
                    x2pi = pool[pos] * TWOPI
                    g2rad = sqrt(-2.0 * log(1.0 - pool[pos + 1]))
                    append(0.0 + cos(x2pi) * g2rad * 1.0)
                    self._pending = sin(x2pi) * g2rad
                    pos += 2
                self._pos = pos
                return out
        elif n > 0:
            pool = self._u
            pos = self._pos
            if n <= 4:
                # Unrolled: n of 2-4 covers the origin pair, the fused
                # ping block and most compiled chains; list displays
                # beat the append loop by ~40% at this size.
                if n == 2:
                    if pos + 2 <= len(pool):
                        x1 = pool[pos] * TWOPI
                        g1 = _sqrt(-2.0 * _log(1.0 - pool[pos + 1]))
                        self._pos = pos + 2
                        return [
                            0.0 + _cos(x1) * g1 * 1.0,
                            0.0 + _sin(x1) * g1 * 1.0,
                        ]
                elif n == 4:
                    if pos + 4 <= len(pool):
                        x1 = pool[pos] * TWOPI
                        g1 = _sqrt(-2.0 * _log(1.0 - pool[pos + 1]))
                        x2 = pool[pos + 2] * TWOPI
                        g2 = _sqrt(-2.0 * _log(1.0 - pool[pos + 3]))
                        self._pos = pos + 4
                        return [
                            0.0 + _cos(x1) * g1 * 1.0,
                            0.0 + _sin(x1) * g1 * 1.0,
                            0.0 + _cos(x2) * g2 * 1.0,
                            0.0 + _sin(x2) * g2 * 1.0,
                        ]
                elif n == 3:
                    if pos + 4 <= len(pool):
                        x1 = pool[pos] * TWOPI
                        g1 = _sqrt(-2.0 * _log(1.0 - pool[pos + 1]))
                        x2 = pool[pos + 2] * TWOPI
                        g2 = _sqrt(-2.0 * _log(1.0 - pool[pos + 3]))
                        self._pos = pos + 4
                        self._pending = _sin(x2) * g2
                        return [
                            0.0 + _cos(x1) * g1 * 1.0,
                            0.0 + _sin(x1) * g1 * 1.0,
                            0.0 + _cos(x2) * g2 * 1.0,
                        ]
                elif pos + 2 <= len(pool):  # n == 1
                    x1 = pool[pos] * TWOPI
                    g1 = _sqrt(-2.0 * _log(1.0 - pool[pos + 1]))
                    self._pos = pos + 2
                    self._pending = _sin(x1) * g1
                    return [0.0 + _cos(x1) * g1 * 1.0]
            if pos + ((n + 1) & ~1) <= len(pool):
                sqrt = _sqrt
                log = _log
                cos = _cos
                sin = _sin
                out = []
                append = out.append
                end = pos + (n & ~1)
                while pos < end:
                    x2pi = pool[pos] * TWOPI
                    g2rad = sqrt(-2.0 * log(1.0 - pool[pos + 1]))
                    append(0.0 + cos(x2pi) * g2rad * 1.0)
                    append(0.0 + sin(x2pi) * g2rad * 1.0)
                    pos += 2
                if n & 1:
                    x2pi = pool[pos] * TWOPI
                    g2rad = sqrt(-2.0 * log(1.0 - pool[pos + 1]))
                    append(0.0 + cos(x2pi) * g2rad * 1.0)
                    self._pending = sin(x2pi) * g2rad
                    pos += 2
                self._pos = pos
                return out
        out: List[float] = []
        append = out.append
        z = self._pending
        need = n
        if z is not None and need > 0:
            self._pending = None
            append(0.0 + z * 1.0)
            need -= 1
        pool = self._u
        pos = self._pos
        size = len(pool)
        while need > 0:
            if pos + 2 <= size:
                u1 = pool[pos]
                u2 = pool[pos + 1]
                pos += 2
            else:
                self._pos = pos
                u1 = self.random()
                u2 = self.random()
                pool = self._u
                size = len(pool)
                pos = self._pos
            x2pi = u1 * TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - u2))
            append(0.0 + _cos(x2pi) * g2rad * 1.0)
            need -= 1
            if need > 0:
                append(0.0 + _sin(x2pi) * g2rad * 1.0)
                need -= 1
            else:
                self._pending = _sin(x2pi) * g2rad
        self._pos = pos
        return out

    def expovariate(self, rate: float) -> float:
        """Exponential deviate with the given rate (1/mean)."""
        return -_log(1.0 - self.random()) / rate

    # -- derived distributions --------------------------------------------

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given (unnormalised) weights.

        Consumes one pool uniform exactly as ``random.choices`` would
        (``bisect`` over cumulative weights scaled by the total); the
        cumulative sums are memoised per distinct weight tuple, since
        resolver/radio selection re-draws from a handful of fixed weight
        vectors for the whole campaign.
        """
        if len(options) != len(weights):
            raise ValueError("options and weights must have the same length")
        key = tuple(weights)
        entry = self._cum_memo.get(key)
        if entry is None:
            cum = list(_accumulate(weights))
            total = cum[-1] + 0.0
            if total <= 0.0:
                raise ValueError("Total of weights must be greater than zero")
            if not _isfinite(total):
                raise ValueError("Total of weights must be finite")
            entry = (cum, total, len(cum) - 1)
            self._cum_memo[key] = entry
        cum, total, hi = entry
        return options[_bisect(cum, self.random() * total, 0, hi)]

    def lognormal_ms(self, median_ms: float, sigma: float) -> float:
        """Log-normal latency sample parameterised by its *median*.

        Network latencies are right-skewed; a log-normal with ``mu =
        ln(median)`` matches the CDF shapes reported for cellular RTTs
        (long tail above p80, tight body).
        """
        if median_ms <= 0:
            raise ValueError("median_ms must be positive")
        return _exp(_log(median_ms) + sigma * (0.0 + self._std_gauss() * 1.0))

    def lognormal_from_log(self, log_median: float, sigma: float) -> float:
        """Log-normal sample from a *precomputed* ``ln(median)``.

        Bit-identical to ``lognormal_ms(median, sigma)`` when
        ``log_median == math.log(median)`` — same single Gaussian draw,
        same arithmetic — but skips the per-call ``math.log`` and the
        positivity check.  Used by precompiled RTT samplers on hot paths.
        """
        return _exp(log_median + sigma * (0.0 + self._std_gauss() * 1.0))

    def bounded_gauss(self, mu: float, sigma: float, low: float, high: float) -> float:
        """Normal deviate clamped to [low, high]."""
        return min(high, max(low, mu + self._std_gauss() * sigma))

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random() < probability

    # -- scalar reference oracles ------------------------------------------
    #
    # The pre-pool implementations, verbatim: direct calls into the
    # wrapped ``random.Random``.  They are the executable specification
    # the pooled paths are property-tested against.  Use them on a
    # dedicated stream (or after pooled draws — they realign first);
    # a stream driven purely through ``*_reference`` behaves exactly
    # like the historical scalar RandomStream.

    def random_reference(self) -> float:
        """Scalar oracle for :meth:`random`."""
        self._realign()
        return self._rng.random()

    def uniform_reference(self, low: float, high: float) -> float:
        """Scalar oracle for :meth:`uniform`."""
        self._realign()
        return self._rng.uniform(low, high)

    def gauss_reference(self, mu: float, sigma: float) -> float:
        """Scalar oracle for :meth:`gauss` (uses ``gauss_next``)."""
        self._realign()
        return self._rng.gauss(mu, sigma)

    def expovariate_reference(self, rate: float) -> float:
        """Scalar oracle for :meth:`expovariate`."""
        self._realign()
        return self._rng.expovariate(rate)

    def weighted_choice_reference(
        self, options: Sequence[T], weights: Sequence[float]
    ) -> T:
        """Scalar oracle for :meth:`weighted_choice` (``random.choices``)."""
        if len(options) != len(weights):
            raise ValueError("options and weights must have the same length")
        self._realign()
        return self._rng.choices(options, weights=weights, k=1)[0]

    def lognormal_ms_reference(self, median_ms: float, sigma: float) -> float:
        """Scalar oracle for :meth:`lognormal_ms`."""
        if median_ms <= 0:
            raise ValueError("median_ms must be positive")
        self._realign()
        return math.exp(math.log(median_ms) + sigma * self._rng.gauss(0.0, 1.0))

    def lognormal_from_log_reference(self, log_median: float, sigma: float) -> float:
        """Scalar oracle for :meth:`lognormal_from_log`."""
        self._realign()
        return math.exp(log_median + sigma * self._rng.gauss(0.0, 1.0))

    def bounded_gauss_reference(
        self, mu: float, sigma: float, low: float, high: float
    ) -> float:
        """Scalar oracle for :meth:`bounded_gauss`."""
        self._realign()
        return min(high, max(low, self._rng.gauss(mu, sigma)))

    def bernoulli_reference(self, probability: float) -> bool:
        """Scalar oracle for :meth:`bernoulli`."""
        self._realign()
        return self._rng.random() < probability

    def __repr__(self) -> str:
        return f"RandomStream(name={self.name!r})"


class RngRegistry:
    """Factory and cache of named :class:`RandomStream` objects.

    The registry hands out one stream per name; asking for the same name
    twice returns the same stream so a component's draws stay sequential.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, *name_parts: object) -> RandomStream:
        """Return the stream for the given dotted name parts.

        Example: ``registry.stream("device", device_id, "radio")``.
        """
        name = ".".join(str(part) for part in name_parts)
        if name not in self._streams:
            self._streams[name] = RandomStream(self.master_seed, name)
        return self._streams[name]

    def fork(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{suffix}"))

    def known_streams(self) -> Iterable[str]:
        """Names of the streams created so far (for debugging)."""
        return sorted(self._streams)

    def pool_stats(self) -> Dict[str, int]:
        """Aggregate draw-pool counters across every stream.

        Feeds the ``sampler`` section of ``BENCH_campaign.json``:
        refills > 0 on the bench path is the bench gate's sanity check
        that the campaign actually rides the pools.
        """
        refills = generated = hits = realignments = memo_entries = 0
        for stream in self._streams.values():
            refills += stream.pool_refills
            generated += stream.pool_generated
            hits += stream.pool_hits
            realignments += stream.pool_realignments
            memo_entries += len(stream._cum_memo)
        return {
            "streams": len(self._streams),
            "pool_refills": refills,
            "pool_uniforms": generated,
            "pool_hits": hits,
            "pool_realignments": realignments,
            "weighted_memo_entries": memo_entries,
        }

    def __repr__(self) -> str:
        return f"RngRegistry(master_seed={self.master_seed}, streams={len(self._streams)})"


def spread_evenly(total: int, buckets: int) -> list:
    """Split ``total`` into ``buckets`` integer parts that differ by <= 1.

    Deterministic helper used when distributing clients/resolvers across
    groups without randomness.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    base, extra = divmod(total, buckets)
    return [base + (1 if index < extra else 0) for index in range(buckets)]


def make_stream(seed: int, name: str = "default") -> RandomStream:
    """Convenience constructor for a standalone stream."""
    return RandomStream(seed, name)


def stable_index(master_seed: int, *parts: object, modulo: int) -> int:
    """A deterministic pseudo-random index, pure in its inputs.

    Unlike a :class:`RandomStream`, the result does not depend on how many
    draws happened before: the same ``(seed, parts)`` always yields the
    same index.  Used for time-epoch-keyed assignments (which external
    resolver a device maps to during hour N) so that assignment churn is
    reproducible regardless of measurement order.
    """
    if modulo <= 0:
        raise ValueError("modulo must be positive")
    return _derived_from_parts(master_seed, parts) % modulo


def stable_fraction(master_seed: int, *parts: object) -> float:
    """Deterministic pseudo-random float in [0, 1), pure in its inputs."""
    return _derived_from_parts(master_seed, parts) / float(1 << 64)
