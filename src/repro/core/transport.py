"""One delivery path for every simulated packet.

Before this layer, each probe path re-derived failure semantics on its
own: ``measure_rtt``/``flow_rtt`` returned ``None`` and every caller
sniffed it, the recursive resolver branched on a missing flow sampler,
and there was no way to script degraded conditions.  ``Transport``
centralises the verdict: every send classifies into a structured
:class:`Delivery` outcome —

* ``DELIVERED`` — the reply came back, with its RTT;
* ``FILTERED`` — a firewall/NAT boundary dropped the probe, with the
  filtering hop (the operator's ingress router, when known);
* ``TIMED_OUT`` — the target exists and is routable but stayed silent
  (or a fault window suppressed the answer);
* ``LOST`` — the packet died in transit: unroutable destination, or
  fault-injected loss.

The determinism contract: with no fault scenario active, ``Transport``
consumes *exactly* the random draws the bare substrate primitives
would — classification happens before any draw, and every fault check
collapses to one ``faults is None`` test — so a fault-free campaign's
``Dataset.content_hash`` is byte-identical to the pre-transport engine.
Fault checks draw from the caller's stream only inside active scenario
windows, and only for rules that match.

Counters tally every classified send (plus probe-layer retries), and
surface in the ``transport`` section of ``BENCH_campaign.json``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from repro.core.errors import ResolutionError
from repro.core.faults import FaultScenario, ProbePolicy
from repro.core.internet import (
    RouteView,
    TracerouteResult,
    VirtualInternet,
)
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream

#: Delivery outcome labels; these are also the values carried on the
#: records' optional ``outcome`` field and read back by the analysis
#: layer's predicates.
DELIVERED = "delivered"
FILTERED = "filtered"
TIMED_OUT = "timed_out"
LOST = "lost"


class Delivery:
    """The structured verdict of one simulated send."""

    __slots__ = ("outcome", "rtt_ms", "filtered_at", "fault_induced")

    def __init__(
        self,
        outcome: str,
        rtt_ms: Optional[float] = None,
        filtered_at: Optional[str] = None,
        fault_induced: bool = False,
    ) -> None:
        self.outcome = outcome
        self.rtt_ms = rtt_ms
        self.filtered_at = filtered_at
        self.fault_induced = fault_induced

    @property
    def delivered(self) -> bool:
        """Whether the reply came back."""
        return self.outcome == DELIVERED

    @property
    def retryable(self) -> bool:
        """Whether resending could help.

        Topology-determined failures (firewalled, unroutable, silent
        host) fail identically on every attempt; only fault-induced
        ones are worth the client's retry budget.
        """
        return self.fault_induced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = f", rtt_ms={self.rtt_ms}" if self.rtt_ms is not None else ""
        if self.filtered_at is not None:
            detail += f", filtered_at={self.filtered_at!r}"
        if self.fault_induced:
            detail += ", fault_induced=True"
        return f"Delivery({self.outcome!r}{detail})"


#: Shared verdict for the fault-free gate fast path: no per-call
#: allocation when nothing can go wrong.
_GATE_OK = Delivery(DELIVERED)


class TransportCounters:
    """Tally of every classified send, plus probe-layer retries."""

    __slots__ = ("delivered", "filtered", "timed_out", "lost", "retries")

    def __init__(self) -> None:
        self.delivered = 0
        self.filtered = 0
        self.timed_out = 0
        self.lost = 0
        self.retries = 0

    @property
    def attempts(self) -> int:
        """Total classified sends (each retry is its own attempt)."""
        return self.delivered + self.filtered + self.timed_out + self.lost

    def as_dict(self) -> dict:
        """Plain-dict view for benchmark reports."""
        return {
            "delivered": self.delivered,
            "filtered": self.filtered,
            "timed_out": self.timed_out,
            "lost": self.lost,
            "retries": self.retries,
            "attempts": self.attempts,
        }


class FaultRuntime:
    """A scenario compiled for per-send consultation.

    Keeps the rule tuples plus a sorted list of every window boundary,
    so attachment memo keys can fold in "which windows are active now"
    as one integer (:meth:`phase`) and session-level caching windows can
    be clamped to the next boundary (:meth:`span`).
    """

    def __init__(self, scenario: FaultScenario) -> None:
        self.scenario = scenario
        self.loss_rules = scenario.loss_rules
        self.resolver_outages = scenario.resolver_outages
        self.degraded_epochs = scenario.degraded_epochs
        self.egress_failovers = scenario.egress_failovers
        boundaries = set()
        for rule in self.loss_rules:
            if rule.window is not None:
                boundaries.update((rule.window.start_s, rule.window.end_s))
        for outage in self.resolver_outages:
            boundaries.update((outage.window.start_s, outage.window.end_s))
        for epoch in self.degraded_epochs:
            boundaries.update((epoch.window.start_s, epoch.window.end_s))
        for failover in self.egress_failovers:
            boundaries.update((failover.window.start_s, failover.window.end_s))
        self._boundaries: List[float] = sorted(boundaries)
        self._rat_memo: dict = {}

    def drop(
        self,
        carrier: Optional[str],
        probe: str,
        now: float,
        stream: RandomStream,
    ) -> bool:
        """Whether an active loss rule eats this send (draws on match)."""
        for rule in self.loss_rules:
            if rule.applies(carrier, probe, now) and stream.bernoulli(rule.rate):
                return True
        return False

    def outage_active(
        self, resolver_kind: str, carrier: Optional[str], now: float
    ) -> bool:
        """Whether a resolver tier is dark for this carrier right now."""
        for outage in self.resolver_outages:
            if (
                outage.resolver_kind == resolver_kind
                and (outage.carrier is None or outage.carrier == carrier)
                and outage.window.contains(now)
            ):
                return True
        return False

    def rat_override(self, carrier: str, now: float):
        """The forced radio technology for a carrier, if a window is on."""
        for epoch in self.degraded_epochs:
            if epoch.carrier == carrier and epoch.window.contains(now):
                technology = self._rat_memo.get(epoch.technology)
                if technology is None:
                    from repro.cellnet.radio import RadioTechnology

                    technology = RadioTechnology(epoch.technology)
                    self._rat_memo[epoch.technology] = technology
                return technology
        return None

    def failed_egress(self, carrier: str, now: float) -> Optional[int]:
        """The index of a carrier's failed egress point, if any."""
        for failover in self.egress_failovers:
            if failover.carrier == carrier and failover.window.contains(now):
                return failover.egress_index
        return None

    def phase(self, now: float) -> int:
        """Which inter-boundary segment ``now`` falls in (memo-key safe)."""
        return bisect_right(self._boundaries, now)

    def span(self, now: float) -> Tuple[float, float]:
        """The boundary-free interval around ``now`` (for cache windows)."""
        index = bisect_right(self._boundaries, now)
        lower = self._boundaries[index - 1] if index else float("-inf")
        upper = (
            self._boundaries[index]
            if index < len(self._boundaries)
            else float("inf")
        )
        return lower, upper


class Transport:
    """The one object every simulated packet crosses.

    Owned by :class:`~repro.core.world.World`; probe sessions, the
    recursive resolver and the public DNS services all route their sends
    through it and act on the returned :class:`Delivery`.
    """

    def __init__(
        self,
        internet: VirtualInternet,
        scenario: Optional[FaultScenario] = None,
    ) -> None:
        self.internet = internet
        self.scenario = scenario
        self.policy: ProbePolicy = (
            scenario.policy if scenario is not None else ProbePolicy()
        )
        self.faults: Optional[FaultRuntime] = (
            FaultRuntime(scenario)
            if scenario is not None and scenario.has_faults
            else None
        )
        self.counters = TransportCounters()

    # -- fate gates -----------------------------------------------------------

    def gate(
        self,
        carrier: Optional[str],
        probe: str,
        now: float,
        stream: RandomStream,
    ) -> Delivery:
        """Loss verdict for one exchange whose latency is drawn elsewhere.

        Used where the substrate composes the latency itself (the
        operator's client-facing resolver ping): the gate decides *if*
        the exchange completes, the caller then draws *how long* it took.
        """
        counters = self.counters
        faults = self.faults
        if faults is not None and faults.drop(carrier, probe, now, stream):
            counters.lost += 1
            return Delivery(LOST, fault_induced=True)
        counters.delivered += 1
        return _GATE_OK

    def dns_gate(
        self,
        carrier: Optional[str],
        resolver_kind: str,
        now: float,
        stream: RandomStream,
    ) -> Delivery:
        """Fate of one DNS query/response exchange with a resolver tier."""
        counters = self.counters
        faults = self.faults
        if faults is None:
            counters.delivered += 1
            return _GATE_OK
        if faults.outage_active(resolver_kind, carrier, now):
            counters.timed_out += 1
            return Delivery(TIMED_OUT, fault_induced=True)
        if faults.drop(carrier, "dns", now, stream):
            counters.lost += 1
            return Delivery(LOST, fault_induced=True)
        counters.delivered += 1
        return _GATE_OK

    def dns_timed_out(self, total_ms: float) -> bool:
        """Whether a resolution exceeded the client's timeout.

        Only consulted under an active fault scenario: the fault-free
        engine must reproduce the pre-transport dataset even for the
        lognormal tail, exactly as the seed engine recorded it.
        """
        return self.faults is not None and total_ms > self.policy.dns_timeout_ms

    def note_retry(self) -> None:
        """Count one probe-layer retry (hits + retries == attempts)."""
        self.counters.retries += 1

    # -- packet paths ---------------------------------------------------------

    def ping(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        route: Optional[RouteView] = None,
        carrier: Optional[str] = None,
        now: float = 0.0,
        probe: Optional[str] = None,
    ) -> Delivery:
        """ICMP echo semantics; classification precedes every draw.

        ``probe`` opts a send into loss-rule checks ("ping" from device
        sessions); analysis re-probes pass None and stay fault-exempt.
        """
        internet = self.internet
        counters = self.counters
        if route is None:
            route = internet.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None:
            counters.lost += 1
            return Delivery(LOST)
        if not route.answers_ping:
            if not route.admits:
                counters.filtered += 1
                return Delivery(FILTERED, filtered_at=self._filter_hop(destination))
            counters.timed_out += 1
            return Delivery(TIMED_OUT)
        faults = self.faults
        if (
            faults is not None
            and probe is not None
            and faults.drop(carrier, probe, now, stream)
        ):
            counters.lost += 1
            return Delivery(LOST, fault_induced=True)
        counters.delivered += 1
        return Delivery(
            DELIVERED, internet.measure_rtt(origin, destination_ip, stream, route=route)
        )

    def flow(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        route: Optional[RouteView] = None,
        carrier: Optional[str] = None,
        now: float = 0.0,
        probe: Optional[str] = None,
    ) -> Delivery:
        """Transport-flow semantics (DNS over UDP, HTTP over TCP)."""
        internet = self.internet
        counters = self.counters
        if route is None:
            route = internet.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None:
            counters.lost += 1
            return Delivery(LOST)
        if not route.admits:
            counters.filtered += 1
            return Delivery(FILTERED, filtered_at=self._filter_hop(destination))
        faults = self.faults
        if (
            faults is not None
            and probe is not None
            and faults.drop(carrier, probe, now, stream)
        ):
            counters.lost += 1
            return Delivery(LOST, fault_induced=True)
        counters.delivered += 1
        return Delivery(
            DELIVERED, internet.flow_rtt(origin, destination_ip, stream, route=route)
        )

    def http(
        self,
        origin: ProbeOrigin,
        replica,
        stream: RandomStream,
        route: Optional[RouteView] = None,
        carrier: Optional[str] = None,
        now: float = 0.0,
        probe: Optional[str] = None,
    ) -> Delivery:
        """An HTTP GET against a replica: handshake + request + service."""
        counters = self.counters
        if route is None:
            route = self.internet.route_view(origin, replica.host.ip)
        destination = route.destination
        if destination is None:
            counters.lost += 1
            return Delivery(LOST)
        if not route.admits:
            counters.filtered += 1
            return Delivery(FILTERED, filtered_at=self._filter_hop(destination))
        faults = self.faults
        if (
            faults is not None
            and probe is not None
            and faults.drop(carrier, probe, now, stream)
        ):
            counters.lost += 1
            return Delivery(LOST, fault_induced=True)
        from repro.cdn.replica import http_ttfb_ms

        ttfb = http_ttfb_ms(self.internet, origin, replica, stream, route=route)
        if faults is not None and ttfb > self.policy.http_timeout_ms:
            counters.timed_out += 1
            return Delivery(TIMED_OUT, fault_induced=True)
        counters.delivered += 1
        return Delivery(DELIVERED, ttfb)

    def traceroute(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        route: Optional[RouteView] = None,
        carrier: Optional[str] = None,
        now: float = 0.0,
        probe: Optional[str] = None,
    ) -> Tuple[TracerouteResult, Delivery]:
        """Hop-by-hop TTL probing; returns the hops plus the verdict."""
        internet = self.internet
        counters = self.counters
        if route is None:
            route = internet.route_view(origin, destination_ip)
        faults = self.faults
        if (
            faults is not None
            and probe is not None
            and faults.drop(carrier, probe, now, stream)
        ):
            counters.lost += 1
            return (
                TracerouteResult(destination_ip=destination_ip),
                Delivery(LOST, fault_induced=True),
            )
        result = internet.traceroute(origin, destination_ip, stream, route=route)
        if result.reached:
            counters.delivered += 1
            return result, Delivery(DELIVERED, result.hops[-1].rtt_ms)
        destination = route.destination
        if destination is None:
            counters.lost += 1
            return result, Delivery(LOST)
        interior = (
            destination.asys.firewall.blocks_inbound
            and destination.asys.operator_key != origin.asys.operator_key
        )
        if interior or not route.admits:
            counters.filtered += 1
            return result, Delivery(
                FILTERED, filtered_at=self._filter_hop(destination)
            )
        counters.timed_out += 1
        return result, Delivery(TIMED_OUT)

    def authority_link(
        self, origin: ProbeOrigin, destination_ip: str, resolver_ip: str
    ) -> Callable[[RandomStream], float]:
        """A compiled per-query-leg sampler for the recursive resolver.

        Reachable authorities get the substrate's precompiled flow
        sampler verbatim (the resolution hot path pays nothing for the
        transport layer); unreachable ones get a callable that raises
        :class:`~repro.core.errors.ResolutionError` when the walk
        actually tries the hop — the engine memoises either shape.
        """
        sampler = self.internet.flow_sampler(origin, destination_ip)
        if sampler is not None:
            return sampler

        def unreachable(stream: RandomStream) -> float:
            raise ResolutionError(
                f"authority {destination_ip} unreachable from {resolver_ip}"
            )

        return unreachable

    def authority_program(
        self, origin: ProbeOrigin, destination_ip: str
    ) -> Optional[tuple]:
        """The declarative counterpart of :meth:`authority_link`.

        Returns the substrate's ``(c0, terms, trail, draw_count)`` flow
        program for a reachable authority, or ``None`` when unreachable.
        Compiled resolution plans store these instead of closures so a
        whole chain's Gaussian draws can be pre-counted and consumed as
        one contiguous pool slice.
        """
        return self.internet.flow_program(origin, destination_ip)

    def _filter_hop(self, destination: Host) -> Optional[str]:
        """The border router that dropped a filtered probe, when known."""
        ingress = self.internet._ingress_router_for(destination)
        return ingress.ip if ingress is not None else None
