"""Declarative fault scenarios for the transport layer.

The paper's client script ran on real phones across real carrier
networks: queries were lost on 2G airlinks, carrier resolvers went
quiet for hours, and egress points failed over mid-campaign.  The
simulator reproduces those conditions as *data*, not code forks: a
:class:`FaultScenario` names a set of time-windowed fault rules, and
:class:`~repro.core.transport.Transport` consults them on every send.

Every dataclass here is frozen and built from plain tuples, so a
scenario pickles cleanly into the :class:`~repro.core.world.WorldConfig`
that parallel campaign shards rebuild their worlds from.

Scenarios load by bundled name or from a JSON file::

    repro-study run --scenario resolver-outage
    repro-study run --scenario my-scenario.json

The file schema mirrors :meth:`FaultScenario.from_dict`; windows are
``[start_s, end_s)`` pairs in campaign seconds (day N starts at
``N * 86400``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Probe kinds a loss rule may target (the paper's client script's four
#: probe primitives).
PROBE_KINDS = ("dns", "ping", "http", "traceroute")

DAY_S = 86400.0


@dataclass(frozen=True)
class Window:
    """A half-open ``[start_s, end_s)`` interval in campaign time."""

    start_s: float
    end_s: float

    def contains(self, now: float) -> bool:
        """Whether ``now`` falls inside the window."""
        return self.start_s <= now < self.end_s

    @classmethod
    def from_value(cls, value) -> "Window":
        """Accept ``[start, end]`` pairs or ``{"start_s":…, "end_s":…}``."""
        if isinstance(value, Window):
            return value
        if isinstance(value, dict):
            return cls(float(value["start_s"]), float(value["end_s"]))
        start, end = value
        return cls(float(start), float(end))


@dataclass(frozen=True)
class LossRule:
    """Bernoulli packet loss on a carrier's probes inside a window.

    ``carrier=None`` applies to every carrier; ``window=None`` applies
    for the whole campaign.
    """

    rate: float
    carrier: Optional[str] = None
    probes: Tuple[str, ...] = PROBE_KINDS
    window: Optional[Window] = None

    def applies(self, carrier: Optional[str], probe: str, now: float) -> bool:
        """Whether this rule covers one send."""
        if self.carrier is not None and carrier != self.carrier:
            return False
        if probe not in self.probes:
            return False
        return self.window is None or self.window.contains(now)


@dataclass(frozen=True)
class ResolverOutage:
    """A resolver tier stops answering for a while.

    ``resolver_kind`` is one of the record kinds (``local``, ``google``,
    ``opendns``); ``carrier=None`` hits every carrier's view of it.
    """

    resolver_kind: str
    window: Window
    carrier: Optional[str] = None


@dataclass(frozen=True)
class DegradedEpoch:
    """Force a carrier's devices onto one radio technology for a window.

    ``technology`` is a :class:`~repro.cellnet.radio.RadioTechnology`
    value string (e.g. ``"EDGE"``), kept as text here so scenarios stay
    serialisable without importing the cellnet layer.
    """

    carrier: str
    technology: str
    window: Window


@dataclass(frozen=True)
class EgressFailover:
    """An egress assignment slot of a carrier fails; devices re-home.

    ``egress_index`` is a position in each device's distance-ranked
    egress preference order (0 = the nearest choice); devices whose
    churn schedule lands on that slot re-home to the next-nearest
    egress for the window's duration.  Ranked-slot semantics make a
    failover bite at every campaign scale — an absolute host index
    might simply never be picked by a small device population.
    """

    carrier: str
    egress_index: int
    window: Window


@dataclass(frozen=True)
class ProbePolicy:
    """Retry/timeout/backoff policy of the paper's client script.

    Retries only ever trigger on *fault-induced* failures (loss, outage
    windows, fault timeouts); topology-determined failures — firewalled,
    unroutable or silent targets — fail identically on every attempt,
    so the client gives up immediately and the fault-free wire format
    stays byte-identical to the pre-transport engine.
    """

    dns_retries: int = 2
    ping_retries: int = 2
    http_retries: int = 1
    backoff_s: float = 2.0
    dns_timeout_ms: float = 5000.0
    http_timeout_ms: float = 10000.0


@dataclass(frozen=True)
class FaultScenario:
    """A named, declarative set of fault rules plus the probe policy."""

    name: str
    description: str = ""
    loss_rules: Tuple[LossRule, ...] = ()
    resolver_outages: Tuple[ResolverOutage, ...] = ()
    degraded_epochs: Tuple[DegradedEpoch, ...] = ()
    egress_failovers: Tuple[EgressFailover, ...] = ()
    policy: ProbePolicy = field(default_factory=ProbePolicy)

    @property
    def has_faults(self) -> bool:
        """False for fault-free scenarios (policy-only, e.g. baseline)."""
        return bool(
            self.loss_rules
            or self.resolver_outages
            or self.degraded_epochs
            or self.egress_failovers
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultScenario":
        """Build a scenario from the JSON file schema."""
        policy = payload.get("policy")
        return cls(
            name=payload.get("name", "custom"),
            description=payload.get("description", ""),
            loss_rules=tuple(
                LossRule(
                    rate=float(rule["rate"]),
                    carrier=rule.get("carrier"),
                    probes=tuple(rule.get("probes", PROBE_KINDS)),
                    window=(
                        Window.from_value(rule["window"])
                        if rule.get("window") is not None
                        else None
                    ),
                )
                for rule in payload.get("loss", ())
            ),
            resolver_outages=tuple(
                ResolverOutage(
                    resolver_kind=outage["resolver_kind"],
                    carrier=outage.get("carrier"),
                    window=Window.from_value(outage["window"]),
                )
                for outage in payload.get("resolver_outages", ())
            ),
            degraded_epochs=tuple(
                DegradedEpoch(
                    carrier=epoch["carrier"],
                    technology=epoch["technology"],
                    window=Window.from_value(epoch["window"]),
                )
                for epoch in payload.get("degraded_epochs", ())
            ),
            egress_failovers=tuple(
                EgressFailover(
                    carrier=failover["carrier"],
                    egress_index=int(failover["egress_index"]),
                    window=Window.from_value(failover["window"]),
                )
                for failover in payload.get("egress_failovers", ())
            ),
            policy=ProbePolicy(**policy) if policy else ProbePolicy(),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultScenario":
        """Load a scenario from a JSON file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


#: The fault-free scenario: policy defaults, no fault rules.  Running it
#: must reproduce the pre-transport engine's dataset byte-identically.
BASELINE = FaultScenario(
    name="baseline",
    description="fault-free: the paper's measured conditions",
)

#: Bundled scenarios, addressable by name from the CLI.  Windows are
#: placed in the first days of a campaign so even short smoke runs
#: cross them.
BUNDLED_SCENARIOS = {
    "baseline": BASELINE,
    "resolver-outage": FaultScenario(
        name="resolver-outage",
        description=(
            "AT&T's local resolver tier is dark for days 1-3: local "
            "lookups time out (after retries), so resolver "
            "identification stalls and Table 4 sees fewer externals"
        ),
        resolver_outages=(
            ResolverOutage(
                resolver_kind="local",
                carrier="att",
                window=Window(1 * DAY_S, 3 * DAY_S),
            ),
        ),
    ),
    "lossy-2g": FaultScenario(
        name="lossy-2g",
        description=(
            "T-Mobile devices fall back to EDGE for days 0.5-3.5 with "
            "25% packet loss: retries climb, resolution-time CDFs (Fig "
            "3/7) shift right, some lookups are lost outright"
        ),
        loss_rules=(
            LossRule(
                rate=0.25,
                carrier="tmobile",
                window=Window(0.5 * DAY_S, 3.5 * DAY_S),
            ),
        ),
        degraded_epochs=(
            DegradedEpoch(
                carrier="tmobile",
                technology="EDGE",
                window=Window(0.5 * DAY_S, 3.5 * DAY_S),
            ),
        ),
    ),
    "egress-failover": FaultScenario(
        name="egress-failover",
        description=(
            "Verizon devices' nearest-choice egress slot fails for days "
            "1-3: affected devices re-home to the next-nearest egress, "
            "so resolver/egress churn (Fig 8, Sec 5.2) accelerates"
        ),
        egress_failovers=(
            EgressFailover(
                carrier="verizon",
                egress_index=0,
                window=Window(1 * DAY_S, 3 * DAY_S),
            ),
        ),
    ),
}


def load_scenario(ref) -> FaultScenario:
    """Resolve a scenario reference: an instance, bundled name, or path."""
    if isinstance(ref, FaultScenario):
        return ref
    scenario = BUNDLED_SCENARIOS.get(ref)
    if scenario is not None:
        return scenario
    if os.path.exists(ref):
        return FaultScenario.from_file(ref)
    known = ", ".join(sorted(BUNDLED_SCENARIOS))
    raise ValueError(
        f"unknown scenario {ref!r}: not a bundled name ({known}) "
        f"and not a readable file"
    )
