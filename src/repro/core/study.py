"""End-to-end study orchestration.

:class:`CellularDNSStudy` reproduces the paper's pipeline: build the
simulated Internet, run the measurement campaign, and derive every table
and figure.  Each ``table*``/``fig*`` method returns structured data;
``render_*`` wrappers produce the printable form the benchmark harness
emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cache import CacheComparison, cache_comparison
from repro.analysis.consistency import (
    LdnsPairRow,
    ResolverCountRow,
    ResolverTimeline,
    ldns_pair_table,
    resolver_timeline,
    unique_resolver_counts,
)
from repro.analysis.egress import (
    EgressCount,
    count_egress_points,
    world_ownership_oracle,
)
from repro.analysis.latency import (
    public_resolver_pings,
    resolution_times,
    resolution_times_by_kind,
    resolution_times_by_technology,
    resolver_ping_latencies,
)
from repro.analysis.localization import (
    PublicReplicaComparison,
    ReplicaDifferentials,
    public_replica_comparison,
    replica_differentials,
)
from repro.analysis.reachability import (
    ReachabilityRow,
    probe_external_reachability,
)
from repro.analysis.report import format_cdfs, format_table
from repro.analysis.similarity import SimilarityStudy, similarity_study
from repro.analysis.stats import ECDF
from repro.cdn.catalog import MEASURED_DOMAINS, domain_names
from repro.core.world import World, WorldConfig, build_world
from repro.measure.campaign import (
    Campaign,
    CampaignConfig,
    ParallelCampaign,
    ShardedCampaign,
    select_executor,
)
from repro.measure.records import Dataset

US_CARRIERS = ("att", "sprint", "tmobile", "verizon")
SK_CARRIERS = ("skt", "lgu")


@dataclass
class StudyConfig:
    """Scale knobs for a full study run.

    The defaults trade fidelity for runtime: a laptop-scale campaign that
    still produces every artifact with stable shapes.  ``paper_scale()``
    returns the full Table 1 population at hourly cadence.
    """

    seed: int = 2014
    device_scale: float = 0.15
    min_devices: int = 1
    duration_days: float = 120.0
    interval_hours: float = 12.0
    duty_cycle: float = 0.9
    #: Campaign worker processes: 0 lets the executor decide, N > 0
    #: sizes the pool when a multiprocess path runs (same output
    #: either way — see repro.measure.campaign).
    workers: int = 0
    #: Sub-carrier shard tasks for the ``sharded`` executor: 0 uses one
    #: task per device range; N groups ranges into N tasks.  Output is
    #: bit-identical at any value.
    shards: int = 0
    #: Devices per sub-carrier range (the cache-scope partition
    #: granularity — see CampaignConfig.range_size).
    range_size: int = 32
    #: Execution strategy: ``auto`` (serial on one core, sub-carrier
    #: ``sharded`` otherwise), ``serial``, per-carrier ``parallel`` or
    #: ``sharded``.  Output is bit-identical across all of them.
    executor: str = "auto"
    world: WorldConfig = field(default_factory=WorldConfig)

    @classmethod
    def paper_scale(cls) -> "StudyConfig":
        """The original study's scale (slow: ~570k experiments)."""
        return cls(
            device_scale=1.0, duration_days=153.0, interval_hours=1.0
        )

    @classmethod
    def smoke_scale(cls) -> "StudyConfig":
        """Tiny scale for tests and quick demos."""
        return cls(
            device_scale=0.05,
            min_devices=1,
            duration_days=20.0,
            interval_hours=24.0,
        )

    def campaign_config(self) -> CampaignConfig:
        """The campaign configuration this study scale implies."""
        return CampaignConfig(
            device_scale=self.device_scale,
            min_devices=self.min_devices,
            duration_days=self.duration_days,
            interval_hours=self.interval_hours,
            duty_cycle=self.duty_cycle,
            range_size=self.range_size,
        )


class CellularDNSStudy:
    """The paper, as an object: world + campaign + per-artifact methods."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        world_config = self.config.world
        world_config.seed = self.config.seed
        self.world: World = build_world(world_config)
        campaign_config = self.config.campaign_config()
        carrier_keys = list(self.world.operators)
        #: The full executor decision: why the strategy was chosen and
        #: the bootstrap/simulate estimates it weighed (``auto`` sizes
        #: against the *device-range* count — sub-carrier shards — and
        #: the estimated campaign size).
        self.executor_decision = select_executor(
            self.config.executor,
            shard_count=len(campaign_config.device_ranges(carrier_keys)),
            experiments=campaign_config.estimated_experiments(carrier_keys),
        )
        #: The resolved execution strategy ("serial", "parallel" or
        #: "sharded"), as a string-comparable value.
        self.executor: str = self.executor_decision
        if self.executor == "sharded":
            self.campaign: Campaign = ShardedCampaign(
                self.world,
                campaign_config,
                workers=self.config.workers or None,
                shards=self.config.shards or None,
            )
        elif self.executor == "parallel":
            self.campaign = ParallelCampaign(
                self.world,
                campaign_config,
                workers=self.config.workers or None,
            )
        else:
            self.campaign = Campaign(self.world, campaign_config)
        self._dataset: Optional[Dataset] = None

    @property
    def dataset(self) -> Dataset:
        """The campaign dataset (runs the campaign on first use)."""
        if self._dataset is None:
            self._dataset = self.campaign.run()
        return self._dataset

    def use_dataset(self, dataset: Dataset) -> None:
        """Inject a pre-collected dataset (e.g. loaded from JSONL)."""
        self._dataset = dataset

    # -- tables ---------------------------------------------------------------

    def table1_clients(self) -> List[tuple]:
        """Table 1: measurement clients per operator."""
        counts: Dict[str, int] = {}
        for device in self.campaign.devices:
            counts[device.carrier_key] = counts.get(device.carrier_key, 0) + 1
        rows = []
        for key in (*US_CARRIERS, *SK_CARRIERS):
            operator = self.world.operators[key]
            rows.append(
                (
                    operator.display_name,
                    counts.get(key, 0),
                    operator.country.value,
                )
            )
        return rows

    def table2_domains(self) -> List[tuple]:
        """Table 2: measured domains and their CNAME targets."""
        return [
            (spec.name, spec.cdn_key, spec.edge_name, spec.a_ttl)
            for spec in MEASURED_DOMAINS
        ]

    def table3_ldns_pairs(self) -> List[LdnsPairRow]:
        """Table 3: LDNS pairs and pairing consistency."""
        return ldns_pair_table(self.dataset)

    def table4_reachability(self) -> List[ReachabilityRow]:
        """Table 4: external reachability of cellular resolvers."""
        return probe_external_reachability(self.world, self.dataset)

    def table5_resolver_counts(self) -> List[ResolverCountRow]:
        """Table 5: unique resolver IPs and /24s per provider and kind."""
        return unique_resolver_counts(self.dataset)

    # -- figures ----------------------------------------------------------------

    def fig2_replica_differentials(
        self, carrier: str, domain: Optional[str] = None
    ) -> ReplicaDifferentials:
        """Fig 2: replica latency increase over each user's best replica."""
        return replica_differentials(self.dataset, carrier, domain=domain)

    def fig3_resolution_by_technology(self, carrier: str) -> Dict[str, ECDF]:
        """Fig 3: resolution-time CDFs per radio technology."""
        return resolution_times_by_technology(self.dataset, carrier)

    def fig4_resolver_distance(self, carrier: str) -> Dict[str, ECDF]:
        """Fig 4: pings to client-facing vs external-facing resolvers."""
        return resolver_ping_latencies(self.dataset, carrier)

    def fig5_us_resolution(self) -> Dict[str, ECDF]:
        """Fig 5: local resolution-time CDFs, US carriers."""
        return {
            carrier: resolution_times(self.dataset, carrier)
            for carrier in US_CARRIERS
        }

    def fig6_sk_resolution(self) -> Dict[str, ECDF]:
        """Fig 6: local resolution-time CDFs, SK carriers."""
        return {
            carrier: resolution_times(self.dataset, carrier)
            for carrier in SK_CARRIERS
        }

    def fig7_cache(self) -> CacheComparison:
        """Fig 7: first vs second lookup across the US carriers."""
        return cache_comparison(self.dataset, carriers=list(US_CARRIERS))

    def fig8_resolver_churn(self, device_id: str) -> ResolverTimeline:
        """Fig 8: one device's external-resolver timeline."""
        return resolver_timeline(self.dataset, device_id)

    def fig9_static_timeline(self, device_id: str) -> ResolverTimeline:
        """Fig 9: the same, filtered to the device's home cluster."""
        from repro.analysis.consistency import device_location_centroid

        records = self.dataset.by_device().get(device_id, [])
        centroid = device_location_centroid(records)
        return resolver_timeline(
            self.dataset, device_id, within_km_of=centroid, radius_km=10.0
        )

    def fig10_similarity(
        self, carrier: str, domain: str = "www.buzzfeed.com"
    ) -> SimilarityStudy:
        """Fig 10: replica-set cosine similarity, same vs different /24."""
        return similarity_study(self.dataset, domain, carrier)

    def fig11_public_distance(self, carrier: str) -> Dict[str, ECDF]:
        """Fig 11: pings to cellular LDNS vs public resolvers."""
        return public_resolver_pings(self.dataset, carrier)

    def fig12_google_churn(self, device_id: str) -> ResolverTimeline:
        """Fig 12: Google resolver timeline for one device."""
        return resolver_timeline(self.dataset, device_id, resolver_kind="google")

    def fig13_public_resolution(self, carrier: str) -> Dict[str, ECDF]:
        """Fig 13: resolution times, local vs Google vs OpenDNS."""
        return resolution_times_by_kind(self.dataset, carrier)

    def fig14_public_replicas(
        self, carrier: str, public_kind: str = "google"
    ) -> PublicReplicaComparison:
        """Fig 14: relative replica latency, public vs cellular DNS."""
        return public_replica_comparison(self.dataset, carrier, public_kind)

    def egress_point_counts(self) -> Dict[str, EgressCount]:
        """Sec 5.2: egress points per carrier from traceroutes."""
        return count_egress_points(
            self.dataset, world_ownership_oracle(self.world)
        )

    # -- rendering ------------------------------------------------------------

    def regenerate_report(self, cache=None, reference: bool = False):
        """Every table and figure as one text document (the fast path).

        Delegates to :func:`repro.analysis.suite.regenerate_report`:
        one fused engine scan feeds all artifacts, ``cache`` (an
        :class:`~repro.analysis.result_cache.AnalysisResultCache`)
        replays unchanged datasets, and ``reference=True`` renders the
        byte-identical oracle via the original per-function walks.
        """
        from repro.analysis.suite import regenerate_report

        return regenerate_report(self, reference=reference, cache_store=cache)

    def render_table1(self) -> str:
        """Printable Table 1."""
        return format_table(
            ["Carrier", "# Clients", "Country"],
            self.table1_clients(),
            title="Table 1: measurement clients per operator",
        )

    def render_table3(self) -> str:
        """Printable Table 3."""
        rows = [
            (
                self.world.operators[row.carrier].display_name,
                row.client_addresses,
                row.external_addresses,
                row.pairs,
                f"{row.consistency_pct:.1f}",
            )
            for row in self.table3_ldns_pairs()
        ]
        return format_table(
            ["Provider", "Client", "External", "Pairs", "Consistency %"],
            rows,
            title="Table 3: LDNS pairs seen by mobile clients",
        )

    def render_fig5(self) -> str:
        """Printable Fig 5."""
        return format_cdfs(
            self.fig5_us_resolution(),
            title="Fig 5: DNS resolution time, US carriers",
        )

    def domain_list(self) -> List[str]:
        """The nine measured hostnames."""
        return domain_names()
