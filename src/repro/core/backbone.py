"""Transit backbone and wired vantage points.

Provides the inter-domain glue the cellular operators, CDNs and public DNS
services hang off: a transit AS with a router in every placement city, and
the university network the paper probes cellular resolvers from (Sec 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.addressing import PrefixAllocator
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream
from repro.geo.regions import City, UNIVERSITY_VANTAGE_CITY

#: ASN used for the synthetic transit backbone.
TRANSIT_ASN = 3356
#: ASN of the university vantage network (Northwestern University).
UNIVERSITY_ASN = 103


@dataclass
class TransitBackbone:
    """A flat transit AS with one router per city."""

    system: AutonomousSystem
    routers: List[Host] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        internet: VirtualInternet,
        cities: Sequence[City],
        allocator: PrefixAllocator,
    ) -> "TransitBackbone":
        """Create and register the backbone across the given cities."""
        system = AutonomousSystem(
            asn=TRANSIT_ASN,
            name="Global Transit",
            kind=ASKind.TRANSIT,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        internet.register_system(system)
        backbone = cls(system=system)
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        offset = 1
        for city in cities:
            router = Host(
                ip=prefix.host(offset),
                name=f"transit.{city.name.lower().replace(' ', '-')}",
                asys=system,
                location=city.location,
                stack_latency_ms=0.05,
            )
            internet.register_transit_router(router)
            backbone.routers.append(router)
            offset += 1
        return backbone


@dataclass
class ExternalVantage:
    """A wired university host used for external reachability probing.

    Table 4 of the paper reports how many cellular resolvers answered
    pings and traceroutes launched "from our university network"; this is
    that vantage.
    """

    host: Host

    @classmethod
    def build(
        cls, internet: VirtualInternet, allocator: PrefixAllocator
    ) -> "ExternalVantage":
        """Create and register the vantage host."""
        system = AutonomousSystem(
            asn=UNIVERSITY_ASN,
            name="University Network",
            kind=ASKind.UNIVERSITY,
            firewall=FirewallPolicy(blocks_inbound=False),
        )
        internet.register_system(system)
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        host = Host(
            ip=prefix.host(10),
            name="vantage.university",
            asys=system,
            location=UNIVERSITY_VANTAGE_CITY.location,
            stack_latency_ms=0.05,
        )
        internet.register_host(host)
        return cls(host=host)

    def origin(self, stream: RandomStream) -> ProbeOrigin:
        """A probe origin for one measurement from the campus network."""
        return ProbeOrigin(
            source_ip=self.host.ip,
            asys=self.host.asys,
            location=self.host.location,
            access_rtt_ms=stream.uniform(0.2, 1.0),
            origin_id="university-vantage",
        )


def registry_of_cities(cities: Sequence[City]) -> Dict[str, City]:
    """Index cities by name (convenience for builders)."""
    return {city.name: city for city in cities}
