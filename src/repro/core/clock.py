"""Virtual time.

The study covers 2014-03-01 .. 2014-08-01 (Sec 3.1).  All simulation time is
expressed as float seconds since :data:`STUDY_EPOCH`; helpers convert to and
from :class:`datetime.datetime` for human-readable reports (Figs 8, 9, 12
label their x axes with calendar dates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

#: Start of the paper's measurement window.
STUDY_EPOCH = datetime(2014, 3, 1, tzinfo=timezone.utc)

#: End of the paper's measurement window.
STUDY_END = datetime(2014, 8, 1, tzinfo=timezone.utc)

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: Length of the full study window in seconds (five months).
STUDY_DURATION_S = (STUDY_END - STUDY_EPOCH).total_seconds()


def to_datetime(sim_seconds: float) -> datetime:
    """Convert simulation seconds to an aware UTC datetime."""
    return STUDY_EPOCH + timedelta(seconds=sim_seconds)


def from_datetime(when: datetime) -> float:
    """Convert an aware datetime to simulation seconds."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return (when - STUDY_EPOCH).total_seconds()


def format_day(sim_seconds: float) -> str:
    """Format as the short ``Mar-31`` labels used on the paper's time axes."""
    return to_datetime(sim_seconds).strftime("%b-%d").replace("-0", "-")


@dataclass
class VirtualClock:
    """A monotone virtual clock measured in seconds since the study epoch.

    The clock only moves forward; components that need the current time take
    the clock rather than a float so that long-running campaigns see a
    consistent "now".
    """

    now: float = 0.0
    _advances: int = field(default=0, repr=False)

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        self.now += seconds
        self._advances += 1
        return self.now

    def advance_to(self, target: float) -> float:
        """Move time forward to an absolute instant (no-op if in the past)."""
        if target > self.now:
            self.now = target
            self._advances += 1
        return self.now

    @property
    def datetime(self) -> datetime:
        """The current virtual instant as an aware UTC datetime."""
        return to_datetime(self.now)

    @property
    def day_label(self) -> str:
        """Short calendar label for the current instant (``Mar-31``)."""
        return format_day(self.now)

    def hours_elapsed(self) -> float:
        """Hours since the study epoch."""
        return self.now / SECONDS_PER_HOUR

    def days_elapsed(self) -> float:
        """Days since the study epoch."""
        return self.now / SECONDS_PER_DAY
