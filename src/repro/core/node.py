"""Hosts and probe origins.

A :class:`Host` is a reachable piece of infrastructure with a public IP:
resolvers, egress/ingress routers, transit routers, CDN replicas,
authoritative servers, and the university vantage point.

Mobile devices are *not* hosts: they sit behind carrier NAT with ephemeral
addresses and are never probe targets (that is the opaqueness the paper
measures).  A device instead emits a :class:`ProbeOrigin` per measurement,
describing where its traffic enters the wide-area network at that instant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.asn import AutonomousSystem
from repro.geo.coordinates import GeoPoint

#: Host roles the routing layer keys on.  Kept as plain strings so
#: extensions can add roles without touching this module.
ROLE_HOST = "host"
ROLE_EGRESS = "egress"
ROLE_TRANSIT = "transit"
ROLE_RESOLVER = "resolver"
ROLE_REPLICA = "replica"


class PingPolicy(str, enum.Enum):
    """Which probe origins a host answers ICMP echo for.

    The paper finds asymmetric behaviour: Verizon's external-facing
    resolvers ignore pings from the operator's own clients yet answer the
    open Internet (Fig 4 vs Table 4), while T-Mobile's and SK Telecom's
    answer clients but are walled off externally.
    """

    OPEN = "open"
    INTERNAL_ONLY = "internal_only"
    EXTERNAL_ONLY = "external_only"
    SILENT = "silent"

    def answers(self, same_operator: bool) -> bool:
        """Whether a host with this policy answers a given origin."""
        if self is PingPolicy.OPEN:
            return True
        if self is PingPolicy.INTERNAL_ONLY:
            return same_operator
        if self is PingPolicy.EXTERNAL_ONLY:
            return not same_operator
        return False


@dataclass
class Host:
    """A reachable infrastructure endpoint.

    Attributes
    ----------
    ip:
        Public IPv4 address (unique within a :class:`VirtualInternet`).
    name:
        Human-readable label (useful in reports and debugging).
    asys:
        The autonomous system announcing the address.
    location:
        Physical placement, used for latency computation.
    responds_to_ping:
        Whether the host answers ICMP echo at all.  Cellular external
        resolvers in several carriers silently drop even *internal* pings
        (Fig 4: Verizon and LG U+ external resolvers never answered).
    externally_open:
        Firewall exception: reachable from outside the AS even when the AS
        blocks inbound flows (Table 4: Verizon/AT&T external resolvers).
    interior_penalty_ms:
        Extra RTT for hosts buried inside an operator core, beyond what
        geography explains (deep resolver tiers).
    stack_latency_ms:
        Host processing time added to every answered probe.
    role:
        Topological role of the host (:data:`ROLE_EGRESS`,
        :data:`ROLE_TRANSIT`, ...).  Routing semantics key on this field
        — notably ingress-router selection for inbound probes — so a
        host's display name can change freely without altering paths.
    """

    ip: str
    name: str
    asys: AutonomousSystem
    location: GeoPoint
    responds_to_ping: bool = True
    ping_policy: PingPolicy = PingPolicy.OPEN
    externally_open: bool = False
    interior_penalty_ms: float = 0.0
    stack_latency_ms: float = 0.1
    role: str = ROLE_HOST

    def __str__(self) -> str:
        return f"{self.name} ({self.ip}, {self.asys})"


@dataclass
class PathHop:
    """One hop on a forwarding path (used to synthesise traceroutes)."""

    host: Optional[Host]
    #: Address reported for the hop; None models a hop that never reveals
    #: itself (tunnelled interior, RFC1918 space).
    ip: Optional[str]
    responds: bool
    #: Cumulative one-way latency from the origin to this hop, ms.
    cumulative_ms: float


@dataclass(slots=True)
class ProbeOrigin:
    """Where a measurement originates, at one instant.

    Carries everything the :class:`~repro.core.internet.VirtualInternet`
    needs to time and route a probe: the source AS (firewall identity), the
    physical location, the already-sampled access-network RTT (radio RTT
    for devices; NIC/campus RTT for wired vantage points), the egress
    router the traffic will use, and the interior hops between the source
    and that egress.
    """

    source_ip: str
    asys: AutonomousSystem
    location: GeoPoint
    access_rtt_ms: float
    egress: Optional[Host] = None
    interior_hops: List[PathHop] = field(default_factory=list)
    #: Identifier of the device/vantage that generated the probe.
    origin_id: str = ""

    @property
    def egress_location(self) -> GeoPoint:
        """Where this origin's traffic enters the WAN."""
        if self.egress is not None:
            return self.egress.location
        return self.location
