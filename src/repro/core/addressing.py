"""IPv4 addressing: parsing, prefixes and allocators.

The paper's analysis repeatedly keys on the /24 prefix of resolver and
replica addresses (Figs 8-10, 12, 14; Table 5), so prefix arithmetic is a
first-class substrate here.  Addresses are represented as dotted-quad
strings at API boundaries and as integers internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Set

from repro.core.errors import AddressError, AddressPoolExhausted

_MAX_IPV4 = (1 << 32) - 1


@lru_cache(maxsize=65536)
def ip_to_int(address: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    Raises :class:`AddressError` for anything that is not exactly four
    decimal octets in range.  Cached: analysis passes parse the same
    resolver/replica addresses millions of times.
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"bad octet {part!r} in {address!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= _MAX_IPV4:
        raise AddressError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_valid_ip(address: str) -> bool:
    """True when ``address`` parses as an IPv4 dotted quad."""
    try:
        ip_to_int(address)
    except AddressError:
        return False
    return True


@lru_cache(maxsize=65536)
def prefix24(address: str) -> str:
    """The /24 prefix of an address, formatted ``a.b.c.0/24``.

    This is the aggregation unit used throughout the paper's analysis.
    Cached: the hot paths (ECS options, replica grouping) keep asking
    about the same client and replica addresses.
    """
    value = ip_to_int(address) & 0xFFFFFF00
    return f"{int_to_ip(value)}/24"


def same_prefix24(first: str, second: str) -> bool:
    """True when two addresses share a /24 prefix."""
    return (ip_to_int(first) & 0xFFFFFF00) == (ip_to_int(second) & 0xFFFFFF00)


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address integer + mask length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"bad prefix length {self.length}")
        mask = self.mask
        if self.network & ~mask & _MAX_IPV4:
            raise AddressError(
                f"network {int_to_ip(self.network)} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        try:
            address, length_text = text.split("/")
        except ValueError as exc:
            raise AddressError(f"not CIDR notation: {text!r}") from exc
        if not length_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(ip_to_int(address), int(length_text))

    @property
    def mask(self) -> int:
        """The netmask as an integer."""
        if self.length == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: str) -> bool:
        """True when ``address`` falls inside the prefix."""
        return (ip_to_int(address) & self.mask) == self.network

    def host(self, offset: int) -> str:
        """The address at ``offset`` within the prefix."""
        if not 0 <= offset < self.size:
            raise AddressError(f"offset {offset} outside /{self.length}")
        return int_to_ip(self.network + offset)

    def hosts(self, skip_network_and_broadcast: bool = True) -> Iterator[str]:
        """Iterate usable host addresses within the prefix."""
        start = 1 if (skip_network_and_broadcast and self.length < 31) else 0
        stop = self.size - (1 if (skip_network_and_broadcast and self.length < 31) else 0)
        for offset in range(start, stop):
            yield int_to_ip(self.network + offset)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the sub-prefixes of the given longer length."""
        if new_length < self.length or new_length > 32:
            raise AddressError(f"cannot split /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.size, step):
            yield Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class PrefixAllocator:
    """Hands out disjoint sub-prefixes of a parent prefix.

    Used to give each autonomous system, resolver pool and replica cluster
    its own address block, so /24 aggregation in the analysis behaves the
    way it does on the real Internet.
    """

    def __init__(self, parent: Prefix) -> None:
        self.parent = parent
        self._next_offset = 0

    @classmethod
    def parse(cls, text: str) -> "PrefixAllocator":
        """Build an allocator from CIDR notation."""
        return cls(Prefix.parse(text))

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free sub-prefix of the given length.

        Allocation is first-fit with alignment; mixing lengths is allowed
        as long as requests do not exceed the parent's space.
        """
        if length < self.parent.length or length > 32:
            raise AddressError(
                f"cannot allocate /{length} from {self.parent}"
            )
        size = 1 << (32 - length)
        # Align the offset to the block size (CIDR blocks are aligned).
        offset = (self._next_offset + size - 1) // size * size
        if offset + size > self.parent.size:
            raise AddressPoolExhausted(
                f"{self.parent} exhausted allocating /{length}"
            )
        self._next_offset = offset + size
        return Prefix(self.parent.network + offset, length)

    def allocate24(self) -> Prefix:
        """Allocate the next /24 (the common case in this simulation)."""
        return self.allocate(24)

    @property
    def remaining(self) -> int:
        """Number of addresses not yet covered by an allocation."""
        return self.parent.size - self._next_offset


@dataclass
class AddressPool:
    """Leases individual host addresses out of a set of prefixes.

    Models both static assignment (resolvers, replicas) and the churning
    NAT pools cellular operators draw client addresses from.
    """

    prefixes: List[Prefix] = field(default_factory=list)
    _cursor: int = field(default=0, repr=False)
    _leased: Set[str] = field(default_factory=set, repr=False)

    def add_prefix(self, prefix: Prefix) -> None:
        """Add a prefix to draw addresses from."""
        self.prefixes.append(prefix)

    def lease(self) -> str:
        """Lease the next unused host address."""
        total = sum(max(prefix.size - 2, 1) for prefix in self.prefixes)
        if len(self._leased) >= total:
            raise AddressPoolExhausted("address pool exhausted")
        while True:
            address = self._address_at(self._cursor)
            self._cursor += 1
            if address not in self._leased:
                self._leased.add(address)
                return address

    def release(self, address: str) -> None:
        """Return a leased address to the pool."""
        self._leased.discard(address)

    def lease_many(self, count: int) -> List[str]:
        """Lease ``count`` addresses."""
        return [self.lease() for _ in range(count)]

    def _address_at(self, index: int) -> str:
        sizes = [max(prefix.size - 2, 1) for prefix in self.prefixes]
        total = sum(sizes)
        index %= total
        for prefix, size in zip(self.prefixes, sizes):
            if index < size:
                offset = index + (1 if prefix.length < 31 else 0)
                return prefix.host(offset)
            index -= size
        raise AddressPoolExhausted("no prefixes in pool")

    def __contains__(self, address: str) -> bool:
        return any(prefix.contains(address) for prefix in self.prefixes)
