"""Simulation core: time, randomness, addressing, ASes and the Internet."""

from repro.core.addressing import (
    AddressPool,
    Prefix,
    PrefixAllocator,
    int_to_ip,
    ip_to_int,
    prefix24,
    same_prefix24,
)
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.clock import STUDY_DURATION_S, STUDY_EPOCH, VirtualClock
from repro.core.errors import ReproError
from repro.core.internet import TracerouteHop, TracerouteResult, VirtualInternet
from repro.core.node import Host, PathHop, PingPolicy, ProbeOrigin
from repro.core.rng import RandomStream, RngRegistry

__all__ = [
    "AddressPool",
    "Prefix",
    "PrefixAllocator",
    "int_to_ip",
    "ip_to_int",
    "prefix24",
    "same_prefix24",
    "ASKind",
    "AutonomousSystem",
    "FirewallPolicy",
    "STUDY_DURATION_S",
    "STUDY_EPOCH",
    "VirtualClock",
    "ReproError",
    "TracerouteHop",
    "TracerouteResult",
    "VirtualInternet",
    "Host",
    "PathHop",
    "PingPolicy",
    "ProbeOrigin",
    "RandomStream",
    "RngRegistry",
]
