"""Autonomous systems and their reachability policies.

The paper's "cellular network opaqueness" finding (Sec 4.4) is a property
of operator firewall/NAT policy: externally originated flows are dropped,
so cellular DNS infrastructure can only be measured from devices inside
the network.  We model that policy at the AS level, with per-host
exceptions for the resolvers that *did* answer external pings (Table 4:
Verizon and AT&T majorities, a small fraction of Sprint).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.addressing import Prefix


class ASKind(str, enum.Enum):
    """Role of an autonomous system in the simulation."""

    CELLULAR = "cellular"
    TRANSIT = "transit"
    CDN = "cdn"
    PUBLIC_DNS = "public_dns"
    UNIVERSITY = "university"
    CONTENT = "content"


@dataclass
class FirewallPolicy:
    """Inbound-flow policy for an AS.

    ``blocks_inbound`` drops flows initiated outside the AS (cellular NAT
    and firewall behaviour, Wang et al. [24]).  Responses to flows the AS
    itself initiated always pass (NAT state).  ``tunneled_interior`` hides
    interior hops from traceroute (MPLS/VPN tunnelling, Sec 4.2).
    """

    blocks_inbound: bool = False
    tunneled_interior: bool = False

    def admits(self, origin_asn: int, own_asn: int, host_is_open: bool) -> bool:
        """True when a flow from ``origin_asn`` may reach a host inside."""
        if not self.blocks_inbound:
            return True
        if origin_asn == own_asn:
            return True
        return host_is_open


@dataclass
class AutonomousSystem:
    """A named AS owning address space and a firewall policy."""

    asn: int
    name: str
    kind: ASKind
    firewall: FirewallPolicy = field(default_factory=FirewallPolicy)
    prefixes: List[Prefix] = field(default_factory=list)
    #: Operator group this AS belongs to (e.g. Verizon's client-facing and
    #: external-facing resolver ASes are distinct ASes of one operator).
    operator_key: Optional[str] = None

    def add_prefix(self, prefix: Prefix) -> None:
        """Announce another prefix from this AS."""
        self.prefixes.append(prefix)

    def originates(self, address: str) -> bool:
        """True when ``address`` is inside a prefix announced by this AS."""
        return any(prefix.contains(address) for prefix in self.prefixes)

    @property
    def is_cellular(self) -> bool:
        """True for cellular-operator ASes."""
        return self.kind is ASKind.CELLULAR

    def __str__(self) -> str:
        return f"AS{self.asn} {self.name}"

    def __hash__(self) -> int:
        return hash(self.asn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AutonomousSystem):
            return NotImplemented
        return self.asn == other.asn
