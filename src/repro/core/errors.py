"""Exception hierarchy for the reproduction package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Network-behaviour errors
(unreachable hosts, dropped probes) are *not* exceptions: the paper's
methodology treats them as first-class measurement outcomes, and so do we.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string could not be parsed or allocated."""


class AddressPoolExhausted(AddressError):
    """An allocator ran out of address space."""


class DNSError(ReproError):
    """Base class for DNS substrate errors."""


class DNSDecodeError(DNSError, ValueError):
    """A DNS wire-format message could not be decoded."""


class DNSEncodeError(DNSError, ValueError):
    """A DNS message could not be encoded to wire format."""


class ZoneError(DNSError, ValueError):
    """A zone file or zone data structure is invalid."""


class ResolutionError(DNSError):
    """A recursive resolution failed (SERVFAIL-class conditions)."""


class TopologyError(ReproError, ValueError):
    """A network topology is malformed (unknown node, duplicate IP...)."""


class ConfigError(ReproError, ValueError):
    """A simulation, carrier or study configuration is invalid."""


class DatasetError(ReproError, ValueError):
    """A measurement dataset could not be read, written or validated."""


class TruncatedDatasetError(DatasetError):
    """An archive or shard ends in a partial record (crash mid-write).

    Carries what a resume/reconcile pass needs to treat the file as an
    *incomplete prefix* rather than garbage: how many clean records
    precede the torn tail, and the tail itself.
    """

    def __init__(self, message: str, clean_records: int = 0,
                 partial_line: str = ""):
        super().__init__(message)
        #: Records that parsed cleanly before the torn tail.
        self.clean_records = clean_records
        #: The partial final line (may be long; kept for diagnostics).
        self.partial_line = partial_line
