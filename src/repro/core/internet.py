"""The virtual Internet: address registry, reachability and timing.

This is the substrate every probe rides on.  It knows which autonomous
system announces each prefix, which hosts exist, what the firewall policy
between two ASes allows, and how long a round trip takes given both
endpoints' physical placement.

Three probe primitives mirror the paper's methodology (Sec 3.2):

* :meth:`VirtualInternet.measure_rtt` -- ICMP echo (ping) semantics.
* :meth:`VirtualInternet.flow_rtt` -- transport flow semantics (DNS over
  UDP, HTTP over TCP): a host that ignores pings still serves flows.
* :meth:`VirtualInternet.traceroute` -- hop-by-hop TTL probing, including
  the tunnelled-interior and ingress-filtering behaviour that makes
  cellular networks opaque (Sec 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.addressing import ip_to_int
from repro.core.asn import AutonomousSystem
from repro.core.errors import TopologyError
from repro.core.node import ROLE_EGRESS, ROLE_TRANSIT, Host, PathHop, ProbeOrigin
from repro.core.rng import RandomStream
from repro.geo.coordinates import GeoPoint
from repro.geo.latency import WanLatencyModel

_MAX_IPV4 = (1 << 32) - 1

#: Sentinel distinguishing "memoised None" from "not memoised yet".
_MISSING = object()


@dataclass
class TracerouteHop:
    """One line of traceroute output."""

    ttl: int
    ip: Optional[str]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        """False for the ``* * *`` lines."""
        return self.ip is not None and self.rtt_ms is not None


@dataclass
class TracerouteResult:
    """A complete traceroute: hops plus whether the destination answered."""

    destination_ip: str
    hops: List[TracerouteHop] = field(default_factory=list)
    reached: bool = False

    def responding_ips(self) -> List[str]:
        """Addresses of all hops that answered, in path order."""
        return [hop.ip for hop in self.hops if hop.responded and hop.ip]


@dataclass(slots=True)
class RouteView:
    """Deterministic routing facts between one origin AS and one target.

    Everything here is a pure function of the (static) topology plus the
    origin's AS — no latency samples, no stream draws — so a probe
    session may compute it once per target and reuse it across the
    ping → traceroute → HTTP sequence of one experiment.  Passing a view
    back into the probe primitives skips the host lookup and firewall
    evaluation but changes no observable result.
    """

    destination: Optional[Host]
    same_operator: bool = False
    admits: bool = False
    answers_ping: bool = False


class VirtualInternet:
    """Registry of ASes and hosts, plus routing/timing semantics."""

    def __init__(
        self,
        wan_model: Optional[WanLatencyModel] = None,
        intra_model: Optional[WanLatencyModel] = None,
    ) -> None:
        #: Model for inter-AS (wide-area) segments.
        self.wan_model = wan_model or WanLatencyModel()
        #: Model for operator-interior segments: more inflation (backhaul
        #: detours through regional aggregation), slightly more overhead.
        self.intra_model = intra_model or WanLatencyModel(
            path_inflation=1.8, hop_overhead_ms=0.4, min_rtt_ms=0.8, jitter_sigma=0.10
        )
        self._systems: Dict[int, AutonomousSystem] = {}
        self._hosts: Dict[str, Host] = {}
        #: Transit routers by rough location, used to synthesise paths.
        self._transit_routers: List[Host] = []
        #: Egress-role hosts per ASN (ingress-router candidates).
        self._egress_hosts: Dict[int, List[Host]] = {}
        #: Longest-prefix-match index: prefix length -> {masked net -> asn},
        #: rebuilt whenever the announced-prefix population changes.
        self._lpm_by_length: Dict[int, Dict[int, int]] = {}
        self._lpm_lengths: List[int] = []
        self._lpm_generation: Tuple[int, int] = (-1, -1)
        #: Memo of the nearest transit router per exact coordinate pair.
        self._transit_near_memo: Dict[Tuple[float, float], Optional[Host]] = {}
        #: World-level route-view memo.  ``route_view`` is pure in
        #: ``(origin.asys, destination_ip)`` and topology is static once
        #: built, so one entry serves every device on an AS for the whole
        #: campaign (cleared if registration mutates the topology).
        self._route_memo: Dict[Tuple[int, str], RouteView] = {}
        #: Memo of the ingress router per (asn, destination coordinates).
        self._ingress_memo: Dict[Tuple[int, float, float], Optional[Host]] = {}

    # -- registration ------------------------------------------------------

    def register_system(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS (idempotent for the same ASN/name pair)."""
        existing = self._systems.get(asys.asn)
        if existing is not None:
            if existing is not asys:
                raise TopologyError(f"ASN {asys.asn} registered twice")
            return existing
        self._systems[asys.asn] = asys
        self._route_memo.clear()
        return asys

    def register_host(self, host: Host) -> Host:
        """Register a host; its AS must be registered and announce its IP."""
        if host.ip in self._hosts:
            raise TopologyError(f"duplicate host IP {host.ip}")
        if host.asys.asn not in self._systems:
            raise TopologyError(f"host {host.ip} in unregistered {host.asys}")
        if not host.asys.originates(host.ip):
            raise TopologyError(
                f"{host.ip} not inside any prefix announced by {host.asys}"
            )
        self._hosts[host.ip] = host
        self._route_memo.clear()
        if host.role == ROLE_EGRESS:
            self._egress_hosts.setdefault(host.asys.asn, []).append(host)
            self._ingress_memo.clear()
        return host

    def register_transit_router(self, host: Host) -> Host:
        """Register a backbone router used when synthesising paths."""
        if host.role != ROLE_TRANSIT:
            host.role = ROLE_TRANSIT
        self.register_host(host)
        self._transit_routers.append(host)
        self._transit_near_memo.clear()
        return host

    # -- lookups -------------------------------------------------------------

    def host(self, ip: str) -> Optional[Host]:
        """The host registered at ``ip``, if any."""
        return self._hosts.get(ip)

    def system(self, asn: int) -> Optional[AutonomousSystem]:
        """The AS registered with ``asn``, if any."""
        return self._systems.get(asn)

    def systems(self) -> List[AutonomousSystem]:
        """All registered ASes."""
        return list(self._systems.values())

    def hosts(self) -> List[Host]:
        """All registered hosts."""
        return list(self._hosts.values())

    def asn_of(self, ip: str) -> Optional[int]:
        """Longest-prefix-match origin ASN for an address (whois stand-in).

        Served from a per-length hash index (one masked lookup per
        distinct prefix length, longest first) instead of scanning every
        AS x prefix pair.  The index transparently rebuilds when systems
        or prefixes are added, so late announcements — operator CDN
        extensions claim prefixes well after world construction — are
        always visible.
        """
        self._ensure_lpm_index()
        value = ip_to_int(ip)
        for length in self._lpm_lengths:
            mask = 0 if length == 0 else (_MAX_IPV4 << (32 - length)) & _MAX_IPV4
            asn = self._lpm_by_length[length].get(value & mask)
            if asn is not None:
                return asn
        return None

    def asn_of_linear(self, ip: str) -> Optional[int]:
        """Reference O(systems x prefixes) scan behind :meth:`asn_of`.

        Kept as the executable specification the indexed path is tested
        and benchmarked against.
        """
        best_asn = None
        best_length = -1
        for asys in self._systems.values():
            for prefix in asys.prefixes:
                if prefix.length > best_length and prefix.contains(ip):
                    best_asn = asys.asn
                    best_length = prefix.length
        return best_asn

    def _ensure_lpm_index(self) -> None:
        """(Re)build the LPM index when the prefix population changed.

        Prefixes are only ever added, so (#systems, #prefixes) is a
        complete change detector, and checking it is ~20 integer adds —
        far cheaper than one linear scan used to be.
        """
        generation = (
            len(self._systems),
            sum(len(asys.prefixes) for asys in self._systems.values()),
        )
        if generation == self._lpm_generation:
            return
        by_length: Dict[int, Dict[int, int]] = {}
        for asys in self._systems.values():
            for prefix in asys.prefixes:
                # setdefault preserves the first-registered-wins tie rule
                # of the linear scan for duplicate announcements.
                by_length.setdefault(prefix.length, {}).setdefault(
                    prefix.network, asys.asn
                )
        self._lpm_by_length = by_length
        self._lpm_lengths = sorted(by_length, reverse=True)
        self._lpm_generation = generation

    # -- reachability ---------------------------------------------------------

    def admits_flow(self, origin: ProbeOrigin, destination: Host) -> bool:
        """Whether firewalls allow a flow from ``origin`` to the host.

        Sibling ASes of one operator (Verizon's 6167/22394 split) trust
        each other; everything else is decided by the destination AS
        firewall policy.
        """
        same_operator = (
            destination.asys.operator_key is not None
            and destination.asys.operator_key == origin.asys.operator_key
        )
        if same_operator:
            return True
        return destination.asys.firewall.admits(
            origin.asys.asn, destination.asys.asn, destination.externally_open
        )

    def route_view(self, origin: ProbeOrigin, destination_ip: str) -> RouteView:
        """Precompute the deterministic routing facts for one target.

        The verdicts mirror, bit for bit, the checks
        :meth:`measure_rtt`/:meth:`flow_rtt` perform inline; only
        ``origin.asys`` participates, so one view is valid for every
        probe a device issues during an experiment (topology is static
        over a campaign).  Memoised world-wide on ``(asn, ip)`` — every
        device behind one AS shares the entry across sessions.
        """
        return self.route_view_for(origin.asys, destination_ip)

    def route_view_for(
        self, asys: AutonomousSystem, destination_ip: str
    ) -> RouteView:
        """:meth:`route_view` keyed directly by the origin AS.

        The view depends on the origin only through its AS, so callers
        that have not sampled a :class:`ProbeOrigin` yet (the fused
        probe paths) skip constructing a throwaway one.
        """
        key = (asys.asn, destination_ip)
        memo = self._route_memo
        view = memo.get(key)
        if view is not None:
            return view
        destination = self._hosts.get(destination_ip)
        if destination is None:
            view = RouteView(destination=None)
        else:
            same_operator = (
                destination.asys.operator_key is not None
                and destination.asys.operator_key == asys.operator_key
            )
            admits = same_operator or destination.asys.firewall.admits(
                asys.asn, destination.asys.asn, destination.externally_open
            )
            answers_ping = (
                destination.responds_to_ping
                and destination.ping_policy.answers(same_operator)
                and admits
            )
            view = RouteView(
                destination=destination,
                same_operator=same_operator,
                admits=admits,
                answers_ping=answers_ping,
            )
        memo[key] = view
        return view

    # -- timing ---------------------------------------------------------------

    def _one_way_budget_ms(
        self,
        origin: ProbeOrigin,
        destination: Host,
        stream: RandomStream,
        same_operator: Optional[bool] = None,
    ) -> float:
        """RTT between origin and destination, before destination stack time."""
        if same_operator is None:
            same_operator = (
                destination.asys.operator_key is not None
                and destination.asys.operator_key == origin.asys.operator_key
            )
        # Legs are drawn inline from the models' memoised (base, ln(base))
        # parameters — same draws, same order as ``rtt_ms`` would make,
        # minus one call frame per leg on this per-probe path.
        intra = self.intra_model
        if same_operator:
            # Interior path: radio/access plus tunnelled core distance.
            base, log_base = intra.leg_params(
                origin.location, destination.location
            )
            sigma = intra.jitter_sigma
            interior = (
                math.exp(log_base + sigma * stream.std_gauss())
                if sigma > 0
                else base
            )
            return origin.access_rtt_ms + interior + destination.interior_penalty_ms
        # Exterior path: access + core to egress + WAN + destination interior.
        egress_location = origin.egress_location
        base, log_base = intra.leg_params(origin.location, egress_location)
        sigma = intra.jitter_sigma
        core = (
            math.exp(log_base + sigma * stream.std_gauss())
            if sigma > 0
            else base
        )
        wan_model = self.wan_model
        base, log_base = wan_model.leg_params(
            egress_location, destination.location
        )
        sigma = wan_model.jitter_sigma
        wan = (
            math.exp(log_base + sigma * stream.std_gauss())
            if sigma > 0
            else base
        )
        return (
            origin.access_rtt_ms + core + wan + destination.interior_penalty_ms
        )

    def flow_sampler(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        route: Optional[RouteView] = None,
    ):
        """Precompiled per-pair RTT sampler, or None when unreachable.

        Folds everything deterministic about a (origin, destination)
        flow — routing verdict, leg decomposition, base RTTs and their
        log-medians, fixed access/stack budgets — into a closure whose
        calls consume *exactly* the random draws :meth:`flow_rtt` would
        (same legs, same parameters, same order) and return bit-identical
        values.  Valid only while the origin's location, egress and
        access budget stay fixed: true for resolver origins, which issue
        every upstream DNS query from one immutable vantage; device
        origins are resampled per probe and must keep using
        :meth:`flow_rtt`.
        """
        if route is None:
            route = self.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None or not route.admits:
            return None
        # The sum below must keep flow_rtt's exact association order —
        # access + legs... + penalty + stack, left to right — because
        # float addition does not associate and the results feed the
        # bit-identical dataset hash.
        access = origin.access_rtt_ms
        penalty = destination.interior_penalty_ms
        stack = destination.stack_latency_ms
        intra = self.intra_model
        if route.same_operator:
            leg = intra.leg_sampler(origin.location, destination.location)
            return (
                lambda stream, _a=access, _leg=leg, _p=penalty, _s=stack: (
                    _a + _leg(stream) + _p + _s
                )
            )
        wan = self.wan_model
        if intra.jitter_sigma > 0 and wan.jitter_sigma > 0:
            # Common case, flattened: both legs draw, so the closure
            # inlines lognormal_from_log's arithmetic around the raw
            # Gaussian source (same expression, so bit-identical) — the
            # deepest frames of the simulator's single hottest call.
            _, log_core = intra.leg_params(
                origin.location, origin.egress_location
            )
            _, log_wan = wan.leg_params(
                origin.egress_location, destination.location
            )
            return (
                lambda stream, _a=access, _m1=log_core,
                _s1=intra.jitter_sigma, _m2=log_wan, _s2=wan.jitter_sigma,
                _p=penalty, _s=stack, _exp=math.exp: (
                    _a
                    + _exp(_m1 + _s1 * stream.std_gauss())
                    + _exp(_m2 + _s2 * stream.std_gauss())
                    + _p
                    + _s
                )
            )
        leg_one = intra.leg_sampler(origin.location, origin.egress_location)
        leg_two = wan.leg_sampler(origin.egress_location, destination.location)
        return (
            lambda stream, _a=access, _l1=leg_one, _l2=leg_two,
            _p=penalty, _s=stack: (
                _a + _l1(stream) + _l2(stream) + _p + _s
            )
        )

    def flow_program(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        route: Optional[RouteView] = None,
    ):
        """Declarative form of :meth:`flow_sampler`: ``(c0, terms, trail, n)``.

        ``None`` when unreachable.  Evaluating::

            v = c0
            for (log_base, sigma) in terms:   # n == len(terms) draws
                v += exp(log_base + sigma * z)
            for const in trail:
                v += const

        with ``z`` values from ``stream.gauss_block(n)`` reproduces the
        closure's sum bit for bit: float addition is left-associated in
        both forms, jitter-free *leading* legs fold into ``c0`` at
        compile time (same operands, same order), jitter-free *trailing*
        legs join the penalty/stack constants in ``trail``.  Because the
        draw count is static, callers replaying a chain of programs can
        pre-count every Gaussian and consume one contiguous pool slice
        instead of one closure call per hop.
        """
        if route is None:
            route = self.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None or not route.admits:
            return None
        c0 = origin.access_rtt_ms
        terms = []
        trail = []
        penalty = destination.interior_penalty_ms
        stack = destination.stack_latency_ms
        intra = self.intra_model
        if route.same_operator:
            legs = (intra.leg_program(origin.location, destination.location),)
        else:
            legs = (
                intra.leg_program(origin.location, origin.egress_location),
                self.wan_model.leg_program(
                    origin.egress_location, destination.location
                ),
            )
        for leg in legs:
            if leg[1] > 0:
                terms.append(leg)
            elif terms:
                trail.append(leg[0])
            else:
                c0 += leg[0]
        trail.append(penalty)
        trail.append(stack)
        return (c0, tuple(terms), tuple(trail), len(terms))

    def flow_rtt(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        route: Optional[RouteView] = None,
    ) -> Optional[float]:
        """RTT for a transport flow (DNS/HTTP); None when unreachable."""
        if route is None:
            route = self.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None or not route.admits:
            return None
        return (
            self._one_way_budget_ms(
                origin, destination, stream, same_operator=route.same_operator
            )
            + destination.stack_latency_ms
        )

    def measure_rtt(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        route: Optional[RouteView] = None,
    ) -> Optional[float]:
        """Ping RTT; None for firewalled, absent or silent destinations."""
        if route is None:
            route = self.route_view(origin, destination_ip)
        destination = route.destination
        if destination is None or not route.answers_ping:
            return None
        return (
            self._one_way_budget_ms(
                origin, destination, stream, same_operator=route.same_operator
            )
            + destination.stack_latency_ms
        )

    # -- traceroute -------------------------------------------------------------

    def _transit_router_near(self, location: GeoPoint) -> Optional[Host]:
        """Nearest registered backbone router to a location.

        Memoised on exact coordinates: traceroute sources and targets
        recur from a small set of city placements, so the nearest-router
        search runs once per distinct point instead of once per probe.
        """
        if not self._transit_routers:
            return None
        key = (location.latitude, location.longitude)
        cached = self._transit_near_memo.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        nearest = min(
            self._transit_routers,
            key=lambda router: router.location.distance_km(location),
        )
        self._transit_near_memo[key] = nearest
        return nearest

    def traceroute(
        self,
        origin: ProbeOrigin,
        destination_ip: str,
        stream: RandomStream,
        max_ttl: int = 30,
        route: Optional[RouteView] = None,
    ) -> TracerouteResult:
        """Synthesise a traceroute with the paper's observed semantics.

        * Origin-side interior hops are tunnelled: they appear as ``*``.
        * The origin's egress router answers (this is how Sec 5.2 counts
          egress points: previous hop of the first address outside the
          operator's prefixes).
        * Transit routers answer.
        * Probes toward a cellular-interior destination die after the
          operator's ingress router (Table 4: zero traceroutes complete).
        """
        result = TracerouteResult(destination_ip=destination_ip)
        if route is None:
            route = self.route_view(origin, destination_ip)
        destination = route.destination
        ttl = 0

        def add(ip: Optional[str], rtt: Optional[float]) -> None:
            nonlocal ttl
            ttl += 1
            result.hops.append(TracerouteHop(ttl=ttl, ip=ip, rtt_ms=rtt))

        # 1. interior hops on the origin side (tunnelled -> silent).
        for hop in origin.interior_hops:
            add(hop.ip if hop.responds else None, None)

        # 2. the origin's egress router, if it has one.
        egress_rtt = None
        if origin.egress is not None:
            egress_rtt = origin.access_rtt_ms + self.intra_model.rtt_ms(
                origin.location, origin.egress_location, stream
            )
            add(origin.egress.ip, egress_rtt)

        if destination is None:
            # Unroutable destination: trail off with stars.
            for _ in range(3):
                add(None, None)
            return result

        # 3. transit hops between egress and destination.
        base = egress_rtt if egress_rtt is not None else origin.access_rtt_ms
        src_router = self._transit_router_near(origin.egress_location)
        dst_router = self._transit_router_near(destination.location)
        wan_rtt = self.wan_model.rtt_ms(
            origin.egress_location, destination.location, stream
        )
        transit_path: List[Host] = []
        if src_router is not None:
            transit_path.append(src_router)
        if dst_router is not None and dst_router is not src_router:
            transit_path.append(dst_router)
        for index, router in enumerate(transit_path, start=1):
            fraction = index / (len(transit_path) + 1)
            add(router.ip, base + wan_rtt * fraction)

        # 4. destination side.
        destination_is_interior = (
            destination.asys.firewall.blocks_inbound
            and destination.asys.operator_key != origin.asys.operator_key
        )
        if destination_is_interior:
            ingress = self._ingress_router_for(destination)
            if ingress is not None and ingress.ip != (
                origin.egress.ip if origin.egress else None
            ):
                add(ingress.ip, base + wan_rtt)
            # Probes never penetrate beyond the ingress point.
            for _ in range(3):
                add(None, None)
            return result

        if not route.admits:
            for _ in range(3):
                add(None, None)
            return result

        final_rtt = self.measure_rtt(origin, destination_ip, stream, route=route)
        if final_rtt is None and destination.responds_to_ping is False:
            add(None, None)
            return result
        add(destination.ip, final_rtt if final_rtt is not None else base + wan_rtt)
        result.reached = True
        return result

    def _ingress_router_for(self, destination: Host) -> Optional[Host]:
        """The operator border router an inbound probe would hit.

        Candidates are the destination AS's egress-*role* hosts (kept in
        a per-ASN side index at registration), and the nearest-candidate
        search is memoised per (ASN, destination coordinates).
        """
        key = (
            destination.asys.asn,
            destination.location.latitude,
            destination.location.longitude,
        )
        cached = self._ingress_memo.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        candidates = self._egress_hosts.get(destination.asys.asn)
        ingress = None
        if candidates:
            ingress = min(
                candidates,
                key=lambda host: host.location.distance_km(destination.location),
            )
        self._ingress_memo[key] = ingress
        return ingress
