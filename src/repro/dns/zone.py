"""Authoritative zone data.

A :class:`Zone` owns a subtree of the namespace, stores records, and
answers lookups with in-zone CNAME chasing — the behaviour the paper's
nine domains rely on ("their DNS resolution initially resulted in a
canonical name (CNAME) record, indicating the use of DNS based load
balancing", Sec 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ZoneError
from repro.dns.message import (
    RCode,
    ResourceRecord,
    RRType,
    name_within,
    normalize_name,
)

#: Hard cap on in-zone CNAME chain length (loop protection).
MAX_CNAME_CHAIN = 8


@dataclass
class Zone:
    """Records for one zone apex and everything under it."""

    apex: str
    records: Dict[Tuple[str, RRType], List[ResourceRecord]] = field(
        default_factory=dict
    )
    #: Bumped on every mutation through :meth:`add`/:meth:`remove`.
    #: Compiled resolution plans (``repro.dns.recursive``) stamp the
    #: version they were built against and recompile on mismatch, so
    #: zone edits can never be served from a stale plan.
    version: int = 0

    def __post_init__(self) -> None:
        self.apex = normalize_name(self.apex)

    # -- building ---------------------------------------------------------

    def add(self, record: ResourceRecord) -> None:
        """Add one record; it must live inside the zone."""
        if not name_within(record.name, self.apex):
            raise ZoneError(f"{record.name} is outside zone {self.apex}")
        self.records.setdefault((record.name, record.rtype), []).append(record)
        self.version += 1

    def add_a(self, name: str, addresses: Iterable[str], ttl: int) -> None:
        """Add an A record set."""
        for address in addresses:
            self.add(ResourceRecord(name, RRType.A, ttl, address))

    def add_cname(self, name: str, target: str, ttl: int) -> None:
        """Add a CNAME; a name may carry only one."""
        key = (normalize_name(name), RRType.CNAME)
        if key in self.records:
            raise ZoneError(f"duplicate CNAME at {name}")
        self.add(ResourceRecord(name, RRType.CNAME, ttl, target))

    def remove(self, name: str, rtype: RRType) -> None:
        """Delete a record set if present."""
        self.records.pop((normalize_name(name), rtype), None)
        self.version += 1

    # -- lookups -------------------------------------------------------------

    def contains(self, name: str) -> bool:
        """True when the name falls under this zone's apex."""
        return name_within(name, self.apex)

    def get(self, name: str, rtype: RRType) -> List[ResourceRecord]:
        """The record set for (name, type), or empty."""
        return list(self.records.get((normalize_name(name), rtype), []))

    def lookup(self, qname: str, qtype: RRType) -> Tuple[RCode, List[ResourceRecord]]:
        """Answer a query, chasing CNAMEs while the target stays in-zone.

        Returns the rcode and the answer-section records.  A chain that
        leaves the zone ends with the last CNAME; the resolver is expected
        to continue at the right authority.
        """
        qname = normalize_name(qname)
        if not self.contains(qname):
            return RCode.REFUSED, []
        answers: List[ResourceRecord] = []
        current = qname
        for _ in range(MAX_CNAME_CHAIN):
            direct = self.get(current, qtype)
            if direct:
                answers.extend(direct)
                return RCode.NOERROR, answers
            cnames = self.get(current, RRType.CNAME)
            if not cnames and qtype is not RRType.CNAME:
                break
            if not cnames:
                break
            answers.extend(cnames)
            current = cnames[0].data
            if not self.contains(current):
                return RCode.NOERROR, answers
        if answers:
            return RCode.NOERROR, answers
        if self._name_exists(qname):
            return RCode.NOERROR, []  # NODATA
        return RCode.NXDOMAIN, []

    def _name_exists(self, name: str) -> bool:
        return any(existing == name for existing, _ in self.records)

    def names(self) -> List[str]:
        """All owner names in the zone."""
        return sorted({name for name, _ in self.records})

    def __len__(self) -> int:
        return sum(len(rrset) for rrset in self.records.values())

    def __str__(self) -> str:
        return f"Zone({self.apex or '.'}, {len(self)} records)"


@dataclass
class ZoneDirectory:
    """Maps names to the zone (and its owner) that should answer them.

    Stands in for the root/TLD referral machinery: resolvers in this
    simulation know which authority serves each zone, mirroring the warm
    caches real recursive resolvers keep for NS records of popular zones.
    """

    zones: Dict[str, object] = field(default_factory=dict)
    _lookup_memo: Dict[str, Optional[object]] = field(default_factory=dict)
    #: Shared compile-walk skeletons, keyed (qname, qtype, client_subnet):
    #: the authority chain one engine discovered, published for every
    #: other engine resolving through this directory.  The chain (which
    #: authorities answer, in what order, with which static records) is a
    #: property of the zone data — engine-independent — so a first-touch
    #: engine can rebuild its private compiled plan from the skeleton and
    #: skip the generic walk.  ``None`` marks a chain proven uncompilable.
    #: Entries are version-stamped and re-validated by readers; writers in
    #: ``repro.dns.recursive`` cap the population.
    chain_memo: Dict[tuple, Optional[tuple]] = field(default_factory=dict)
    #: Bumped whenever the zone set changes; resolution plans compiled
    #: against an older directory layout are discarded on mismatch.
    version: int = 0

    def register(self, apex: str, authority: object) -> None:
        """Register the authority serving ``apex``."""
        apex = normalize_name(apex)
        if apex in self.zones:
            raise ZoneError(f"zone {apex} already registered")
        self.zones[apex] = authority
        self._lookup_memo.clear()
        self.chain_memo.clear()
        self.version += 1

    def authority_for(self, qname: str) -> Optional[object]:
        """Longest-suffix-match authority for a name."""
        qname = normalize_name(qname)
        if qname in self._lookup_memo:
            return self._lookup_memo[qname]
        best: Optional[object] = None
        best_length = -1
        for apex, authority in self.zones.items():
            if name_within(qname, apex) and len(apex) > best_length:
                best = authority
                best_length = len(apex)
        if len(self._lookup_memo) < 65536:
            self._lookup_memo[qname] = best
        return best
