"""Authoritative DNS servers.

Two flavours matter to the study:

* :class:`StaticAuthority` serves ordinary zone data (the origin zones of
  the nine measured domains, before they CNAME into a CDN).
* :class:`ResolverEchoAuthority` implements the Mao et al. [16] technique
  from Sec 3.2: the authority for a controlled zone answers every query
  with an A record carrying *the address of the resolver that asked*,
  which is how devices discover their external-facing LDNS address.

CDN authorities (answers depend on the querying resolver's /24) subclass
:class:`Authority` in :mod:`repro.cdn.provider`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.node import Host
from repro.dns.message import (
    DNSMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_response,
    name_within,
    normalize_name,
)
from repro.dns.zone import Zone


@dataclass
class Authority:
    """Base class: an authoritative server bound to a host."""

    host: Host
    zone_apex: str

    def __post_init__(self) -> None:
        self.zone_apex = normalize_name(self.zone_apex)

    def serves(self, qname: str) -> bool:
        """True when this authority is responsible for ``qname``."""
        return name_within(qname, self.zone_apex)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        """Answer a query arriving from ``client_ip`` at virtual ``now``.

        ``client_subnet`` carries an EDNS Client Subnet option (a /24 in
        presentation form) when the querying resolver forwards one; the
        base study never sends it, the ECS extension does.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        return f"{type(self).__name__}({self.zone_apex or '.'} @ {self.host.ip})"


@dataclass
class StaticAuthority(Authority):
    """Serves fixed zone data."""

    zone: Optional[Zone] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.zone is None:
            self.zone = Zone(self.zone_apex)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        question = query.question
        if question is None:
            return make_response(query, rcode=RCode.FORMERR)
        if not self.serves(question.qname):
            return make_response(query, rcode=RCode.REFUSED)
        rcode, answers = self.zone.lookup(question.qname, question.qtype)
        return make_response(query, answers=answers, rcode=rcode, authoritative=True)


@dataclass
class EchoLogEntry:
    """One observation made by the resolver-echo authority."""

    qname: str
    resolver_ip: str
    at: float


@dataclass
class ResolverEchoAuthority(Authority):
    """Answers any name under its apex with the querying resolver's IP.

    TTL is zero so responses are never cached; the paper additionally
    used unique per-experiment subdomains, which the measurement library
    reproduces (see ``repro.measure.probes``).
    """

    log: List[EchoLogEntry] = field(default_factory=list)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        question = query.question
        if question is None:
            return make_response(query, rcode=RCode.FORMERR)
        if not self.serves(question.qname):
            return make_response(query, rcode=RCode.REFUSED)
        self.log.append(
            EchoLogEntry(qname=question.qname, resolver_ip=client_ip, at=now)
        )
        record = ResourceRecord(question.qname, RRType.A, 0, client_ip)
        return make_response(query, answers=[record], authoritative=True)

    def observations_for(self, suffix: str) -> List[EchoLogEntry]:
        """Log entries whose qname falls under ``suffix``."""
        suffix = normalize_name(suffix)
        return [entry for entry in self.log if name_within(entry.qname, suffix)]
