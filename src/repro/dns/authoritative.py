"""Authoritative DNS servers.

Two flavours matter to the study:

* :class:`StaticAuthority` serves ordinary zone data (the origin zones of
  the nine measured domains, before they CNAME into a CDN).
* :class:`ResolverEchoAuthority` implements the Mao et al. [16] technique
  from Sec 3.2: the authority for a controlled zone answers every query
  with an A record carrying *the address of the resolver that asked*,
  which is how devices discover their external-facing LDNS address.

CDN authorities (answers depend on the querying resolver's /24) subclass
:class:`Authority` in :mod:`repro.cdn.provider`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.node import Host
from repro.dns.message import (
    DNSMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_response,
    name_within,
    normalize_name,
)
from repro.dns.zone import Zone


@dataclass
class Authority:
    """Base class: an authoritative server bound to a host."""

    host: Host
    zone_apex: str

    def __post_init__(self) -> None:
        self.zone_apex = normalize_name(self.zone_apex)

    def serves(self, qname: str) -> bool:
        """True when this authority is responsible for ``qname``."""
        return name_within(qname, self.zone_apex)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        """Answer a query arriving from ``client_ip`` at virtual ``now``.

        ``client_subnet`` carries an EDNS Client Subnet option (a /24 in
        presentation form) when the querying resolver forwards one; the
        base study never sends it, the ECS extension does.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        return f"{type(self).__name__}({self.zone_apex or '.'} @ {self.host.ip})"


@dataclass
class StaticAuthority(Authority):
    """Serves fixed zone data."""

    zone: Optional[Zone] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.zone is None:
            self.zone = Zone(self.zone_apex)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        question = query.question
        if question is None:
            return make_response(query, rcode=RCode.FORMERR)
        if not self.serves(question.qname):
            return make_response(query, rcode=RCode.REFUSED)
        rcode, answers = self.zone.lookup(question.qname, question.qtype)
        return make_response(query, answers=answers, rcode=rcode, authoritative=True)


@dataclass
class EchoLogEntry:
    """One observation made by the resolver-echo authority."""

    qname: str
    resolver_ip: str
    at: float


@dataclass
class ResolverEchoAuthority(Authority):
    """Answers any name under its apex with the querying resolver's IP.

    TTL is zero so responses are never cached; the paper additionally
    used unique per-experiment subdomains, which the measurement library
    reproduces (see ``repro.measure.probes``).

    The observation log is unbounded (every experiment adds unique
    names), so :meth:`observations_for` answers from a suffix index
    maintained on insert instead of scanning the whole log: each entry
    is filed under every label-boundary suffix of its qname down to the
    apex, making per-experiment queries O(matches) rather than O(log).
    """

    log: List[EchoLogEntry] = field(default_factory=list)
    _suffix_index: Dict[str, List[EchoLogEntry]] = field(
        default_factory=dict, repr=False
    )

    def observe(self, qname: str, client_ip: str, now: float) -> ResourceRecord:
        """Record one observation and build the echoed A record.

        Shared by :meth:`answer` and the recursive engine's compiled
        echo fast path, so both maintain the same log and index.
        """
        entry = EchoLogEntry(qname=qname, resolver_ip=client_ip, at=now)
        self.log.append(entry)
        index = self._suffix_index
        suffix = qname
        apex = self.zone_apex
        while True:
            bucket = index.get(suffix)
            if bucket is None:
                index[suffix] = [entry]
            else:
                bucket.append(entry)
            if suffix == apex or not suffix:
                break
            _, _, suffix = suffix.partition(".")
        return ResourceRecord(qname, RRType.A, 0, client_ip)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        question = query.question
        if question is None:
            return make_response(query, rcode=RCode.FORMERR)
        if not self.serves(question.qname):
            return make_response(query, rcode=RCode.REFUSED)
        record = self.observe(question.qname, client_ip, now)
        return make_response(query, answers=[record], authoritative=True)

    def observations_for(self, suffix: str) -> List[EchoLogEntry]:
        """Log entries whose qname falls under ``suffix``."""
        suffix = normalize_name(suffix)
        if name_within(self.zone_apex, suffix):
            # At or above the apex: every logged name qualifies.
            return list(self.log)
        return list(self._suffix_index.get(suffix, ()))
