"""DNS substrate: messages, wire format, zones, caches and resolvers."""

from repro.dns.message import (
    DNSMessage,
    Question,
    RCode,
    ResourceRecord,
    RRType,
    make_query,
    make_response,
    normalize_name,
)
from repro.dns.cache import CacheStats, DnsCache
from repro.dns.zone import Zone

__all__ = [
    "DNSMessage",
    "Question",
    "RCode",
    "ResourceRecord",
    "RRType",
    "make_query",
    "make_response",
    "normalize_name",
    "CacheStats",
    "DnsCache",
    "Zone",
]
