"""Public anycast DNS services (Google Public DNS, OpenDNS).

Section 6 of the paper benchmarks cellular LDNS against the two big
public resolvers.  Both are anycast: one well-known address
(``8.8.8.8``, ``208.67.222.222``) routes to the nearest of a set of
geographically distributed resolver clusters, each cluster occupying its
own /24 (Google documents 30 such /24 sites; Table 5 and Fig 12 lean on
that structure).

Anycast routing from cellular networks is wobbly — the paper observes
devices being sent to *different* Google /24 clusters over time even
from a fixed location (Fig 12), plausibly because of operator tunnelling.
``route_instability`` models that wobble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.addressing import Prefix
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream, stable_fraction, stable_index
from repro.core.transport import Transport
from repro.dns.cache import DnsCache
from repro.dns.message import RRType
from repro.dns.recursive import RecursiveEngine, RecursiveResult
from repro.dns.zone import ZoneDirectory
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import City


@dataclass
class PublicDnsCluster:
    """One anycast site: a /24 with several resolver machines."""

    index: int
    city: City
    prefix: Prefix
    hosts: List[Host]
    engine: RecursiveEngine
    #: Machine pick per (device, balancing epoch) — pure in its key, so
    #: the memo is invisible to determinism.
    _machine_memo: dict = field(default_factory=dict)

    @property
    def location(self) -> GeoPoint:
        """Where the cluster lives."""
        return self.city.location

    def machine_for(self, device_key: str, seed: int, now: float = 0.0) -> Host:
        """Which machine in the cluster answers a given device.

        Re-rolled every few hours: anycast services balance queries over
        the machines of a site, which is why clients observe many more
        public resolver *addresses* than /24s (Table 5).
        """
        epoch = int(now // (6 * 3600.0))
        key = (device_key, epoch)
        machine = self._machine_memo.get(key)
        if machine is None:
            pick = stable_index(
                seed, "machine", self.index, device_key, epoch,
                modulo=len(self.hosts),
            )
            machine = self.hosts[pick]
            self._machine_memo[key] = machine
        return machine


@dataclass(slots=True)
class PublicResolution:
    """Outcome of one resolution through a public DNS service."""

    result: RecursiveResult
    total_ms: float
    #: Address the authorities saw (a cluster-machine IP, not the anycast
    #: address).
    external_ip: str
    cluster_index: int


@dataclass
class PublicDnsService:
    """An anycast public resolver service."""

    name: str
    anycast_ip: str
    system: AutonomousSystem
    clusters: List[PublicDnsCluster] = field(default_factory=list)
    seed: int = 0
    #: Extra RTT paid crossing from the operator's egress into the
    #: service's network (peering detours).  Resolution requests "would
    #: have to leave the cellular network to complete" (Sec 6.1) — this
    #: is the cost of that exit, on top of geography.
    peering_penalty_ms: float = 14.0
    #: Probability that a query routes to a non-nearest cluster.
    route_instability: float = 0.15
    #: Forward EDNS Client Subnet options to authorities (Google shipped
    #: ECS in this era; the paper-baseline configuration keeps it off so
    #: the comparison matches what the authors measured).
    ecs_enabled: bool = False
    #: The delivery layer queries and pings cross.  Services built by
    #: the world share its transport; directly constructed ones get a
    #: private fault-free layer on first use.
    transport: Optional[Transport] = None
    #: When unstable, how many nearest clusters the wobble spreads over.
    wobble_breadth: int = 4
    #: How long one wobble decision persists (routing epochs).
    wobble_epoch_s: float = 3 * 3600.0
    #: Memo of distance rankings keyed by rounded egress position.
    _ranking_memo: dict = field(default_factory=dict)
    #: Rounded ranking key per egress GeoPoint (a pure projection; the
    #: few egress points recur for every probe).
    _anchor_key_memo: dict = field(default_factory=dict)
    #: Serving-cluster pick per (rounded egress, device, wobble epoch) —
    #: every input is quantised, so caching cannot change any draw.
    _serving_memo: dict = field(default_factory=dict)
    #: (cluster, machine) per (rounded egress, device, wobble epoch,
    #: balancing epoch): the hot-path fusion of ``serving_cluster`` +
    #: ``machine_for`` into one dictionary probe.
    _serve_memo: dict = field(default_factory=dict)
    #: Memo of routing facts keyed by (origin ASN, machine ip) — the
    #: route verdict depends only on the origin's AS (see
    #: VirtualInternet.route_view), not on the per-probe origin sample.
    _route_memo: dict = field(default_factory=dict)

    # -- anycast routing ----------------------------------------------------

    def serving_cluster(
        self, origin: ProbeOrigin, device_key: str, now: float
    ) -> PublicDnsCluster:
        """The cluster an origin's packets reach at virtual ``now``."""
        return self._serving_cluster_at(origin.egress_location, device_key, now)

    def _serving_cluster_at(
        self, anchor, device_key: str, now: float
    ) -> PublicDnsCluster:
        """:meth:`serving_cluster` keyed directly by the egress anchor.

        Anycast routing depends on the origin only through its egress
        position, so callers that have not built a ``ProbeOrigin`` (the
        fused probe paths) pass the attachment's egress location.
        """
        if not self.clusters:
            raise ValueError(f"{self.name} has no clusters")
        ranking_key = self._anchor_key_memo.get(anchor)
        if ranking_key is None:
            ranking_key = (round(anchor.latitude, 1), round(anchor.longitude, 1))
            self._anchor_key_memo[anchor] = ranking_key
        epoch = int(now // self.wobble_epoch_s)
        memo_key = (ranking_key, device_key, epoch)
        cluster = self._serving_memo.get(memo_key)
        if cluster is None:
            ranked = self._ranking_memo.get(ranking_key)
            if ranked is None:
                ranked = sorted(
                    self.clusters,
                    key=lambda candidate: candidate.location.distance_km(
                        anchor
                    ),
                )
                self._ranking_memo[ranking_key] = ranked
            draw = stable_fraction(self.seed, "route", device_key, epoch)
            if draw >= self.route_instability or len(ranked) == 1:
                cluster = ranked[0]
            else:
                breadth = min(self.wobble_breadth, len(ranked) - 1)
                shift = stable_index(
                    self.seed, "wobble", device_key, epoch, modulo=breadth
                )
                cluster = ranked[1 + shift]
            self._serving_memo[memo_key] = cluster
        return cluster

    def _serve(
        self, origin: ProbeOrigin, device_key: str, now: float
    ) -> tuple:
        """(cluster, machine) answering ``origin`` at ``now``.

        Equivalent to :meth:`serving_cluster` + ``machine_for`` — both
        pure in quantised inputs — memoised under one key so resolve and
        ping pay a single lookup.
        """
        return self._serve_at(origin.egress_location, device_key, now)

    def _serve_at(self, anchor, device_key: str, now: float) -> tuple:
        """:meth:`_serve` keyed directly by the egress anchor."""
        ranking_key = self._anchor_key_memo.get(anchor)
        if ranking_key is None:
            ranking_key = (round(anchor.latitude, 1), round(anchor.longitude, 1))
            self._anchor_key_memo[anchor] = ranking_key
        key = (
            ranking_key,
            device_key,
            int(now // self.wobble_epoch_s),
            int(now // (6 * 3600.0)),
        )
        pair = self._serve_memo.get(key)
        if pair is None:
            cluster = self._serving_cluster_at(anchor, device_key, now)
            machine = cluster.machine_for(device_key, self.seed, now)
            pair = (cluster, machine)
            self._serve_memo[key] = pair
        return pair

    # -- client operations ---------------------------------------------------

    def resolve(
        self,
        origin: ProbeOrigin,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        device_key: str = "",
        cache_scope: Optional[str] = None,
    ) -> Optional[PublicResolution]:
        """Resolve a name via the anycast address from ``origin``.

        Returns None when the service is unreachable (never the case for
        outbound cellular flows, but kept symmetric with other probes).
        """
        cluster, machine = self._serve(origin, device_key, now)
        internet = cluster.engine.internet
        route_key = (origin.asys.asn, machine.ip)
        route = self._route_memo.get(route_key)
        if route is None:
            route = internet.route_view(origin, machine.ip)
            self._route_memo[route_key] = route
        delivery = self._delivery_layer(internet).flow(
            origin, machine.ip, stream, route=route
        )
        if not delivery.delivered:
            return None
        rtt = delivery.rtt_ms
        client_subnet = None
        if self.ecs_enabled:
            from repro.core.addressing import prefix24

            client_subnet = prefix24(origin.source_ip)
        result = cluster.engine.resolve(
            qname,
            qtype,
            now,
            stream,
            client_subnet=client_subnet,
            # Clusters serve every carrier whose egress routes to them;
            # the cache is partitioned by the caller's scope — a
            # device-range label for campaign devices (its operator-key
            # prefix keeps carriers independent), falling back to the
            # per-operator scope (the original shard isolation contract
            # — see RecursiveEngine.resolve) for everything else.
            cache_scope=(
                cache_scope
                if cache_scope is not None
                else origin.asys.operator_key
            ),
        )
        return PublicResolution(
            result=result,
            total_ms=rtt + self.peering_penalty_ms + result.upstream_ms,
            external_ip=machine.ip,
            cluster_index=cluster.index,
        )

    def ping(
        self,
        origin: ProbeOrigin,
        now: float,
        stream: RandomStream,
        device_key: str = "",
    ) -> Optional[float]:
        """Ping the anycast address: lands on the serving cluster."""
        cluster, machine = self._serve(origin, device_key, now)
        internet = cluster.engine.internet
        route_key = (origin.asys.asn, machine.ip)
        route = self._route_memo.get(route_key)
        if route is None:
            route = internet.route_view(origin, machine.ip)
            self._route_memo[route_key] = route
        delivery = self._delivery_layer(internet).ping(
            origin, machine.ip, stream, route=route
        )
        if not delivery.delivered:
            return None
        return delivery.rtt_ms + self.peering_penalty_ms

    def _delivery_layer(self, internet: VirtualInternet) -> Transport:
        """The service's transport (a private fault-free one on demand)."""
        transport = self.transport
        if transport is None:
            transport = Transport(internet)
            self.transport = transport
        return transport

    def cluster_prefixes(self) -> List[str]:
        """The /24 prefixes of all clusters (Table 5 denominators)."""
        return [str(cluster.prefix) for cluster in self.clusters]


def build_public_dns(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    name: str,
    anycast_ip: str,
    asn: int,
    cities: Sequence[City],
    allocator,
    seed: int,
    machines_per_cluster: int = 4,
    background_warm_prob: float = 0.85,
    background_interval_s: float = 5.0,
    route_instability: float = 0.15,
    transport: Optional[Transport] = None,
) -> PublicDnsService:
    """Create, register and wire up a public DNS service.

    One cluster is placed in each given city; each cluster gets its own
    /24 (so Table 5's "many IPs, few /24s" shape emerges naturally), a
    handful of machines, and a shared warm cache.
    """
    system = AutonomousSystem(
        asn=asn,
        name=name,
        kind=ASKind.PUBLIC_DNS,
        firewall=FirewallPolicy(blocks_inbound=False),
    )
    internet.register_system(system)
    service = PublicDnsService(
        name=name,
        anycast_ip=anycast_ip,
        system=system,
        seed=seed,
        route_instability=route_instability,
        transport=transport,
    )
    for index, city in enumerate(cities):
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        hosts = []
        for machine in range(machines_per_cluster):
            host = Host(
                ip=prefix.host(machine + 1),
                name=f"{name.lower()}.{city.name.lower().replace(' ', '-')}.{machine}",
                asys=system,
                location=city.location,
                stack_latency_ms=0.3,
            )
            internet.register_host(host)
            hosts.append(host)
        engine = RecursiveEngine(
            host=hosts[0],
            directory=directory,
            internet=internet,
            cache=DnsCache(name=f"{name}:{city.name}"),
            background_warm_prob=background_warm_prob,
            # A public service aggregates vastly more clients per site
            # than one carrier's LDNS; entries are re-fetched sooner and
            # the cache stays warmer (the shorter tails of Fig 13).
            background_interval_s=background_interval_s,
            transport=transport,
        )
        service.clusters.append(
            PublicDnsCluster(
                index=index, city=city, prefix=prefix, hosts=hosts, engine=engine
            )
        )
    return service
