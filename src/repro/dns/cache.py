"""Resolver cache with TTL expiry and hit/miss accounting.

The paper attributes the long tail of cellular resolution times to cache
misses caused by the short TTLs CDNs use (Fig 7: misses on ~20% of
queries even for very popular names).  The cache is therefore a
first-class, instrumented component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.message import ResourceRecord, RRType, normalize_name


@dataclass
class CacheStats:
    """Counters exposed by a :class:`DnsCache`."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _Entry:
    records: List[ResourceRecord]
    stored_at: float
    expires_at: float
    #: Negative entries memoise NXDOMAIN/NODATA (RFC 2308 behaviour).
    negative: bool = False


@dataclass
class DnsCache:
    """A TTL-driven record cache keyed by (name, type).

    Time is supplied by the caller (virtual seconds); the cache never
    consults a wall clock.
    """

    name: str = "cache"
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: Dict[Tuple[str, RRType], _Entry] = field(default_factory=dict)

    def get(
        self, qname: str, qtype: RRType, now: float
    ) -> Optional[List[ResourceRecord]]:
        """Cached records with TTLs aged to ``now``, or None on miss."""
        key = (normalize_name(qname), qtype)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if now >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        remaining = int(entry.expires_at - now)
        return [record.with_ttl(max(remaining, 0)) for record in entry.records]

    def put(self, records: List[ResourceRecord], now: float) -> None:
        """Insert answer records, grouped by (name, type).

        The whole answer (e.g. a CNAME chain plus terminal A set) is
        stored under the query key by the caller; here each rrset is also
        indexed individually so partial reuse works.
        """
        by_key: Dict[Tuple[str, RRType], List[ResourceRecord]] = {}
        for record in records:
            by_key.setdefault((record.name, record.rtype), []).append(record)
        for key, rrset in by_key.items():
            ttl = min(record.ttl for record in rrset)
            self._entries[key] = _Entry(
                records=rrset, stored_at=now, expires_at=now + ttl
            )
            self.stats.insertions += 1

    def get_entry_kind(self, qname: str, qtype: RRType, now: float):
        """(records, negative) for a live entry, or None on miss.

        Unlike :meth:`get`, distinguishes a cached *negative* answer
        (records empty, negative True) from a plain miss (None).  Does
        not touch the hit/miss counters; call :meth:`get` for stats.
        """
        key = (normalize_name(qname), qtype)
        entry = self._entries.get(key)
        if entry is None or now >= entry.expires_at:
            return None
        remaining = int(entry.expires_at - now)
        records = [record.with_ttl(max(remaining, 0)) for record in entry.records]
        return records, entry.negative

    def put_negative(
        self, qname: str, qtype: RRType, ttl: int, now: float
    ) -> None:
        """Cache a negative answer (NXDOMAIN/NODATA) for ``ttl`` seconds."""
        if ttl <= 0:
            return
        key = (normalize_name(qname), qtype)
        self._entries[key] = _Entry(
            records=[], stored_at=now, expires_at=now + ttl, negative=True
        )
        self.stats.insertions += 1

    def put_answer(
        self, qname: str, qtype: RRType, records: List[ResourceRecord], now: float
    ) -> None:
        """Cache a complete answer under the query key.

        The answer's lifetime is its minimum TTL, which is what makes the
        short CDN A-record TTLs dominate even when CNAMEs carry long ones.
        """
        if not records:
            return
        ttl = min(record.ttl for record in records)
        key = (normalize_name(qname), qtype)
        self._entries[key] = _Entry(
            records=list(records), stored_at=now, expires_at=now + ttl
        )
        self.stats.insertions += 1

    def flush_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        expired = [
            key for key, entry in self._entries.items() if now >= entry.expires_at
        ]
        for key in expired:
            del self._entries[key]
        self.stats.expirations += len(expired)
        return len(expired)

    def invalidate(self, qname: str, qtype: RRType) -> None:
        """Drop one entry if present."""
        self._entries.pop((normalize_name(qname), qtype), None)

    def clear(self) -> None:
        """Drop everything (stats are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, RRType]) -> bool:
        qname, qtype = key
        return (normalize_name(qname), qtype) in self._entries
