"""Resolver cache with TTL expiry and hit/miss accounting.

The paper attributes the long tail of cellular resolution times to cache
misses caused by the short TTLs CDNs use (Fig 7: misses on ~20% of
queries even for very popular names).  The cache is therefore a
first-class, instrumented component.

Entries are keyed by the structured tuple ``(scope, subnet, qname,
qtype)``.  ``scope`` partitions the cache by an opaque label, ``subnet``
by the EDNS Client Subnet a query carried.  The campaign layer uses the
scope to enforce its *shard isolation contract*: every device carries a
``cache_scope`` naming its sub-carrier device range (``att/r0``,
``att/r1``, ...), and every executor — serial, per-carrier parallel or
sub-carrier sharded — applies the same partition, so cache warmth never
flows between ranges and the dataset bytes cannot depend on how devices
were divided across workers.  Engines shared across carriers (public DNS
clusters) fall back to an operator-keyed scope for non-campaign devices.
Earlier revisions flattened scope and
subnet into the query name with sentinel substrings, which an
adversarial qname containing the sentinel could collide with; tuple keys
make collisions structurally impossible — and skip the per-lookup string
building.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.message import ResourceRecord, RRType, normalize_name

#: Structured cache key: (scope, subnet, qname, qtype).
CacheKey = Tuple[Optional[str], Optional[str], str, RRType]


@dataclass
class CacheStats:
    """Counters exposed by a :class:`DnsCache`."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass(slots=True)
class _Entry:
    records: Tuple[ResourceRecord, ...]
    stored_at: float
    expires_at: float
    #: Negative entries memoise NXDOMAIN/NODATA (RFC 2308 behaviour).
    negative: bool = False


@dataclass
class DnsCache:
    """A TTL-driven record cache keyed by (scope, subnet, name, type).

    Time is supplied by the caller (virtual seconds); the cache never
    consults a wall clock.  ``scope``/``subnet`` default to None, so
    plain ``(name, type)`` callers keep working unchanged.
    """

    name: str = "cache"
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: Dict[CacheKey, _Entry] = field(default_factory=dict)

    def get(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        scope: Optional[str] = None,
        subnet: Optional[str] = None,
    ) -> Optional[List[ResourceRecord]]:
        """Cached records with TTLs aged to ``now``, or None on miss."""
        key = (scope, subnet, normalize_name(qname), qtype)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if now >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        remaining = max(int(entry.expires_at - now), 0)
        return [record.with_ttl(remaining) for record in entry.records]

    def peek(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        scope: Optional[str] = None,
        subnet: Optional[str] = None,
    ) -> Optional[Tuple[Tuple[ResourceRecord, ...], int, bool]]:
        """(records, remaining_ttl, negative) for a live entry, else None.

        The allocation-free read used on the resolution hot path: the
        stored records are returned as-is (a shared tuple, TTLs *not*
        aged) alongside the remaining lifetime, so callers clone only at
        the boundary where an aged TTL is actually consumed.  Does not
        touch the hit/miss counters.
        """
        entry = self._entries.get((scope, subnet, qname, qtype))
        if entry is None or now >= entry.expires_at:
            return None
        remaining = int(entry.expires_at - now)
        if remaining < 0:
            remaining = 0
        return entry.records, remaining, entry.negative

    def peek_entry(
        self, key: CacheKey, now: float
    ) -> Optional[Tuple[Tuple[ResourceRecord, ...], int, bool]]:
        """:meth:`peek` by a prebuilt key (name already normalised).

        The resolution engine builds its ``(scope, subnet, qname,
        qtype)`` tuple once per lookup and reuses it for peek and store,
        instead of rebuilding it inside each cache call.
        """
        entry = self._entries.get(key)
        if entry is None or now >= entry.expires_at:
            return None
        remaining = int(entry.expires_at - now)
        if remaining < 0:
            remaining = 0
        return entry.records, remaining, entry.negative

    def put_answer_entry(
        self,
        key: CacheKey,
        records,
        now: float,
        ttl: int,
    ) -> None:
        """:meth:`put_answer` by a prebuilt key, TTL already computed."""
        self._entries[key] = _Entry(
            records=tuple(records), stored_at=now, expires_at=now + ttl
        )
        self.stats.insertions += 1

    def put(self, records: List[ResourceRecord], now: float) -> None:
        """Insert answer records, grouped by (name, type).

        The whole answer (e.g. a CNAME chain plus terminal A set) is
        stored under the query key by the caller; here each rrset is also
        indexed individually so partial reuse works.
        """
        by_key: Dict[Tuple[str, RRType], List[ResourceRecord]] = {}
        for record in records:
            by_key.setdefault((record.name, record.rtype), []).append(record)
        for (name, rtype), rrset in by_key.items():
            ttl = min(record.ttl for record in rrset)
            self._entries[(None, None, name, rtype)] = _Entry(
                records=tuple(rrset), stored_at=now, expires_at=now + ttl
            )
            self.stats.insertions += 1

    def get_entry_kind(self, qname: str, qtype: RRType, now: float):
        """(records, negative) for a live entry, or None on miss.

        Unlike :meth:`get`, distinguishes a cached *negative* answer
        (records empty, negative True) from a plain miss (None).  Does
        not touch the hit/miss counters; call :meth:`get` for stats.
        """
        peeked = self.peek(normalize_name(qname), qtype, now)
        if peeked is None:
            return None
        records, remaining, negative = peeked
        return [record.with_ttl(remaining) for record in records], negative

    def put_negative(
        self,
        qname: str,
        qtype: RRType,
        ttl: int,
        now: float,
        scope: Optional[str] = None,
        subnet: Optional[str] = None,
    ) -> None:
        """Cache a negative answer (NXDOMAIN/NODATA) for ``ttl`` seconds."""
        if ttl <= 0:
            return
        key = (scope, subnet, normalize_name(qname), qtype)
        self._entries[key] = _Entry(
            records=(), stored_at=now, expires_at=now + ttl, negative=True
        )
        self.stats.insertions += 1

    def put_answer(
        self,
        qname: str,
        qtype: RRType,
        records: List[ResourceRecord],
        now: float,
        scope: Optional[str] = None,
        subnet: Optional[str] = None,
        ttl: Optional[int] = None,
    ) -> None:
        """Cache a complete answer under the query key.

        The answer's lifetime is its minimum TTL, which is what makes the
        short CDN A-record TTLs dominate even when CNAMEs carry long ones.
        Callers that already computed that minimum pass it as ``ttl``.
        """
        if not records:
            return
        if ttl is None:
            ttl = min(record.ttl for record in records)
        key = (scope, subnet, normalize_name(qname), qtype)
        self._entries[key] = _Entry(
            records=tuple(records), stored_at=now, expires_at=now + ttl
        )
        self.stats.insertions += 1

    def flush_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        expired = [
            key for key, entry in self._entries.items() if now >= entry.expires_at
        ]
        for key in expired:
            del self._entries[key]
        self.stats.expirations += len(expired)
        return len(expired)

    def invalidate(
        self,
        qname: str,
        qtype: RRType,
        scope: Optional[str] = None,
        subnet: Optional[str] = None,
    ) -> None:
        """Drop one entry if present."""
        self._entries.pop((scope, subnet, normalize_name(qname), qtype), None)

    def clear(self) -> None:
        """Drop everything (stats are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership by (name, type) or a full (scope, subnet, name, type)."""
        if len(key) == 2:
            qname, qtype = key
            return (None, None, normalize_name(qname), qtype) in self._entries
        scope, subnet, qname, qtype = key
        return (scope, subnet, normalize_name(qname), qtype) in self._entries
