"""DNS message model (RFC 1035 subset).

Covers what the study exercises: A lookups that resolve through CNAME
chains (CDN-style server selection), TXT/PTR for completeness, NS/SOA for
zone plumbing.  Wire encoding lives in :mod:`repro.dns.wire`.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Sequence

from repro.core.errors import DNSError


class RRType(enum.IntEnum):
    """Resource record types used by the study."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    TXT = 16
    AAAA = 28

    @classmethod
    def parse(cls, text: str) -> "RRType":
        """Parse a type mnemonic (``"A"``, ``"CNAME"``, ...)."""
        try:
            return cls[text.upper()]
        except KeyError as exc:
            raise DNSError(f"unsupported RR type {text!r}") from exc


class RCode(enum.IntEnum):
    """Response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@lru_cache(maxsize=16384)
def normalize_name(name: str) -> str:
    """Canonical form of a domain name: lower case, no trailing dot.

    The empty string denotes the root.  Raises :class:`DNSError` for names
    that violate length limits.  Cached: measurement campaigns resolve the
    same few hundred names millions of times.  The result is interned so
    the tuple cache keys built from normalised names compare by pointer
    identity on the resolution hot path.
    """
    name = name.strip().lower().rstrip(".")
    if len(name) > 253:
        raise DNSError(f"name too long: {name[:40]}...")
    for label in name.split("."):
        if name and not label:
            raise DNSError(f"empty label in {name!r}")
        if len(label) > 63:
            raise DNSError(f"label too long in {name!r}")
    return sys.intern(name)


@lru_cache(maxsize=16384)
def name_within(name: str, zone: str) -> bool:
    """True when ``name`` is at or under ``zone`` (both normalised)."""
    name = normalize_name(name)
    zone = normalize_name(zone)
    if not zone:
        return True
    return name == zone or name.endswith("." + zone)


@dataclass(frozen=True)
class Question:
    """The question section entry of a query."""

    qname: str
    qtype: RRType = RRType.A

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", normalize_name(self.qname))

    def __str__(self) -> str:
        return f"{self.qname or '.'} {self.qtype.name}"


@dataclass(frozen=True)
class ResourceRecord:
    """A resource record.

    ``data`` is the presentation form of the RDATA: a dotted quad for A
    records, a target name for CNAME/NS/PTR, free text for TXT.
    """

    name: str
    rtype: RRType
    ttl: int
    data: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0:
            raise DNSError(f"negative TTL on {self.name}")
        if self.rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
            object.__setattr__(self, "data", normalize_name(self.data))

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy of the record with a different TTL (cache aging).

        Built directly rather than via :func:`dataclasses.replace`:
        ``name``/``data`` are already normalised on ``self``, so the
        clone can skip ``__post_init__`` (this runs once per cache hit
        on the resolution hot path).
        """
        if ttl < 0:
            raise DNSError(f"negative TTL on {self.name}")
        clone = object.__new__(ResourceRecord)
        object.__setattr__(clone, "name", self.name)
        object.__setattr__(clone, "rtype", self.rtype)
        object.__setattr__(clone, "ttl", ttl)
        object.__setattr__(clone, "data", self.data)
        return clone

    def __str__(self) -> str:
        return f"{self.name or '.'} {self.ttl} {self.rtype.name} {self.data}"


@dataclass
class DNSMessage:
    """A query or response message."""

    msg_id: int = 0
    is_response: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    authoritative: bool = False
    rcode: RCode = RCode.NOERROR
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    @property
    def question(self) -> Optional[Question]:
        """The first (usually only) question."""
        return self.questions[0] if self.questions else None

    def a_records(self) -> List[ResourceRecord]:
        """All A records in the answer section."""
        return [record for record in self.answers if record.rtype is RRType.A]

    def answer_addresses(self) -> List[str]:
        """Addresses from answer-section A records, in order."""
        return [record.data for record in self.a_records()]

    def cname_chain(self) -> List[str]:
        """CNAME targets in answer-section order."""
        return [
            record.data for record in self.answers if record.rtype is RRType.CNAME
        ]

    def min_answer_ttl(self) -> Optional[int]:
        """The smallest TTL in the answer section (cache lifetime)."""
        if not self.answers:
            return None
        return min(record.ttl for record in self.answers)

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        question = self.question
        return f"DNS {kind} id={self.msg_id} {question} rcode={self.rcode.name}"


def make_query(
    qname: str, qtype: RRType = RRType.A, msg_id: int = 0
) -> DNSMessage:
    """Build a standard recursive query."""
    return DNSMessage(
        msg_id=msg_id,
        is_response=False,
        recursion_desired=True,
        questions=[Question(qname, qtype)],
    )


def make_response(
    query: DNSMessage,
    answers: Sequence[ResourceRecord] = (),
    rcode: RCode = RCode.NOERROR,
    authoritative: bool = False,
) -> DNSMessage:
    """Build a response echoing the query's id and question."""
    return DNSMessage(
        msg_id=query.msg_id,
        is_response=True,
        recursion_desired=query.recursion_desired,
        recursion_available=True,
        authoritative=authoritative,
        rcode=rcode,
        questions=list(query.questions),
        answers=list(answers),
    )
