"""Indirect LDNS resolution structures.

Section 4 of the paper finds that *every* profiled carrier separates the
resolver clients are configured with (client-facing) from the resolver
the rest of the Internet sees (external-facing), in one of three shapes:

* **Anycast** (AT&T, T-Mobile): one configured address served from many
  sites; the external address follows the serving site.
* **LDNS pools** (Sprint, SK Telecom, LG U+): a client-facing front
  load-balances across a pool of external resolvers.
* **Tiered** (Verizon): fixed client/external pairs, here in different
  autonomous systems (6167 client-facing, 22394 external-facing).

This module provides the building blocks: resolver sites, external
resolvers (host + recursive engine), client-facing addresses, and the
pairing policies that decide — per device, per instant — which external
resolver a query exits through.  Policies are *pure functions of time*
(epoch-keyed hashes), so churn is reproducible no matter the order in
which measurements happen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ConfigError
from repro.core.node import Host
from repro.core.rng import stable_fraction, stable_index
from repro.dns.recursive import RecursiveEngine
from repro.geo.regions import City


class DeploymentKind(str, enum.Enum):
    """Shape of a carrier's indirect DNS deployment."""

    ANYCAST = "anycast"
    POOL = "pool"
    TIERED = "tiered"


@dataclass
class ResolverSite:
    """A physical location hosting resolver machines.

    Resolver sites sit at (or near) network egress points — the
    clustering Xu et al. [25] observed and the paper leans on when
    arguing that resolver churn re-localizes clients.
    """

    index: int
    city: City

    @property
    def location(self):
        """Geographic placement of the site."""
        return self.city.location


@dataclass
class ExternalResolver:
    """An external-facing resolver: public host plus recursive engine."""

    host: Host
    engine: RecursiveEngine
    site: ResolverSite

    @property
    def ip(self) -> str:
        """The resolver's public address (what authorities see)."""
        return self.host.ip


@dataclass
class ClientFacingAddress:
    """An address configured on devices as "the" DNS server.

    For anycast deployments one address is served from every site; for
    pools and tiers the address belongs to a specific front machine.
    """

    ip: str
    host: Optional[Host] = None
    anycast: bool = False
    #: Index of the site hosting the front (non-anycast only).
    site_index: Optional[int] = None


class PairingPolicy:
    """Decides which external resolver serves a query.

    ``device_key`` identifies the querying device, ``egress_index`` its
    current attachment's egress point, ``now`` the virtual time.
    """

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        raise NotImplementedError


@dataclass
class TieredPairing(PairingPolicy):
    """Fixed 1:1 client/external pairs (Verizon): 100% consistency."""

    pair_of: Dict[str, ExternalResolver]

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        try:
            return self.pair_of[client_address.ip]
        except KeyError as exc:
            raise ConfigError(
                f"no external pair for client resolver {client_address.ip}"
            ) from exc


@dataclass
class StickyPoolPairing(PairingPolicy):
    """A front load-balances over a pool, with configurable stickiness.

    The pool has a "primary" member that migrates every
    ``rehome_period_s`` (epoch-keyed hash).  A query goes to the primary
    with probability ``stickiness``, otherwise to a random pool member.
    ``stickiness=0.5`` over a two-member pool reproduces the paper's
    example of a 50%-consistent resolver.  ``shared_home=False`` makes
    the primary per-device instead (SK-style spray pools).
    """

    pools: Dict[str, List[ExternalResolver]]
    stickiness: float
    rehome_period_s: float
    seed: int
    shared_home: bool = True

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        pool = self.pools.get(client_address.ip)
        if not pool:
            raise ConfigError(f"no pool behind {client_address.ip}")
        epoch = int(now // self.rehome_period_s)
        draw = stable_fraction(
            self.seed, "sticky", client_address.ip, device_key, now
        )
        if draw < self.stickiness:
            home_key = "" if self.shared_home else device_key
            home = stable_index(
                self.seed,
                "home",
                client_address.ip,
                home_key,
                epoch,
                modulo=len(pool),
            )
            return pool[home]
        pick = stable_index(
            self.seed,
            "balance",
            client_address.ip,
            device_key,
            now,
            modulo=len(pool),
        )
        return pool[pick]


@dataclass
class AnycastPairing(PairingPolicy):
    """Anycast fronts: the serving site follows the device's egress.

    The externals behind the anycast address are grouped by site; the
    device's egress picks the site (nearest resolver infrastructure), and
    within the site a hash spreads devices across machines.  Egress churn
    therefore translates directly into external-resolver churn across
    /24s — the paper's Fig 8 behaviour for AT&T and T-Mobile.
    """

    by_site: Dict[int, List[ExternalResolver]]
    seed: int
    #: Probability that routing wobbles to a random other site even
    #: without an egress change (tunnelling-induced instability).
    site_flutter: float = 0.0
    #: When set, the machine choice within a site re-rolls every epoch
    #: (T-Mobile-style balancing: same site, rapidly changing machine —
    #: and with one /24 per machine, rapidly changing prefix too).
    machine_epoch_s: Optional[float] = None

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        if not self.by_site:
            raise ConfigError("anycast deployment has no sites")
        site_keys = sorted(self.by_site)
        if egress_index in self.by_site:
            site_key = egress_index
        else:
            site_key = site_keys[egress_index % len(site_keys)]
        if self.site_flutter > 0:
            # Hour-keyed so one experiment's queries wobble coherently.
            hour = int(now // 3600.0)
            draw = stable_fraction(self.seed, "flutter", device_key, hour)
            if draw < self.site_flutter:
                shift = stable_index(
                    self.seed, "flutter-site", device_key, hour, modulo=len(site_keys)
                )
                site_key = site_keys[shift]
        machines = self.by_site[site_key]
        if self.machine_epoch_s:
            epoch = int(now // self.machine_epoch_s)
            pick = stable_index(
                self.seed, "machine", device_key, site_key, epoch,
                modulo=len(machines),
            )
        else:
            pick = stable_index(
                self.seed, "machine", device_key, site_key, modulo=len(machines)
            )
        return machines[pick]


@dataclass
class LoadBalancedPairing(PairingPolicy):
    """Near-uniform balancing across all externals (T-Mobile-style).

    A small stickiness term keeps back-to-back queries on one machine
    *sometimes*, but most measurements see a fresh resolver, frequently
    in a different /24.
    """

    externals: List[ExternalResolver] = field(default_factory=list)
    seed: int = 0
    coherence_s: float = 600.0

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        if not self.externals:
            raise ConfigError("load-balanced deployment has no externals")
        epoch = int(now // self.coherence_s)
        pick = stable_index(
            self.seed, "lb", device_key, epoch, modulo=len(self.externals)
        )
        return self.externals[pick]


@dataclass
class DnsDeployment:
    """A carrier's complete indirect-resolution deployment."""

    kind: DeploymentKind
    client_addresses: List[ClientFacingAddress]
    externals: List[ExternalResolver]
    sites: List[ResolverSite]
    pairing: PairingPolicy
    #: Extra RTT between the client-facing front and the external tier
    #: (zero when co-located, as with SK Telecom; positive for deep
    #: hierarchies, Fig 4).
    tier_gap_ms: float = 0.0
    #: Memo of DHCP front candidates per anchor point (fronts and sites
    #: are fixed after construction, anchors recur per city).
    _dhcp_memo: Dict[object, List[ClientFacingAddress]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not self.client_addresses:
            raise ConfigError("deployment needs at least one client address")
        if not self.externals:
            raise ConfigError("deployment needs at least one external resolver")

    def client_address_for(
        self, device_key: str, seed: int, near=None
    ) -> ClientFacingAddress:
        """Which configured resolver address a device receives via DHCP.

        When ``near`` (a GeoPoint) is given and the fronts are fixed
        machines, DHCP hands out one of the two closest fronts — real
        operators regionalise resolver assignment.  Anycast fronts are
        location-free, so any address does.
        """
        candidates = self.client_addresses
        if near is not None and not candidates[0].anycast and len(candidates) > 1:
            cached = self._dhcp_memo.get(near)
            if cached is None:
                ranked = sorted(
                    candidates,
                    key=lambda address: self.sites[
                        (address.site_index or 0) % len(self.sites)
                    ].location.distance_km(near),
                )
                cached = ranked[: min(2, len(ranked))]
                self._dhcp_memo[near] = cached
            candidates = cached
        index = stable_index(
            seed, "client-addr", device_key, modulo=len(candidates)
        )
        return candidates[index]

    def external_for(
        self,
        client_address: ClientFacingAddress,
        device_key: str,
        egress_index: int,
        now: float,
    ) -> ExternalResolver:
        """Resolve the pairing for one query."""
        return self.pairing.external_for(
            client_address, device_key, egress_index, now
        )

    def serving_site(
        self, client_address: ClientFacingAddress, egress_index: int
    ) -> ResolverSite:
        """The site answering the *client-facing* address for a device.

        Anycast fronts are served from the site the egress routes to;
        fixed fronts are served where they live.
        """
        if client_address.anycast or client_address.site_index is None:
            return self.sites[egress_index % len(self.sites)]
        return self.sites[client_address.site_index % len(self.sites)]

    def external_by_ip(self, ip: str) -> Optional[ExternalResolver]:
        """Look an external resolver up by address."""
        for resolver in self.externals:
            if resolver.ip == ip:
                return resolver
        return None

    def external_ips(self) -> List[str]:
        """All external resolver addresses."""
        return [resolver.ip for resolver in self.externals]

    def client_ips(self) -> List[str]:
        """All configured client-facing addresses."""
        return [address.ip for address in self.client_addresses]


def group_by_site(
    externals: Sequence[ExternalResolver],
) -> Dict[int, List[ExternalResolver]]:
    """Index external resolvers by their site (anycast pairing input)."""
    by_site: Dict[int, List[ExternalResolver]] = {}
    for resolver in externals:
        by_site.setdefault(resolver.site.index, []).append(resolver)
    return by_site
