"""RFC 1035 wire format: encoding and decoding with name compression.

The simulation itself passes :class:`~repro.dns.message.DNSMessage`
objects around, but the wire codec keeps the substrate honest: every
message the measurement library "sends" can round-trip through real DNS
packet bytes, and the property tests in ``tests/dns`` verify that.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.core.errors import DNSDecodeError, DNSEncodeError, DNSError
from repro.dns.message import (
    DNSMessage,
    Question,
    RCode,
    ResourceRecord,
    RRType,
)

_HEADER = struct.Struct("!HHHHHH")
_CLASS_IN = 1
_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 64


# -- encoding -----------------------------------------------------------------


class _NameEncoder:
    """Encodes names with RFC 1035 compression pointers."""

    def __init__(self) -> None:
        self._offsets: Dict[str, int] = {}

    def encode(self, name: str, at_offset: int) -> bytes:
        """Encode ``name`` assuming it starts at byte ``at_offset``."""
        out = bytearray()
        labels = name.split(".") if name else []
        for index in range(len(labels)):
            suffix = ".".join(labels[index:])
            known = self._offsets.get(suffix)
            if known is not None and known < 0x4000:
                out += struct.pack("!H", 0xC000 | known)
                return bytes(out)
            self._offsets[suffix] = at_offset + len(out)
            label = labels[index].encode("ascii")
            if not 1 <= len(label) <= 63:
                raise DNSEncodeError(f"bad label length in {name!r}")
            out.append(len(label))
            out += label
        out.append(0)
        return bytes(out)


def _encode_rdata(record: ResourceRecord, encoder: _NameEncoder, offset: int) -> bytes:
    if record.rtype is RRType.A:
        parts = record.data.split(".")
        if len(parts) != 4:
            raise DNSEncodeError(f"bad A rdata {record.data!r}")
        try:
            return bytes(int(part) for part in parts)
        except ValueError as exc:
            raise DNSEncodeError(f"bad A rdata {record.data!r}") from exc
    if record.rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        return encoder.encode(record.data, offset)
    if record.rtype is RRType.TXT:
        text = record.data.encode("utf-8")
        if len(text) > 255:
            raise DNSEncodeError("TXT rdata too long")
        return bytes([len(text)]) + text
    if record.rtype is RRType.AAAA:
        groups = record.data.split(":")
        if len(groups) != 8:
            raise DNSEncodeError(f"bad AAAA rdata {record.data!r} (use full form)")
        try:
            return b"".join(struct.pack("!H", int(group, 16)) for group in groups)
        except ValueError as exc:
            raise DNSEncodeError(f"bad AAAA rdata {record.data!r}") from exc
    raise DNSEncodeError(f"cannot encode rdata for {record.rtype.name}")


def _flags_of(message: DNSMessage) -> int:
    flags = 0
    if message.is_response:
        flags |= 0x8000
    if message.authoritative:
        flags |= 0x0400
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= int(message.rcode) & 0x000F
    return flags


def encode_message(message: DNSMessage) -> bytes:
    """Serialise a message to wire bytes."""
    out = bytearray(
        _HEADER.pack(
            message.msg_id & 0xFFFF,
            _flags_of(message),
            len(message.questions),
            len(message.answers),
            len(message.authorities),
            len(message.additionals),
        )
    )
    encoder = _NameEncoder()
    for question in message.questions:
        out += encoder.encode(question.qname, len(out))
        out += struct.pack("!HH", int(question.qtype), _CLASS_IN)
    for record in (
        list(message.answers) + list(message.authorities) + list(message.additionals)
    ):
        out += encoder.encode(record.name, len(out))
        out += struct.pack("!HHI", int(record.rtype), _CLASS_IN, record.ttl)
        rdata_offset = len(out) + 2
        rdata = _encode_rdata(record, encoder, rdata_offset)
        out += struct.pack("!H", len(rdata))
        out += rdata
    return bytes(out)


# -- decoding -----------------------------------------------------------------


def _read_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Read a (possibly compressed) name; returns (name, next_offset)."""
    labels: List[str] = []
    jumps = 0
    next_offset = None
    while True:
        if offset >= len(data):
            raise DNSDecodeError("name runs past end of message")
        length = data[offset]
        if length & _POINTER_MASK == _POINTER_MASK:
            if offset + 1 >= len(data):
                raise DNSDecodeError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            jumps += 1
            if jumps > _MAX_POINTER_HOPS:
                raise DNSDecodeError("compression pointer loop")
            if pointer >= offset:
                raise DNSDecodeError("forward compression pointer")
            offset = pointer
            continue
        if length & _POINTER_MASK:
            raise DNSDecodeError(f"reserved label type 0x{length:02x}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise DNSDecodeError("label runs past end of message")
        try:
            labels.append(data[offset : offset + length].decode("ascii"))
        except UnicodeDecodeError as exc:
            raise DNSDecodeError("non-ASCII bytes in label") from exc
        offset += length
    return ".".join(labels).lower(), (next_offset if next_offset is not None else offset)


def _decode_rdata(
    rtype: int, data: bytes, offset: int, rdlength: int
) -> str:
    end = offset + rdlength
    if end > len(data):
        raise DNSDecodeError("rdata runs past end of message")
    if rtype == RRType.A:
        if rdlength != 4:
            raise DNSDecodeError(f"A rdata length {rdlength}")
        return ".".join(str(byte) for byte in data[offset:end])
    if rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        name, _ = _read_name(data, offset)
        return name
    if rtype == RRType.TXT:
        if rdlength < 1 or data[offset] != rdlength - 1:
            raise DNSDecodeError("bad TXT length byte")
        try:
            return data[offset + 1 : end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DNSDecodeError("invalid UTF-8 in TXT rdata") from exc
    if rtype == RRType.AAAA:
        if rdlength != 16:
            raise DNSDecodeError(f"AAAA rdata length {rdlength}")
        groups = struct.unpack("!8H", data[offset:end])
        return ":".join(f"{group:04x}" for group in groups)
    raise DNSDecodeError(f"cannot decode rdata for type {rtype}")


def _read_record(data: bytes, offset: int) -> Tuple[ResourceRecord, int]:
    name, offset = _read_name(data, offset)
    if offset + 10 > len(data):
        raise DNSDecodeError("truncated record header")
    rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
    offset += 10
    if rclass != _CLASS_IN:
        raise DNSDecodeError(f"unsupported class {rclass}")
    try:
        rr_type = RRType(rtype)
    except ValueError as exc:
        raise DNSDecodeError(f"unsupported RR type {rtype}") from exc
    rdata = _decode_rdata(rr_type, data, offset, rdlength)
    try:
        record = ResourceRecord(name, rr_type, ttl, rdata)
    except DNSError as exc:
        raise DNSDecodeError(f"invalid record for {name!r}: {exc}") from exc
    return record, offset + rdlength


def decode_message(data: bytes) -> DNSMessage:
    """Parse wire bytes back into a :class:`DNSMessage`."""
    if len(data) < _HEADER.size:
        raise DNSDecodeError("message shorter than header")
    msg_id, flags, qdcount, ancount, nscount, arcount = _HEADER.unpack_from(data)
    try:
        rcode = RCode(flags & 0x000F)
    except ValueError as exc:
        raise DNSDecodeError(f"unsupported rcode {flags & 0xF}") from exc
    message = DNSMessage(
        msg_id=msg_id,
        is_response=bool(flags & 0x8000),
        authoritative=bool(flags & 0x0400),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=rcode,
    )
    offset = _HEADER.size
    for _ in range(qdcount):
        qname, offset = _read_name(data, offset)
        if offset + 4 > len(data):
            raise DNSDecodeError("truncated question")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        offset += 4
        if qclass != _CLASS_IN:
            raise DNSDecodeError(f"unsupported class {qclass}")
        try:
            rr_type = RRType(qtype)
        except ValueError as exc:
            raise DNSDecodeError(f"unsupported qtype {qtype}") from exc
        try:
            message.questions.append(Question(qname, rr_type))
        except DNSError as exc:
            raise DNSDecodeError(f"invalid question {qname!r}: {exc}") from exc
    for section, count in (
        (message.answers, ancount),
        (message.authorities, nscount),
        (message.additionals, arcount),
    ):
        for _ in range(count):
            record, offset = _read_record(data, offset)
            section.append(record)
    if offset != len(data):
        raise DNSDecodeError(f"{len(data) - offset} trailing bytes")
    return message
