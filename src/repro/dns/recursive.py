"""Recursive resolution engine.

One engine instance backs each external-facing resolver (cellular) and
each public-DNS cluster.  It owns a cache, knows which authority serves
each zone, chases CNAME chains across authorities, and accounts for the
upstream latency a cache miss costs — the mechanism behind the paper's
Fig 7 (cache misses inflate ~20% of resolutions) and the resolution-time
tails in Figs 5/6/13.

Root and TLD referrals are assumed warm (as they are on any production
resolver); the authority directory plays the role of that warm NS cache.

Resolution is the simulator's hottest path (it runs ~39 times per
experiment), so the engine keeps *compiled resolution plans*: for a
given (qname, qtype, client subnet) the authority chain walked by
:meth:`RecursiveEngine._fetch_chain` is deterministic given static zone
data, so after one generic walk the chain and its static answer
templates are memoised.  Replaying a plan samples exactly the same
upstream RTTs (the only random draws on the walk) and re-derives only
what genuinely varies per call:

* **RTT sampling** — one ``flow_rtt`` draw per authority hop, same
  arguments and order as the generic walk;
* **CDN replica selection** — memoised per mapping-rotation epoch
  (:meth:`~repro.cdn.provider.CdnAuthority.rotation_epoch`) and
  recomputed when the epoch rolls;
* **resolver-echo observations** — logged per call via
  :meth:`~repro.dns.authoritative.ResolverEchoAuthority.observe` (echo
  names are unique per experiment, so echo chains ride a per-engine
  inline fast path instead of stored plans);
* **TTL aging** — applied lazily at the cache boundary.

Plans stamp the directory and zone versions they compiled against and
are discarded on mismatch, so zone edits are never served stale.
``_fetch_chain`` itself is kept as the uncompiled reference walk; the
property tests assert plan replay is byte-identical to it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.cdn.provider import CdnAuthority
from repro.core.errors import ResolutionError
from repro.core.internet import VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream
from repro.core.transport import Transport
from repro.dns.authoritative import (
    Authority,
    ResolverEchoAuthority,
    StaticAuthority,
)
from repro.dns.cache import DnsCache
from repro.dns.message import (
    RCode,
    ResourceRecord,
    RRType,
    make_query,
    normalize_name,
)
from repro.dns.zone import MAX_CNAME_CHAIN, ZoneDirectory

#: Cap on stored plans per engine (resolving unbounded unique names —
#: e.g. under an unregistered zone — must not grow memory unboundedly).
MAX_COMPILED_PLANS = 65536


class RecursiveResult:
    """Outcome of one recursive resolution.

    Warm cache hits are allocation-free: the result holds the cached
    record templates plus the remaining TTL, and the aged clones are
    built only if :attr:`records` is actually read (``addresses`` and
    ``cname_chain`` read the templates directly — aging never changes
    rdata or type).
    """

    __slots__ = (
        "qname",
        "qtype",
        "rcode",
        "upstream_ms",
        "cache_hit",
        "resolver_ip",
        "authorities",
        "min_ttl",
        "_records",
        "_raw",
        "_remaining",
        "_addresses",
        "_cnames",
    )

    def __init__(
        self,
        qname: str,
        qtype: RRType,
        records: Optional[List[ResourceRecord]] = None,
        rcode: RCode = RCode.NOERROR,
        upstream_ms: float = 0.0,
        cache_hit: bool = False,
        resolver_ip: str = "",
        authorities: Optional[List[str]] = None,
        raw_records: Optional[Tuple[ResourceRecord, ...]] = None,
        ttl_remaining: int = 0,
        min_ttl: Optional[int] = None,
        addresses: Optional[Tuple[str, ...]] = None,
        cnames: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.qname = qname
        self.qtype = qtype
        #: Time spent talking to authorities (0 for cache hits).
        self.upstream_ms = upstream_ms
        self.rcode = rcode
        self.cache_hit = cache_hit
        #: IP the authorities saw as the query source (the resolver itself).
        self.resolver_ip = resolver_ip
        #: Authorities contacted, in order (empty for cache hits).
        self.authorities = authorities if authorities is not None else ()
        #: Minimum TTL over ``records`` when the producer already knows
        #: it (compiled-plan replays); None means "compute if needed".
        self.min_ttl = min_ttl
        self._records = records
        self._raw = raw_records
        self._remaining = ttl_remaining
        #: Pre-extracted answer views (compiled-plan replays hand these
        #: in from the plan's memo); None means "scan the records".
        self._addresses = addresses
        self._cnames = cnames

    @property
    def records(self) -> List[ResourceRecord]:
        """Answer records, TTLs aged to the lookup instant."""
        records = self._records
        if records is None:
            remaining = self._remaining
            records = [record.with_ttl(remaining) for record in self._raw]
            self._records = records
        return records

    def _template_records(self):
        records = self._records
        return records if records is not None else self._raw

    def addresses(self) -> List[str]:
        """A-record addresses in the final answer."""
        pre = self._addresses
        if pre is not None:
            return list(pre)
        return [
            record.data
            for record in self._template_records()
            if record.rtype is RRType.A
        ]

    def cname_chain(self) -> List[str]:
        """CNAME targets in the answer, in chain order."""
        pre = self._cnames
        if pre is not None:
            return list(pre)
        return [
            record.data
            for record in self._template_records()
            if record.rtype is RRType.CNAME
        ]


class _Plan:
    """One compiled resolution chain for (qname, qtype, client subnet)."""

    __slots__ = (
        "hops",
        "hop_programs",
        "draw_count",
        "static_records",
        "static_min_ttl",
        "rcode",
        "terminal_kind",
        "terminal_authority",
        "terminal_qname",
        "client_subnet",
        "directory_version",
        "zone_checks",
        "cdn_memo",
        "answer_memo",
    )

    def __init__(
        self,
        hops: Tuple[str, ...],
        hop_programs: Tuple,
        static_records: Tuple[ResourceRecord, ...],
        rcode: RCode,
        terminal_kind: Optional[str],
        terminal_authority: Optional[Authority],
        terminal_qname: str,
        client_subnet: Optional[str],
        directory_version: int,
        zone_checks: Tuple[tuple, ...],
    ) -> None:
        #: Authority-host IPs in query order.
        self.hops = hops
        #: Per-hop flow programs ``(c0, terms, trail)`` in the same
        #: order (see ``VirtualInternet.flow_program``): the closures
        #: ``_hop_rtt`` would call, as data.  Storing programs instead
        #: of samplers lets a replay pre-count the whole chain's
        #: Gaussian draws and consume one contiguous pool slice.
        self.hop_programs = hop_programs
        #: Total Gaussian draws across the chain (static per plan).
        self.draw_count = sum(len(terms) for _, terms, _ in hop_programs)
        #: Accumulated answers of the static NOERROR hops (whole chain
        #: when the plan is fully static, the prefix otherwise).
        self.static_records = static_records
        #: Minimum TTL over the static records (None when there are
        #: none) — the cache-lifetime scan, hoisted out of every replay.
        self.static_min_ttl = (
            min(record.ttl for record in static_records)
            if static_records
            else None
        )
        #: Final rcode of a fully static chain.
        self.rcode = rcode
        #: None (fully static) or "cdn" — the last hop re-derives.
        self.terminal_kind = terminal_kind
        self.terminal_authority = terminal_authority
        #: Name queried at the terminal hop (post-CNAME-chase).
        self.terminal_qname = terminal_qname
        self.client_subnet = client_subnet
        self.directory_version = directory_version
        #: (authority, zone, version) per static hop.
        self.zone_checks = zone_checks
        #: ``(addresses, cnames)`` extracted from the static records once
        #: at compile time, so replays and cache hits on fully static
        #: chains never re-scan the answer tuple.
        self.answer_memo = (
            tuple(r.data for r in static_records if r.rtype is RRType.A),
            tuple(r.data for r in static_records if r.rtype is RRType.CNAME),
        )
        #: ``(epoch, rcode, records, min_ttl, addresses, cnames)`` of the
        #: last CDN answer merged with the static prefix; re-derived on
        #: rotation (the per-/24 replica windows may move).
        self.cdn_memo: Optional[tuple] = None

    def combined_memo(self, epoch, rcode, cdn_records) -> tuple:
        """Build one epoch's ``cdn_memo``: the full answer set (static
        prefix plus CDN terminal) with its TTL floor and pre-extracted
        address/CNAME views, so replays within the epoch touch nothing
        but this tuple."""
        records = self.static_records + cdn_records
        return (
            epoch,
            rcode,
            records,
            min(record.ttl for record in records) if records else None,
            tuple(r.data for r in records if r.rtype is RRType.A),
            tuple(r.data for r in records if r.rtype is RRType.CNAME),
        )


class RecursiveEngine:
    """Cache-backed recursive resolver logic bound to a resolver host."""

    def __init__(
        self,
        host: Host,
        directory: ZoneDirectory,
        internet: VirtualInternet,
        cache: Optional[DnsCache] = None,
        background_warm_prob: float = 0.0,
        background_interval_s: float = 12.0,
        transport: Optional[Transport] = None,
    ) -> None:
        self.host = host
        self.directory = directory
        self.internet = internet
        #: The delivery layer upstream query legs cross.  Engines built
        #: by the world share its transport; directly constructed ones
        #: (tests, tools) get a private fault-free layer over the same
        #: internet — identical draws either way.
        self.transport = transport if transport is not None else Transport(internet)
        self.cache = cache or DnsCache(name=f"cache@{host.ip}")
        #: Cap on the probability that, on what would be a cold lookup,
        #: some other user of this resolver has already populated the
        #: cache.  Our simulated device population is tiny compared to the
        #: millions of subscribers behind a production LDNS, so the
        #: background load is modelled instead of simulated
        #: packet-by-packet.
        self.background_warm_prob = background_warm_prob
        #: Mean inter-arrival of background queries for a popular name at
        #: this resolver.  The *effective* warm probability couples to the
        #: answer's TTL: an entry with TTL t is live a fraction
        #: ``1 - exp(-t / interval)`` of the time, which is what makes the
        #: short CDN TTLs — and only them — produce Fig 7's miss rate.
        self.background_interval_s = background_interval_s
        #: Lifetime of cached negative answers (RFC 2308 stand-in).
        self.negative_ttl_s = 60
        #: The resolver's probe origin is constant (resolvers do not
        #: move); build it once instead of per upstream query.
        self._upstream_origin: Optional[ProbeOrigin] = None
        #: Precompiled RTT samplers per authority address: the resolver's
        #: origin never moves, so each upstream leg's deterministic parts
        #: fold into one closure (see VirtualInternet.flow_sampler).
        self._hop_samplers: dict = {}
        #: Declarative flow programs per authority address (None for
        #: unreachable hops) — the plan compiler's counterpart of
        #: ``_hop_samplers``.
        self._hop_programs: dict = {}
        #: Compiled plans per (qname, qtype, client_subnet); None marks a
        #: chain that cannot be compiled (an authority of unknown type).
        self._plans: Dict[tuple, Optional[_Plan]] = {}
        #: Effective background-warm probability per (integer) TTL — a
        #: pure function of the TTL and two engine constants, so the
        #: memo cannot change any draw.
        self._warm_prob_memo: Dict[int, float] = {}

    # -- internals -------------------------------------------------------

    def _origin(self, stream: RandomStream) -> ProbeOrigin:
        """The resolver's own probe origin for upstream queries."""
        origin = self._upstream_origin
        if origin is None:
            origin = ProbeOrigin(
                source_ip=self.host.ip,
                asys=self.host.asys,
                location=self.host.location,
                access_rtt_ms=0.1,
                origin_id=f"resolver:{self.host.ip}",
            )
            self._upstream_origin = origin
        return origin

    def _hop_rtt(self, ip: str, stream: RandomStream) -> float:
        """One upstream RTT draw toward an authority address.

        The reachability verdict lives in the transport layer:
        ``authority_link`` hands back either the substrate's compiled
        RTT sampler or a callable that raises
        :class:`~repro.core.errors.ResolutionError` — the engine just
        memoises and calls whichever it got.
        """
        sampler = self._hop_samplers.get(ip)
        if sampler is None:
            sampler = self.transport.authority_link(
                self._origin(stream), ip, self.host.ip
            )
            self._hop_samplers[ip] = sampler
        return sampler(stream)

    def _hop_program(self, ip: str, stream: RandomStream):
        """The declarative flow program toward an authority address
        (None when unreachable), memoised like ``_hop_samplers``."""
        program = self._hop_programs.get(ip, False)
        if program is False:
            program = self.transport.authority_program(self._origin(stream), ip)
            self._hop_programs[ip] = program
        return program

    def _query_authority(
        self,
        authority: Authority,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str] = None,
    ) -> tuple:
        """Send one query upstream; returns (response, rtt_ms)."""
        rtt = self._hop_rtt(authority.host.ip, stream)
        response = authority.answer(
            make_query(qname, qtype), self.host.ip, now, client_subnet=client_subnet
        )
        return response, rtt

    def _fetch_chain(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        timed: bool,
        client_subnet: Optional[str] = None,
    ) -> RecursiveResult:
        """Walk authorities, chasing CNAMEs, accumulating upstream time.

        The uncompiled reference walk: plan compilation and replay in
        :meth:`_resolve_upstream` must stay byte-identical to this.
        """
        answers: List[ResourceRecord] = []
        contacted: List[str] = []
        upstream_ms = 0.0
        current = normalize_name(qname)
        rcode = RCode.NOERROR
        for _ in range(MAX_CNAME_CHAIN):
            authority = self.directory.authority_for(current)
            if authority is None:
                rcode = RCode.SERVFAIL
                break
            response, rtt = self._query_authority(
                authority, current, qtype, now, stream, client_subnet=client_subnet
            )
            if timed:
                upstream_ms += rtt
            contacted.append(authority.host.ip)
            rcode = response.rcode
            if rcode is not RCode.NOERROR:
                break
            answers.extend(response.answers)
            terminal = [
                record for record in response.answers if record.rtype is qtype
            ]
            if terminal or not response.answers:
                break
            last = response.answers[-1]
            if last.rtype is not RRType.CNAME:
                break
            current = last.data
        else:
            raise ResolutionError(f"CNAME chain too long resolving {qname}")
        return RecursiveResult(
            qname=normalize_name(qname),
            qtype=qtype,
            records=answers,
            rcode=rcode,
            upstream_ms=upstream_ms,
            cache_hit=False,
            resolver_ip=self.host.ip,
            authorities=contacted,
        )

    # -- compiled plans --------------------------------------------------

    def _plan_valid(self, plan: _Plan) -> bool:
        """Whether a compiled plan still matches the zone data."""
        if plan.directory_version != self.directory.version:
            return False
        for authority, zone, version in plan.zone_checks:
            if authority.zone is not zone or zone.version != version:
                return False
        return True

    def _walk_and_compile(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str],
        plan_key: tuple,
    ) -> RecursiveResult:
        """Generic chain walk that also compiles a plan when possible."""
        answers: List[ResourceRecord] = []
        contacted: List[str] = []
        upstream_ms = 0.0
        current = qname
        rcode = RCode.NOERROR
        directory_version = self.directory.version
        zone_checks: List[tuple] = []
        static_records: List[ResourceRecord] = []
        terminal_kind: Optional[str] = None
        terminal_authority: Optional[Authority] = None
        terminal_qname = current
        plannable = True
        for _ in range(MAX_CNAME_CHAIN):
            authority = self.directory.authority_for(current)
            if authority is None:
                rcode = RCode.SERVFAIL
                break
            response, rtt = self._query_authority(
                authority, current, qtype, now, stream, client_subnet=client_subnet
            )
            upstream_ms += rtt
            contacted.append(authority.host.ip)
            rcode = response.rcode
            kind = type(authority)
            if kind is StaticAuthority:
                zone_checks.append(
                    (authority, authority.zone, authority.zone.version)
                )
                if rcode is RCode.NOERROR:
                    static_records.extend(response.answers)
            elif kind is CdnAuthority:
                terminal_kind = "cdn"
                terminal_authority = authority
                terminal_qname = current
            elif kind is ResolverEchoAuthority:
                # Echo names are unique per experiment; a stored plan
                # would never be replayed.  The inline fast path in
                # _resolve_upstream covers direct echo chains, so only
                # CNAME-into-echo chains land here — walk them generically.
                plannable = False
            else:
                plannable = False
            if rcode is not RCode.NOERROR:
                break
            answers.extend(response.answers)
            terminal = [
                record for record in response.answers if record.rtype is qtype
            ]
            if terminal or not response.answers:
                break
            last = response.answers[-1]
            if last.rtype is not RRType.CNAME:
                break
            if terminal_kind is not None:
                # A dynamic authority continued the chain; its future
                # answers may redirect elsewhere, so don't compile.
                plannable = False
                terminal_kind = None
                terminal_authority = None
            current = last.data
        else:
            raise ResolutionError(f"CNAME chain too long resolving {qname}")

        if plannable:
            # Every contacted hop was reachable (the walk queried it),
            # so its flow program exists; the None check is defensive.
            programs = tuple(
                (program[0], program[1], program[2])
                for ip in contacted
                if (program := self._hop_program(ip, stream)) is not None
            )
            plannable = len(programs) == len(contacted)
        if plannable:
            plan = _Plan(
                hops=tuple(contacted),
                hop_programs=programs,
                # Static hops' answers only: a CDN terminal hop's
                # (epoch-varying) answers live in the cdn_memo instead.
                static_records=tuple(static_records),
                rcode=rcode,
                terminal_kind=terminal_kind,
                terminal_authority=terminal_authority,
                terminal_qname=terminal_qname,
                client_subnet=client_subnet,
                directory_version=directory_version,
                zone_checks=tuple(zone_checks),
            )
            if terminal_kind == "cdn":
                cdn_records = (
                    tuple(response.answers) if rcode is RCode.NOERROR else ()
                )
                plan.cdn_memo = plan.combined_memo(
                    terminal_authority.rotation_epoch(now), rcode, cdn_records
                )
            if len(self._plans) < MAX_COMPILED_PLANS or plan_key in self._plans:
                self._plans[plan_key] = plan
            # Publish the engine-independent part of the plan so sibling
            # engines (fresh shards, other resolvers) can rebuild their
            # own plan without repeating this walk.
            chain_memo = self.directory.chain_memo
            if len(chain_memo) < MAX_COMPILED_PLANS or plan_key in chain_memo:
                chain_memo[plan_key] = (
                    directory_version,
                    plan.hops,
                    plan.static_records,
                    rcode,
                    terminal_kind,
                    terminal_authority,
                    terminal_qname,
                    plan.zone_checks,
                )
        else:
            if len(self._plans) < MAX_COMPILED_PLANS or plan_key in self._plans:
                self._plans[plan_key] = None
            chain_memo = self.directory.chain_memo
            if len(chain_memo) < MAX_COMPILED_PLANS or plan_key in chain_memo:
                chain_memo[plan_key] = None

        return RecursiveResult(
            qname=qname,
            qtype=qtype,
            records=answers,
            rcode=rcode,
            upstream_ms=upstream_ms,
            cache_hit=False,
            resolver_ip=self.host.ip,
            authorities=contacted,
        )

    def _plan_from_skeleton(
        self, skeleton: tuple, plan_key: tuple, stream: RandomStream
    ) -> Optional[_Plan]:
        """Rebuild a private plan from a shared chain skeleton.

        The skeleton carries everything engine-independent (the hop
        sequence, static answers, terminal descriptor, version stamps);
        only the per-hop flow programs are looked up locally.  Returns
        None when the skeleton is stale or some hop is unreachable from
        this engine — the caller falls back to the generic walk, which
        will either refresh the shared memo or raise the same
        unreachable error the walk always raised.
        """
        (
            directory_version,
            hops,
            static_records,
            rcode,
            terminal_kind,
            terminal_authority,
            terminal_qname,
            zone_checks,
        ) = skeleton
        if directory_version != self.directory.version:
            return None
        programs = []
        for ip in hops:
            program = self._hop_program(ip, stream)
            if program is None:
                return None
            programs.append((program[0], program[1], program[2]))
        return _Plan(
            hops=hops,
            hop_programs=tuple(programs),
            static_records=static_records,
            rcode=rcode,
            terminal_kind=terminal_kind,
            terminal_authority=terminal_authority,
            terminal_qname=terminal_qname,
            client_subnet=plan_key[2],
            directory_version=directory_version,
            zone_checks=zone_checks,
        )

    def _replay_plan(
        self,
        plan: _Plan,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
    ) -> RecursiveResult:
        """Re-run a compiled chain: fresh RTT draws, memoised answers.

        The chain's Gaussian draw count is static (stored on the plan),
        so the whole chain is sampled from one contiguous
        :meth:`~repro.core.rng.RandomStream.gauss_block` slice — the
        same deviates, in the same order, the per-hop closures would
        have drawn one call at a time.
        """
        upstream_ms = 0.0
        zs = stream.gauss_block(plan.draw_count) if plan.draw_count else ()
        index = 0
        _exp = math.exp
        for c0, terms, trail in plan.hop_programs:
            value = c0
            for log_base, sigma in terms:
                value += _exp(log_base + sigma * zs[index])
                index += 1
            for const in trail:
                value += const
            upstream_ms += value
        if plan.terminal_kind is None:
            # The shared immutable tuple: every consumer (address/CNAME
            # extraction, TTL scan, cache insert) only iterates it.
            rcode = plan.rcode
            records = plan.static_records
            min_ttl = plan.static_min_ttl
            addresses, cnames = plan.answer_memo
        else:  # "cdn"
            authority = plan.terminal_authority
            epoch = authority.rotation_epoch(now)
            memo = plan.cdn_memo
            if memo is None or memo[0] != epoch:
                response = authority.answer(
                    make_query(plan.terminal_qname, qtype),
                    self.host.ip,
                    now,
                    client_subnet=plan.client_subnet,
                )
                cdn_records = (
                    tuple(response.answers)
                    if response.rcode is RCode.NOERROR
                    else ()
                )
                memo = plan.combined_memo(epoch, response.rcode, cdn_records)
                plan.cdn_memo = memo
            _, rcode, records, min_ttl, addresses, cnames = memo
        return RecursiveResult(
            qname,
            qtype,
            records,
            rcode,
            upstream_ms,
            False,
            self.host.ip,
            plan.hops,
            None,
            0,
            min_ttl,
            addresses,
            cnames,
        )

    def _resolve_upstream(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str],
    ) -> RecursiveResult:
        """A cache-miss resolution: replay a plan or walk and compile."""
        plan_key = (qname, qtype, client_subnet)
        plan = self._plans.get(plan_key, False)
        if plan is not False and plan is not None:
            # _plan_valid, inlined (this is the warm-miss fast path);
            # checked before the authority lookup: a valid plan already
            # pins the chain, so replays skip the directory entirely.
            if plan.directory_version == self.directory.version:
                for authority, zone, version in plan.zone_checks:
                    if authority.zone is not zone or zone.version != version:
                        break
                else:
                    return self._replay_plan(plan, qname, qtype, now, stream)
        elif plan is False:
            # First touch on this engine: another engine resolving
            # through the same directory may already have walked this
            # chain and published its skeleton — rebuild a private plan
            # from it instead of paying the full compile walk.  Replay
            # is byte-identical to the walk (same Gaussian deviates via
            # the pooled block, same answer content), so which engine
            # compiled first can never change a record.
            skeleton = self.directory.chain_memo.get(plan_key, False)
            if skeleton is None:
                plan = None  # proven uncompilable: walk generically
            elif skeleton is not False:
                built = self._plan_from_skeleton(skeleton, plan_key, stream)
                if built is not None and self._plan_valid(built):
                    if (
                        len(self._plans) < MAX_COMPILED_PLANS
                        or plan_key in self._plans
                    ):
                        self._plans[plan_key] = built
                    return self._replay_plan(built, qname, qtype, now, stream)
        authority = self.directory.authority_for(qname)
        if type(authority) is ResolverEchoAuthority:
            # Inline echo fast path: the chain is always the single echo
            # hop (the authority answers any in-zone name with one
            # zero-TTL A record), and echo names are unique per
            # experiment so a stored plan would never be reused (they
            # never enter ``_plans``, so the lookup above always misses).
            rtt = self._hop_rtt(authority.host.ip, stream)
            record = authority.observe(qname, self.host.ip, now)
            return RecursiveResult(
                qname=qname,
                qtype=qtype,
                records=[record],
                rcode=RCode.NOERROR,
                upstream_ms=rtt,
                cache_hit=False,
                resolver_ip=self.host.ip,
                authorities=[authority.host.ip],
            )
        if plan is None:
            # Known-uncompilable chain: walk generically without
            # re-attempting compilation bookkeeping.
            return self._fetch_chain(
                qname, qtype, now, stream, timed=True, client_subnet=client_subnet
            )
        return self._walk_and_compile(
            qname, qtype, now, stream, client_subnet, plan_key
        )

    # -- public API ------------------------------------------------------------

    def resolve(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str] = None,
        cache_scope: Optional[str] = None,
    ) -> RecursiveResult:
        """Resolve a name, serving from cache when possible.

        Zero-TTL answers (the resolver-echo zone) are never cached, which
        is exactly why the echo technique reveals the live resolver.

        With ``client_subnet`` (EDNS Client Subnet, RFC 7871) the cache
        is scoped per subnet — answers tailored to one client prefix must
        never be served to another — and the subnet is forwarded to the
        authorities.

        ``cache_scope`` partitions the cache by an opaque label.  Engines
        shared by several cellular operators (public DNS clusters) scope
        entries per operator so one carrier's queries never warm or evict
        another carrier's view — the *shard isolation contract* that lets
        per-carrier campaign shards run in parallel yet bit-identically
        to a serial run.  Cross-carrier warmth is modelled (as all other
        background population is) by ``background_warm_prob``.

        Every lookup counts exactly once in the cache statistics: as a
        hit when served from cache (including modelled background-warm
        hits) or as a miss otherwise, so ``stats.lookups`` equals the
        number of ``resolve`` calls.
        """
        qname = normalize_name(qname)
        cache = self.cache
        stats = cache.stats
        key = (cache_scope, client_subnet, qname, qtype)
        peeked = cache.peek_entry(key, now)
        if peeked is not None:
            stats.hits += 1
            records, remaining, negative = peeked
            return RecursiveResult(
                qname,
                qtype,
                None,
                RCode.NXDOMAIN if negative else RCode.NOERROR,
                0.0,
                True,
                self.host.ip,
                None,
                records,
                remaining,
            )
        result = self._resolve_upstream(qname, qtype, now, stream, client_subnet)
        if result.rcode is RCode.NXDOMAIN:
            # Negative caching (RFC 2308); stand-in for the SOA minimum.
            stats.misses += 1
            cache.put_negative(
                qname, qtype, self.negative_ttl_s, now,
                scope=cache_scope, subnet=client_subnet,
            )
            return result
        if result.rcode is not RCode.NOERROR or not result.records:
            stats.misses += 1
            return result
        ttl = result.min_ttl
        if ttl is None:
            ttl = min(record.ttl for record in result.records)
        if ttl <= 0:
            stats.misses += 1
            return result
        if client_subnet is None and self._background_warm_hit(ttl, stream):
            # Another subscriber fetched this recently: the entry is
            # already cached, randomly aged, and our query is a hit.
            age = stream.uniform(0.0, ttl * 0.95)
            cache.put_answer_entry(key, result.records, now - age, ttl)
            peeked = cache.peek_entry(key, now)
            if peeked is not None:
                stats.hits += 1
                records, remaining, negative = peeked
                return RecursiveResult(
                    qname=qname,
                    qtype=qtype,
                    rcode=RCode.NOERROR,
                    upstream_ms=0.0,
                    cache_hit=True,
                    resolver_ip=self.host.ip,
                    raw_records=records,
                    ttl_remaining=remaining,
                )
        stats.misses += 1
        cache.put_answer_entry(key, result.records, now, ttl)
        return result

    def _background_warm_hit(self, ttl: int, stream: RandomStream) -> bool:
        """Whether background traffic had this answer cached already.

        The probability couples the cap (how universally popular the
        measured names are) with the chance that, given the background
        query rate, an entry with this TTL is currently live.
        """
        if self.background_warm_prob <= 0:
            return False
        probability = self._warm_prob_memo.get(ttl)
        if probability is None:
            alive = 1.0 - math.exp(-ttl / self.background_interval_s)
            probability = self.background_warm_prob * alive
            self._warm_prob_memo[ttl] = probability
        return stream.bernoulli(probability)
