"""Recursive resolution engine.

One engine instance backs each external-facing resolver (cellular) and
each public-DNS cluster.  It owns a cache, knows which authority serves
each zone, chases CNAME chains across authorities, and accounts for the
upstream latency a cache miss costs — the mechanism behind the paper's
Fig 7 (cache misses inflate ~20% of resolutions) and the resolution-time
tails in Figs 5/6/13.

Root and TLD referrals are assumed warm (as they are on any production
resolver); the authority directory plays the role of that warm NS cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ResolutionError
from repro.core.internet import VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream
from repro.dns.authoritative import Authority
from repro.dns.cache import DnsCache
from repro.dns.message import (
    DNSMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_query,
    normalize_name,
)
from repro.dns.zone import MAX_CNAME_CHAIN, ZoneDirectory


@dataclass
class RecursiveResult:
    """Outcome of one recursive resolution."""

    qname: str
    qtype: RRType
    records: List[ResourceRecord]
    rcode: RCode
    #: Time spent talking to authorities (0 for cache hits).
    upstream_ms: float
    cache_hit: bool
    #: IP the authorities saw as the query source (the resolver itself).
    resolver_ip: str
    #: Authorities contacted, in order (empty for cache hits).
    authorities: List[str] = field(default_factory=list)

    def addresses(self) -> List[str]:
        """A-record addresses in the final answer."""
        return [record.data for record in self.records if record.rtype is RRType.A]


class RecursiveEngine:
    """Cache-backed recursive resolver logic bound to a resolver host."""

    def __init__(
        self,
        host: Host,
        directory: ZoneDirectory,
        internet: VirtualInternet,
        cache: Optional[DnsCache] = None,
        background_warm_prob: float = 0.0,
        background_interval_s: float = 12.0,
    ) -> None:
        self.host = host
        self.directory = directory
        self.internet = internet
        self.cache = cache or DnsCache(name=f"cache@{host.ip}")
        #: Cap on the probability that, on what would be a cold lookup,
        #: some other user of this resolver has already populated the
        #: cache.  Our simulated device population is tiny compared to the
        #: millions of subscribers behind a production LDNS, so the
        #: background load is modelled instead of simulated
        #: packet-by-packet.
        self.background_warm_prob = background_warm_prob
        #: Mean inter-arrival of background queries for a popular name at
        #: this resolver.  The *effective* warm probability couples to the
        #: answer's TTL: an entry with TTL t is live a fraction
        #: ``1 - exp(-t / interval)`` of the time, which is what makes the
        #: short CDN TTLs — and only them — produce Fig 7's miss rate.
        self.background_interval_s = background_interval_s
        #: Lifetime of cached negative answers (RFC 2308 stand-in).
        self.negative_ttl_s = 60
        #: The resolver's probe origin is constant (resolvers do not
        #: move); build it once instead of per upstream query.
        self._upstream_origin: Optional[ProbeOrigin] = None
        #: Routing facts per authority address (static topology).
        self._route_memo: dict = {}

    # -- internals -------------------------------------------------------

    def _origin(self, stream: RandomStream) -> ProbeOrigin:
        """The resolver's own probe origin for upstream queries."""
        origin = self._upstream_origin
        if origin is None:
            origin = ProbeOrigin(
                source_ip=self.host.ip,
                asys=self.host.asys,
                location=self.host.location,
                access_rtt_ms=0.1,
                origin_id=f"resolver:{self.host.ip}",
            )
            self._upstream_origin = origin
        return origin

    def _query_authority(
        self,
        authority: Authority,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str] = None,
    ) -> tuple:
        """Send one query upstream; returns (response, rtt_ms)."""
        origin = self._origin(stream)
        ip = authority.host.ip
        route = self._route_memo.get(ip)
        if route is None:
            route = self.internet.route_view(origin, ip)
            self._route_memo[ip] = route
        rtt = self.internet.flow_rtt(origin, ip, stream, route=route)
        if rtt is None:
            raise ResolutionError(
                f"authority {authority.host.ip} unreachable from {self.host.ip}"
            )
        response = authority.answer(
            make_query(qname, qtype), self.host.ip, now, client_subnet=client_subnet
        )
        return response, rtt

    def _fetch_chain(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        timed: bool,
        client_subnet: Optional[str] = None,
    ) -> RecursiveResult:
        """Walk authorities, chasing CNAMEs, accumulating upstream time."""
        answers: List[ResourceRecord] = []
        contacted: List[str] = []
        upstream_ms = 0.0
        current = normalize_name(qname)
        rcode = RCode.NOERROR
        for _ in range(MAX_CNAME_CHAIN):
            authority = self.directory.authority_for(current)
            if authority is None:
                rcode = RCode.SERVFAIL
                break
            response, rtt = self._query_authority(
                authority, current, qtype, now, stream, client_subnet=client_subnet
            )
            if timed:
                upstream_ms += rtt
            contacted.append(authority.host.ip)
            rcode = response.rcode
            if rcode is not RCode.NOERROR:
                break
            answers.extend(response.answers)
            terminal = [
                record for record in response.answers if record.rtype is qtype
            ]
            if terminal or not response.answers:
                break
            last = response.answers[-1]
            if last.rtype is not RRType.CNAME:
                break
            current = last.data
        else:
            raise ResolutionError(f"CNAME chain too long resolving {qname}")
        return RecursiveResult(
            qname=normalize_name(qname),
            qtype=qtype,
            records=answers,
            rcode=rcode,
            upstream_ms=upstream_ms,
            cache_hit=False,
            resolver_ip=self.host.ip,
            authorities=contacted,
        )

    # -- public API ------------------------------------------------------------

    def resolve(
        self,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
        client_subnet: Optional[str] = None,
        cache_scope: Optional[str] = None,
    ) -> RecursiveResult:
        """Resolve a name, serving from cache when possible.

        Zero-TTL answers (the resolver-echo zone) are never cached, which
        is exactly why the echo technique reveals the live resolver.

        With ``client_subnet`` (EDNS Client Subnet, RFC 7871) the cache
        is scoped per subnet — answers tailored to one client prefix must
        never be served to another — and the subnet is forwarded to the
        authorities.

        ``cache_scope`` partitions the cache by an opaque label.  Engines
        shared by several cellular operators (public DNS clusters) scope
        entries per operator so one carrier's queries never warm or evict
        another carrier's view — the *shard isolation contract* that lets
        per-carrier campaign shards run in parallel yet bit-identically
        to a serial run.  Cross-carrier warmth is modelled (as all other
        background population is) by ``background_warm_prob``.
        """
        qname = normalize_name(qname)
        cache_name = qname if client_subnet is None else (
            f"{client_subnet.split('/')[0]}.__ecs__.{qname}"
        )
        if cache_scope:
            cache_name = f"{cache_scope}.__scope__.{cache_name}"
        entry = self.cache.get_entry_kind(cache_name, qtype, now)
        if entry is not None:
            self.cache.stats.hits += 1
            records, negative = entry
            return RecursiveResult(
                qname=qname,
                qtype=qtype,
                records=records,
                rcode=RCode.NXDOMAIN if negative else RCode.NOERROR,
                upstream_ms=0.0,
                cache_hit=True,
                resolver_ip=self.host.ip,
            )
        self.cache.stats.misses += 1
        result = self._fetch_chain(
            qname, qtype, now, stream, timed=True, client_subnet=client_subnet
        )
        if result.rcode is RCode.NXDOMAIN:
            # Negative caching (RFC 2308); stand-in for the SOA minimum.
            self.cache.put_negative(
                cache_name, qtype, self.negative_ttl_s, now
            )
            return result
        if result.rcode is not RCode.NOERROR or not result.records:
            return result
        ttl = min(record.ttl for record in result.records)
        if ttl <= 0:
            return result
        if client_subnet is None and self._background_warm_hit(ttl, stream):
            # Another subscriber fetched this recently: the entry is
            # already cached, randomly aged, and our query is a hit.
            age = stream.uniform(0.0, ttl * 0.95)
            self.cache.put_answer(cache_name, qtype, result.records, now - age)
            aged = self.cache.get(cache_name, qtype, now)
            if aged is not None:
                return RecursiveResult(
                    qname=qname,
                    qtype=qtype,
                    records=aged,
                    rcode=RCode.NOERROR,
                    upstream_ms=0.0,
                    cache_hit=True,
                    resolver_ip=self.host.ip,
                )
        self.cache.put_answer(cache_name, qtype, result.records, now)
        return result

    def _background_warm_hit(self, ttl: int, stream: RandomStream) -> bool:
        """Whether background traffic had this answer cached already.

        The probability couples the cap (how universally popular the
        measured names are) with the chance that, given the background
        query rate, an entry with this TTL is currently live.
        """
        if self.background_warm_prob <= 0:
            return False
        alive = 1.0 - math.exp(-ttl / self.background_interval_s)
        return stream.bernoulli(self.background_warm_prob * alive)
