"""Reproduction of "Behind the Curtain: Cellular DNS and Content Replica
Selection" (Rula & Bustamante, IMC 2014).

The package is organised as a set of substrates plus the paper's measurement
and analysis pipeline:

``repro.core``
    Virtual clock, seeded randomness, IPv4 addressing, autonomous systems,
    the :class:`~repro.core.internet.VirtualInternet` and the end-to-end
    :class:`~repro.core.study.CellularDNSStudy` orchestrator.
``repro.geo``
    Geography: coordinates, distance -> latency models, US and South Korea
    city data.
``repro.dns``
    DNS substrate: messages, wire format, zones, caches, authoritative and
    recursive servers, indirect-resolution structures (pools, anycast,
    tiers) and public anycast DNS services.
``repro.cellnet``
    Cellular substrate: radio technologies, 3G/LTE architectures, NAT and
    firewall opaqueness, ephemeral addressing, mobility, carrier presets.
``repro.cdn``
    Content delivery: replica servers, /24-based replica mapping, CDN
    authoritative DNS, the paper's nine-domain catalogue.
``repro.measure``
    The paper's client-side experiment (Sec 3.2), scheduler, campaign runner
    and dataset container.
``repro.analysis``
    Cosine similarity, consistency, latency CDFs, egress identification,
    reachability, cache analysis and report formatting.
"""

from repro.core.study import CellularDNSStudy, StudyConfig
from repro.core.world import World, WorldConfig, build_world

__version__ = "1.0.0"

__all__ = [
    "CellularDNSStudy",
    "StudyConfig",
    "World",
    "WorldConfig",
    "build_world",
    "__version__",
]
