"""Distance -> latency model for the wired Internet segment.

Every end-to-end RTT in the simulation decomposes as::

    access RTT (radio or wired NIC)           -- repro.cellnet.radio
  + operator-internal RTT (device -> egress)  -- repro.cellnet.architecture
  + WAN RTT (egress geo -> destination geo)   -- this module
  + destination stack time

The WAN model is speed-of-light-in-fibre propagation with a path inflation
factor (real paths are not great circles), per-AS-hop router overhead, and
multiplicative log-normal jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import RandomStream
from repro.geo.coordinates import GeoPoint

#: One-way propagation delay in fibre, milliseconds per kilometre
#: (light travels roughly 200 km per millisecond in glass).
MS_PER_KM_ONE_WAY = 1.0 / 200.0


@dataclass
class WanLatencyModel:
    """Parameterised wide-area RTT model.

    Attributes
    ----------
    path_inflation:
        Multiplier on great-circle distance; 1.6 reflects typical detour
        ratios observed for inter-city Internet paths.
    hop_overhead_ms:
        Per-router forwarding/queueing overhead added per inferred hop.
    min_rtt_ms:
        Floor for same-building communication.
    jitter_sigma:
        Sigma of the multiplicative log-normal jitter applied to each
        sample (0 disables jitter).
    """

    path_inflation: float = 1.6
    hop_overhead_ms: float = 0.35
    min_rtt_ms: float = 0.4
    jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        # Endpoint pairs repeat heavily (devices probe many targets from
        # one position); the deterministic part of the RTT is memoised.
        self._base_memo: dict = {}

    def base_rtt_ms(self, src: GeoPoint, dst: GeoPoint) -> float:
        """Deterministic (jitter-free) WAN RTT between two points.

        Memoised on the (frozen, value-hashed) endpoint pair directly —
        no per-call key tuple to build, and two structurally equal
        points always share an entry.
        """
        key = (src, dst)
        cached = self._base_memo.get(key)
        if cached is not None:
            return cached
        distance_km = src.distance_km(dst)
        propagation = 2.0 * distance_km * MS_PER_KM_ONE_WAY * self.path_inflation
        hops = self.hop_count(distance_km)
        base = max(self.min_rtt_ms, propagation + hops * self.hop_overhead_ms)
        if len(self._base_memo) < 1_000_000:
            self._base_memo[key] = base
        return base

    def rtt_ms(self, src: GeoPoint, dst: GeoPoint, stream: RandomStream) -> float:
        """One sampled WAN RTT (base plus multiplicative jitter)."""
        base = self.base_rtt_ms(src, dst)
        if self.jitter_sigma <= 0:
            return base
        return stream.lognormal_ms(base, self.jitter_sigma)

    def hop_count(self, distance_km: float) -> int:
        """Inferred router hop count for a path of the given length.

        Grows with distance but saturates: intercontinental paths do not
        accumulate hops linearly.
        """
        if distance_km < 5.0:
            return 2
        if distance_km < 100.0:
            return 4
        if distance_km < 500.0:
            return 6
        if distance_km < 1500.0:
            return 9
        if distance_km < 4000.0:
            return 12
        return 16
