"""Distance -> latency model for the wired Internet segment.

Every end-to-end RTT in the simulation decomposes as::

    access RTT (radio or wired NIC)           -- repro.cellnet.radio
  + operator-internal RTT (device -> egress)  -- repro.cellnet.architecture
  + WAN RTT (egress geo -> destination geo)   -- this module
  + destination stack time

The WAN model is speed-of-light-in-fibre propagation with a path inflation
factor (real paths are not great circles), per-AS-hop router overhead, and
multiplicative log-normal jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rng import RandomStream
from repro.geo.coordinates import GeoPoint

#: One-way propagation delay in fibre, milliseconds per kilometre
#: (light travels roughly 200 km per millisecond in glass).
MS_PER_KM_ONE_WAY = 1.0 / 200.0


@dataclass
class WanLatencyModel:
    """Parameterised wide-area RTT model.

    Attributes
    ----------
    path_inflation:
        Multiplier on great-circle distance; 1.6 reflects typical detour
        ratios observed for inter-city Internet paths.
    hop_overhead_ms:
        Per-router forwarding/queueing overhead added per inferred hop.
    min_rtt_ms:
        Floor for same-building communication.
    jitter_sigma:
        Sigma of the multiplicative log-normal jitter applied to each
        sample (0 disables jitter).
    """

    path_inflation: float = 1.6
    hop_overhead_ms: float = 0.35
    min_rtt_ms: float = 0.4
    jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        # Endpoint pairs repeat heavily (devices probe many targets from
        # one position); the deterministic part of the RTT is memoised.
        self._base_memo: dict = {}
        # (base, ln(base)) per pair, for the per-sample path.
        self._leg_memo: dict = {}

    def base_rtt_ms(self, src: GeoPoint, dst: GeoPoint) -> float:
        """Deterministic (jitter-free) WAN RTT between two points.

        Memoised on the (frozen, value-hashed) endpoint pair directly —
        no per-call key tuple to build, and two structurally equal
        points always share an entry.
        """
        key = (src, dst)
        cached = self._base_memo.get(key)
        if cached is not None:
            return cached
        distance_km = src.distance_km(dst)
        propagation = 2.0 * distance_km * MS_PER_KM_ONE_WAY * self.path_inflation
        hops = self.hop_count(distance_km)
        base = max(self.min_rtt_ms, propagation + hops * self.hop_overhead_ms)
        if len(self._base_memo) < 1_000_000:
            self._base_memo[key] = base
        return base

    def rtt_ms(self, src: GeoPoint, dst: GeoPoint, stream: RandomStream) -> float:
        """One sampled WAN RTT (base plus multiplicative jitter)."""
        base, log_base = self.leg_params(src, dst)
        if self.jitter_sigma <= 0:
            return base
        return stream.lognormal_from_log(log_base, self.jitter_sigma)

    def leg_params(self, src: GeoPoint, dst: GeoPoint) -> tuple:
        """``(base, ln(base))`` for one endpoint pair, memoised.

        ``ln(base)`` feeds :meth:`RandomStream.lognormal_from_log`, which
        is bit-identical to ``lognormal_ms(base, sigma)`` — the log is
        just hoisted out of the per-sample path.
        """
        key = (src, dst)
        leg = self._leg_memo.get(key)
        if leg is None:
            base = self.base_rtt_ms(src, dst)
            leg = (base, math.log(base))
            if len(self._leg_memo) < 1_000_000:
                self._leg_memo[key] = leg
        return leg

    def leg_sampler(self, src: GeoPoint, dst: GeoPoint):
        """A sampler bound to one endpoint pair: ``f(stream) == rtt_ms``.

        Bit-identical to :meth:`rtt_ms` for the same stream state — one
        log-normal draw from the precomputed ``ln(base)`` when jitter is
        on, the base constant (no draw) otherwise — while skipping the
        per-call memo lookup and endpoint hashing.  Hot paths with fixed
        endpoints (a resolver's upstream authorities) compile these once.
        """
        base, log_base = self.leg_params(src, dst)
        sigma = self.jitter_sigma
        if sigma <= 0:
            return lambda stream, _base=base: _base
        return lambda stream, _m=log_base, _s=sigma: stream.lognormal_from_log(
            _m, _s
        )

    def leg_program(self, src: GeoPoint, dst: GeoPoint) -> tuple:
        """Declarative sampler for one leg: ``(value, sigma)``.

        ``sigma > 0`` means the leg draws one Gaussian and contributes
        ``exp(value + sigma * z)`` (``value`` is ``ln(base)``); ``sigma
        <= 0`` means it contributes the constant ``value`` (the base)
        with no draw.  This is :meth:`leg_sampler` as data instead of a
        closure, so flow compilers can count draws statically and fuse
        whole chains into one ``gauss_block`` consumption.
        """
        base, log_base = self.leg_params(src, dst)
        sigma = self.jitter_sigma
        if sigma <= 0:
            return (base, 0.0)
        return (log_base, sigma)

    def hop_count(self, distance_km: float) -> int:
        """Inferred router hop count for a path of the given length.

        Grows with distance but saturates: intercontinental paths do not
        accumulate hops linearly.
        """
        if distance_km < 5.0:
            return 2
        if distance_km < 100.0:
            return 4
        if distance_km < 500.0:
            return 6
        if distance_km < 1500.0:
            return 9
        if distance_km < 4000.0:
            return 12
        return 16
