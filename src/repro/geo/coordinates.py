"""Geographic coordinates and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to another point in kilometres."""
        return haversine_km(self, other)

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """A point displaced by the given kilometre offsets.

        Small-displacement approximation, used to scatter devices around a
        city centre and to model coarse (paper: 100 m radius rounded)
        location reporting.
        """
        dlat = north_km / 111.32
        dlon = east_km / (111.32 * max(math.cos(math.radians(self.latitude)), 1e-6))
        latitude = min(90.0, max(-90.0, self.latitude + dlat))
        longitude = self.longitude + dlon
        if longitude > 180.0:
            longitude -= 360.0
        elif longitude < -180.0:
            longitude += 360.0
        return GeoPoint(latitude, longitude)

    def __str__(self) -> str:
        return f"({self.latitude:.4f}, {self.longitude:.4f})"


def haversine_km(first: GeoPoint, second: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1 = math.radians(first.latitude)
    lat2 = math.radians(second.latitude)
    dlat = lat2 - lat1
    dlon = math.radians(second.longitude - first.longitude)
    a = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))
