"""Geographic coordinates and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")
        # Points key the latency-model memos, where the same few objects
        # are hashed hundreds of thousands of times per campaign.
        object.__setattr__(
            self, "_hash", hash((self.latitude, self.longitude))
        )
        # Haversine terms that depend on one endpoint only.  The stored
        # values are exactly what the distance formula would compute
        # inline, so distances stay bit-identical.
        rad_lat = math.radians(self.latitude)
        object.__setattr__(self, "_rad_lat", rad_lat)
        object.__setattr__(self, "_cos_lat", math.cos(rad_lat))

    def __hash__(self) -> int:
        return self._hash

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to another point in kilometres."""
        return haversine_km(self, other)

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """A point displaced by the given kilometre offsets.

        Small-displacement approximation, used to scatter devices around a
        city centre and to model coarse (paper: 100 m radius rounded)
        location reporting.
        """
        dlat = north_km / 111.32
        dlon = east_km / (111.32 * max(math.cos(math.radians(self.latitude)), 1e-6))
        latitude = min(90.0, max(-90.0, self.latitude + dlat))
        longitude = self.longitude + dlon
        if longitude > 180.0:
            longitude -= 360.0
        elif longitude < -180.0:
            longitude += 360.0
        return GeoPoint(latitude, longitude)

    def __str__(self) -> str:
        return f"({self.latitude:.4f}, {self.longitude:.4f})"


def haversine_km(first: GeoPoint, second: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres.

    Uses the per-point precomputed latitude terms; ``dlon`` must stay
    ``radians(lon2 - lon1)`` (not a difference of precomputed radians,
    which rounds differently) to match the original formula bit for bit.
    """
    dlat = second._rad_lat - first._rad_lat
    dlon = math.radians(second.longitude - first.longitude)
    a = (
        math.sin(dlat / 2.0) ** 2
        + first._cos_lat * second._cos_lat * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))
