"""Geography substrate: coordinates, regions and latency models."""

from repro.geo.coordinates import GeoPoint, haversine_km
from repro.geo.latency import WanLatencyModel
from repro.geo.regions import (
    ASIA_PACIFIC_CITIES,
    City,
    Country,
    SOUTH_KOREA_CITIES,
    US_CITIES,
    cities_for,
    city_named,
)

__all__ = [
    "GeoPoint",
    "haversine_km",
    "WanLatencyModel",
    "City",
    "Country",
    "US_CITIES",
    "SOUTH_KOREA_CITIES",
    "ASIA_PACIFIC_CITIES",
    "cities_for",
    "city_named",
]
