"""City and region data for the two markets the paper studies.

The paper places clients, cellular egress points, DNS resolver sites and
CDN replica clusters in the US and South Korea (Sec 3.1).  Coordinates are
approximate city centres; ``weight`` is a rough population share used when
scattering clients.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.geo.coordinates import GeoPoint


class Country(str, enum.Enum):
    """Markets covered by the study, plus infrastructure-only regions."""

    US = "US"
    SOUTH_KOREA = "KR"
    #: Asia-Pacific cities host public-DNS/CDN infrastructure only; no
    #: study clients live there.
    ASIA_PACIFIC = "APAC"


@dataclass(frozen=True)
class City:
    """A named location used for placement."""

    name: str
    country: Country
    location: GeoPoint
    weight: float = 1.0

    def __str__(self) -> str:
        return f"{self.name}, {self.country.value}"


def _us(name: str, lat: float, lon: float, weight: float) -> City:
    return City(name, Country.US, GeoPoint(lat, lon), weight)


def _kr(name: str, lat: float, lon: float, weight: float) -> City:
    return City(name, Country.SOUTH_KOREA, GeoPoint(lat, lon), weight)


#: Major US metro areas (client placement + infrastructure sites).
US_CITIES: List[City] = [
    _us("New York", 40.7128, -74.0060, 8.4),
    _us("Los Angeles", 34.0522, -118.2437, 4.0),
    _us("Chicago", 41.8781, -87.6298, 2.7),
    _us("Houston", 29.7604, -95.3698, 2.3),
    _us("Phoenix", 33.4484, -112.0740, 1.6),
    _us("Philadelphia", 39.9526, -75.1652, 1.6),
    _us("San Antonio", 29.4241, -98.4936, 1.5),
    _us("San Diego", 32.7157, -117.1611, 1.4),
    _us("Dallas", 32.7767, -96.7970, 1.3),
    _us("San Jose", 37.3382, -121.8863, 1.0),
    _us("Austin", 30.2672, -97.7431, 0.9),
    _us("Jacksonville", 30.3322, -81.6557, 0.9),
    _us("Columbus", 39.9612, -82.9988, 0.9),
    _us("Indianapolis", 39.7684, -86.1581, 0.9),
    _us("San Francisco", 37.7749, -122.4194, 0.9),
    _us("Seattle", 47.6062, -122.3321, 0.7),
    _us("Denver", 39.7392, -104.9903, 0.7),
    _us("Washington DC", 38.9072, -77.0369, 0.7),
    _us("Boston", 42.3601, -71.0589, 0.7),
    _us("Nashville", 36.1627, -86.7816, 0.7),
    _us("Detroit", 42.3314, -83.0458, 0.7),
    _us("Portland", 45.5152, -122.6784, 0.6),
    _us("Memphis", 35.1495, -90.0490, 0.6),
    _us("Atlanta", 33.7490, -84.3880, 0.6),
    _us("Miami", 25.7617, -80.1918, 0.5),
    _us("Kansas City", 39.0997, -94.5786, 0.5),
    _us("Minneapolis", 44.9778, -93.2650, 0.4),
    _us("Salt Lake City", 40.7608, -111.8910, 0.2),
    _us("Charlotte", 35.2271, -80.8431, 0.9),
    _us("St. Louis", 38.6270, -90.1994, 0.3),
]

#: Major South Korean cities.
SOUTH_KOREA_CITIES: List[City] = [
    _kr("Seoul", 37.5665, 126.9780, 9.7),
    _kr("Busan", 35.1796, 129.0756, 3.4),
    _kr("Incheon", 37.4563, 126.7052, 2.9),
    _kr("Daegu", 35.8714, 128.6014, 2.4),
    _kr("Daejeon", 36.3504, 127.3845, 1.5),
    _kr("Gwangju", 35.1595, 126.8526, 1.5),
    _kr("Suwon", 37.2636, 127.0286, 1.2),
    _kr("Ulsan", 35.5384, 129.3114, 1.1),
    _kr("Changwon", 35.2281, 128.6811, 1.0),
    _kr("Jeonju", 35.8242, 127.1480, 0.7),
]

def _ap(name: str, lat: float, lon: float, weight: float) -> City:
    return City(name, Country.ASIA_PACIFIC, GeoPoint(lat, lon), weight)


#: Asia-Pacific infrastructure sites.  In 2014 neither Google Public DNS
#: nor OpenDNS operated resolver clusters inside South Korea; Korean
#: queries were served from Japan, Taiwan, Hong Kong or Singapore — the
#: root of the paper's "public DNS takes nearly twice as long" finding
#: for the SK carriers (Sec 6.1).
ASIA_PACIFIC_CITIES: List[City] = [
    _ap("Tokyo", 35.6762, 139.6503, 3.0),
    _ap("Osaka", 34.6937, 135.5023, 1.5),
    _ap("Taipei", 25.0330, 121.5654, 1.2),
    _ap("Hong Kong", 22.3193, 114.1694, 1.4),
    _ap("Singapore", 1.3521, 103.8198, 1.3),
]

_BY_COUNTRY: Dict[Country, List[City]] = {
    Country.US: US_CITIES,
    Country.SOUTH_KOREA: SOUTH_KOREA_CITIES,
    Country.ASIA_PACIFIC: ASIA_PACIFIC_CITIES,
}


def cities_for(country: Country) -> List[City]:
    """All placement cities for a country."""
    return list(_BY_COUNTRY[country])


def city_named(name: str) -> City:
    """Look a city up by name across both markets."""
    for cities in _BY_COUNTRY.values():
        for city in cities:
            if city.name == name:
                return city
    raise KeyError(f"unknown city: {name!r}")


def city_weights(cities: Sequence[City]) -> List[float]:
    """Population weights aligned with ``cities`` (for weighted choice)."""
    return [city.weight for city in cities]


#: Where the paper's external vantage point lives (a university network in
#: the US Midwest; the authors probed from Northwestern University).
UNIVERSITY_VANTAGE_CITY = city_named("Chicago")
