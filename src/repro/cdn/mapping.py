"""CDN replica-selection policy: resolver /24 -> replica cluster.

Section 5.1 infers that CDNs group LDNS resolvers by /24 prefix and map
each group to a replica cluster using network measurements toward the
resolver.  Two properties of cellular networks break the scheme:

* **Opaqueness** — the CDN cannot traceroute or ping into the operator
  (Sec 4.4), so its position estimate for a cellular resolver /24 is
  noisy or outright wrong; it only sees the operator's egress.
* **Churn** — clients hop between resolver /24s (Sec 4.5), so they hop
  between whatever clusters those /24s were mapped to.

The :class:`MappingPolicy` here reproduces both: per-/24 location
estimates with market-calibrated error (small for public DNS clusters
the CDN can measure freely, large for cellular resolvers), refreshed on
a slow epoch, then nearest-cluster selection on the *estimate*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.addressing import prefix24
from repro.core.clock import SECONDS_PER_DAY
from repro.core.rng import stable_fraction, stable_index
from repro.geo.coordinates import GeoPoint

#: Looks an IP up and reports (location, is_cellular); the study builder
#: wires this to the virtual Internet's registries.
ResolverLocator = Callable[[str], Optional[Tuple[GeoPoint, bool]]]


@dataclass
class MappingPolicy:
    """Per-/24 cluster mapping with imperfect localisation."""

    locator: ResolverLocator
    cluster_locations: List[GeoPoint]
    seed: int
    #: Estimate error (km, uniform radius) for measurable /24s.
    wired_error_km: float = 60.0
    #: Estimate error for cellular /24s the CDN cannot probe: it only
    #: sees the operator's egress region, so estimates are city-scale
    #: wrong but usually not continent-scale wrong.
    cellular_error_km: float = 160.0
    #: Probability a cellular /24's estimate is essentially arbitrary
    #: (mapped behind a distant divergence point).
    cellular_blunder_prob: float = 0.08
    #: How often the CDN refreshes its estimates.
    remap_epoch_s: float = 30 * SECONDS_PER_DAY
    #: Cache of decided mappings, keyed by (/24, epoch).
    _decisions: Dict[Tuple[str, int], int] = field(default_factory=dict)

    #: Estimate error for ECS client subnets: the CDN ties performance
    #: feedback (actual client connections) to the prefix directly, so
    #: accuracy approaches the wired case even inside cellular space.
    ecs_error_km: float = 80.0

    #: Canonicalises a resolver address to its /24's representative
    #: member before localisation.  The CDN measures a resolver block
    #: *once* — its estimate is a property of the /24, not of whichever
    #: member happened to query first — so without this a block housing
    #: resolvers in different cities would be pinned by query order,
    #: breaking the shard-isolation contract (device ranges executed in
    #: any order, on any worker, must observe identical mappings).
    anchor_canon: Optional[Callable[[str], str]] = None

    def cluster_for(
        self, resolver_ip: str, now: float, is_client_subnet: bool = False
    ) -> int:
        """Index of the cluster serving this resolver's /24 at ``now``."""
        block = prefix24(resolver_ip)
        epoch = int(now // self.remap_epoch_s)
        key = (block, epoch)
        cached = self._decisions.get(key)
        if cached is not None:
            return cached
        decision = self._decide(block, epoch, resolver_ip, is_client_subnet)
        self._decisions[key] = decision
        return decision

    def _decide(
        self, block: str, epoch: int, anchor_ip: str, is_client_subnet: bool
    ) -> int:
        if not is_client_subnet and self.anchor_canon is not None:
            # Client-subnet anchors are already block-pure (a client /24
            # NATs through one egress region); resolver anchors must be
            # canonicalised so the decision is order-independent.
            anchor_ip = self.anchor_canon(anchor_ip)
        located = self.locator(anchor_ip)
        if located is None:
            # Unknown space: arbitrary but stable assignment.
            return stable_index(
                self.seed, "unknown", block, epoch, modulo=len(self.cluster_locations)
            )
        location, is_cellular = located
        if is_client_subnet:
            error_km = self.ecs_error_km
        elif is_cellular:
            if (
                stable_fraction(self.seed, "blunder", block, epoch)
                < self.cellular_blunder_prob
            ):
                return stable_index(
                    self.seed, "blunder-pick", block, epoch,
                    modulo=len(self.cluster_locations),
                )
            error_km = self.cellular_error_km
        else:
            error_km = self.wired_error_km
        estimate = self._perturb(location, block, epoch, error_km)
        return min(
            range(len(self.cluster_locations)),
            key=lambda index: self.cluster_locations[index].distance_km(estimate),
        )

    def _perturb(
        self, location: GeoPoint, block: str, epoch: int, error_km: float
    ) -> GeoPoint:
        north = (
            stable_fraction(self.seed, "err-n", block, epoch) - 0.5
        ) * 2.0 * error_km
        east = (
            stable_fraction(self.seed, "err-e", block, epoch) - 0.5
        ) * 2.0 * error_km
        return location.offset_km(north, east)

    def mapped_blocks(self) -> List[str]:
        """All /24s the policy has decided so far (diagnostics)."""
        return sorted({block for block, _ in self._decisions})
