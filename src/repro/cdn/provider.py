"""CDN providers: replica clusters plus DNS-based replica selection.

A provider owns geographically spread replica clusters (one /24 per
cluster), an authoritative server for its edge zone, and a
:class:`~repro.cdn.mapping.MappingPolicy` that turns the querying
resolver's address into a cluster choice — the mechanism the whole study
revolves around.

The measured domains don't host content themselves: their origin zones
answer with a CNAME into a provider's edge zone (Sec 3.2: every chosen
domain's resolution "initially resulted in a canonical name record").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cdn.catalog import MEASURED_DOMAINS, DomainSpec
from repro.cdn.mapping import MappingPolicy, ResolverLocator
from repro.cdn.replica import ReplicaServer
from repro.core.addressing import Prefix, PrefixAllocator
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.internet import VirtualInternet
from repro.core.node import Host
from repro.core.rng import stable_index
from repro.dns.authoritative import Authority, StaticAuthority
from repro.dns.message import (
    DNSMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_response,
    normalize_name,
)
from repro.dns.zone import Zone, ZoneDirectory
from repro.geo.regions import City, city_named


@dataclass
class ReplicaCluster:
    """One edge location: a /24 of replica servers in a city."""

    index: int
    city: City
    prefix: Prefix
    replicas: List[ReplicaServer] = field(default_factory=list)

    @property
    def location(self):
        """Where the cluster sits."""
        return self.city.location


@dataclass
class CdnAuthority(Authority):
    """The provider's ADNS: maps resolver /24s to replica A records.

    When a query carries an EDNS Client Subnet option, selection keys on
    the *client's* /24 instead of the resolver's — the localization fix
    the paper's discussion points toward (and RFC 7871 standardised).
    """

    provider: Optional["CDNProvider"] = None

    def rotation_epoch(self, now: float) -> int:
        """The mapping-rotation epoch governing answers at ``now``.

        Replica selection is a pure function of (anchor /24, epoch):
        :meth:`~repro.cdn.mapping.MappingPolicy.cluster_for` keys its
        decisions on ``int(now // remap_epoch_s)`` and the within-cluster
        window is a stable hash.  Compiled resolution plans therefore
        memoise one answer per epoch and recompute on rotation.
        """
        return int(now // self.provider.mapping.remap_epoch_s)

    def answer(
        self,
        query: DNSMessage,
        client_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> DNSMessage:
        question = query.question
        if question is None or self.provider is None:
            return make_response(query, rcode=RCode.FORMERR)
        if not self.serves(question.qname):
            return make_response(query, rcode=RCode.REFUSED)
        spec = self.provider.domain_for_edge_name(question.qname)
        if spec is None:
            return make_response(query, rcode=RCode.NXDOMAIN)
        if question.qtype is not RRType.A:
            return make_response(query, authoritative=True)
        replicas = self.provider.select_replicas(
            spec, client_ip, now, client_subnet=client_subnet
        )
        ttl = (
            self.provider.a_ttl_override
            if self.provider.a_ttl_override is not None
            else spec.a_ttl
        )
        answers = [
            ResourceRecord(question.qname, RRType.A, ttl, replica.ip)
            for replica in replicas
        ]
        return make_response(query, answers=answers, authoritative=True)


class CDNProvider:
    """One content delivery network."""

    def __init__(
        self,
        key: str,
        system: AutonomousSystem,
        clusters: List[ReplicaCluster],
        mapping: MappingPolicy,
        authority: CdnAuthority,
        seed: int,
        a_ttl_override: Optional[int] = None,
    ) -> None:
        self.key = key
        self.system = system
        self.clusters = clusters
        self.mapping = mapping
        self.authority = authority
        self.seed = seed
        #: When set, every answer uses this A TTL instead of the
        #: per-domain catalogue value (cache-behaviour ablations).
        self.a_ttl_override = a_ttl_override
        self._domains: Dict[str, DomainSpec] = {
            normalize_name(domain.edge_name): domain
            for domain in MEASURED_DOMAINS
            if domain.cdn_key == key
        }
        self._replica_index: Dict[str, ReplicaServer] = {
            replica.ip: replica
            for cluster in clusters
            for replica in cluster.replicas
        }

    # -- selection ----------------------------------------------------------

    def domain_for_edge_name(self, qname: str) -> Optional[DomainSpec]:
        """The catalogue entry behind an edge hostname."""
        return self._domains.get(normalize_name(qname))

    def select_replicas(
        self,
        spec: DomainSpec,
        resolver_ip: str,
        now: float,
        client_subnet: Optional[str] = None,
    ) -> List[ReplicaServer]:
        """The replicas returned to a resolver at ``now``.

        The cluster follows the /24 mapping; within the cluster a stable
        per-/24 window picks ``answers_per_response`` servers, so one
        resolver prefix always sees the same small set (cosine similarity
        ~1 within a /24, Fig 10) while different prefixes usually see
        disjoint sets.  An ECS ``client_subnet`` replaces the resolver's
        address as the mapping key.
        """
        if client_subnet is not None:
            anchor = client_subnet.split("/")[0]
            cluster_index = self.mapping.cluster_for(
                anchor, now, is_client_subnet=True
            )
        else:
            anchor = resolver_ip
            cluster_index = self.mapping.cluster_for(resolver_ip, now)
        cluster = self.clusters[cluster_index % len(self.clusters)]
        count = min(spec.answers_per_response, len(cluster.replicas))
        block = anchor.rsplit(".", 1)[0]
        start = stable_index(
            self.seed, "window", spec.name, block, modulo=len(cluster.replicas)
        )
        return [
            cluster.replicas[(start + offset) % len(cluster.replicas)]
            for offset in range(count)
        ]

    def all_replicas(self) -> List[ReplicaServer]:
        """Every replica across clusters."""
        return [replica for cluster in self.clusters for replica in cluster.replicas]

    def replica_by_ip(self, ip: str) -> Optional[ReplicaServer]:
        """Look a replica up by address."""
        return self._replica_index.get(ip)

    def cluster_of_ip(self, ip: str) -> Optional[ReplicaCluster]:
        """The cluster containing an address, if any."""
        for cluster in self.clusters:
            if cluster.prefix.contains(ip):
                return cluster
        return None


#: Edge footprints per provider: city names where clusters exist.
CDN_FOOTPRINTS: Dict[str, List[str]] = {
    # A Google-class network: broad US presence plus in-country SK edges.
    "globalcache": [
        "New York", "Los Angeles", "Chicago", "Dallas", "Seattle",
        "Atlanta", "Miami", "Denver", "San Jose", "Washington DC",
        "Kansas City", "Boston", "Seoul", "Busan", "Daejeon",
    ],
    # A large commercial CDN: strong US footprint, one SK location.
    "continental": [
        "New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
        "San Francisco", "Atlanta", "Minneapolis", "Charlotte", "Portland",
        "Seoul",
    ],
    # A US-centric CDN with no in-country SK presence.
    "usonly": [
        "New York", "Los Angeles", "Chicago", "Dallas",
        "San Jose", "Washington DC", "Atlanta", "Denver",
    ],
}

#: ASNs for the simulated providers.
CDN_ASNS: Dict[str, int] = {
    "globalcache": 15169,
    "continental": 20940,
    "usonly": 15133,
}

REPLICAS_PER_CLUSTER = 10


def build_cdn(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    key: str,
    allocator: PrefixAllocator,
    locator: ResolverLocator,
    seed: int,
    mapping_overrides: Optional[dict] = None,
    a_ttl_override: Optional[int] = None,
    anchor_canon=None,
) -> CDNProvider:
    """Create, register and wire one provider from its footprint."""
    system = AutonomousSystem(
        asn=CDN_ASNS[key],
        name=f"CDN {key}",
        kind=ASKind.CDN,
        firewall=FirewallPolicy(blocks_inbound=False),
    )
    internet.register_system(system)
    clusters: List[ReplicaCluster] = []
    for index, city_name in enumerate(CDN_FOOTPRINTS[key]):
        city = city_named(city_name)
        prefix = allocator.allocate24()
        system.add_prefix(prefix)
        cluster = ReplicaCluster(index=index, city=city, prefix=prefix)
        for machine in range(REPLICAS_PER_CLUSTER):
            host = Host(
                ip=prefix.host(machine + 1),
                name=f"edge.{key}.{city_name.lower().replace(' ', '-')}.{machine}",
                asys=system,
                location=city.location,
                stack_latency_ms=0.2,
            )
            internet.register_host(host)
            cluster.replicas.append(
                ReplicaServer(host=host, cluster_index=index, cdn_key=key)
            )
        clusters.append(cluster)

    adns_prefix = allocator.allocate24()
    system.add_prefix(adns_prefix)
    adns_host = Host(
        ip=adns_prefix.host(1),
        name=f"adns.{key}",
        asys=system,
        location=clusters[0].location,
        stack_latency_ms=0.5,
    )
    internet.register_host(adns_host)

    mapping_kwargs = dict(
        locator=locator,
        cluster_locations=[cluster.location for cluster in clusters],
        seed=seed,
        anchor_canon=anchor_canon,
    )
    mapping_kwargs.update(mapping_overrides or {})
    mapping = MappingPolicy(**mapping_kwargs)
    authority = CdnAuthority(host=adns_host, zone_apex=f"{key}-sim.net")
    provider = CDNProvider(
        key=key,
        system=system,
        clusters=clusters,
        mapping=mapping,
        authority=authority,
        seed=seed,
        a_ttl_override=a_ttl_override,
    )
    authority.provider = provider
    directory.register(f"{key}-sim.net", authority)
    return provider


def registrable_zone(name: str) -> str:
    """The origin zone apex of a measured hostname (``m.cnn.com`` -> ``cnn.com``)."""
    labels = normalize_name(name).split(".")
    if len(labels) < 2:
        return normalize_name(name)
    return ".".join(labels[-2:])


def build_origin_authorities(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    allocator: PrefixAllocator,
    domains: Sequence[DomainSpec] = tuple(MEASURED_DOMAINS),
) -> List[StaticAuthority]:
    """Authorities for the measured domains' origin zones.

    Each zone contains only the CNAME that hands its hostname to the
    hosting CDN's edge zone.
    """
    system = AutonomousSystem(
        asn=46489,
        name="Origin DNS Hosting",
        kind=ASKind.CONTENT,
        firewall=FirewallPolicy(blocks_inbound=False),
    )
    internet.register_system(system)
    prefix = allocator.allocate24()
    system.add_prefix(prefix)
    location = city_named("Washington DC").location

    by_zone: Dict[str, List[DomainSpec]] = {}
    for spec in domains:
        by_zone.setdefault(registrable_zone(spec.name), []).append(spec)

    authorities = []
    for offset, (apex, specs) in enumerate(sorted(by_zone.items())):
        host = Host(
            ip=prefix.host(offset + 1),
            name=f"ns1.{apex}",
            asys=system,
            location=location,
            stack_latency_ms=0.5,
        )
        internet.register_host(host)
        zone = Zone(apex)
        for spec in specs:
            zone.add_cname(spec.name, spec.edge_name, spec.cname_ttl)
        authority = StaticAuthority(host=host, zone_apex=apex, zone=zone)
        directory.register(apex, authority)
        authorities.append(authority)
    return authorities
