"""The nine measured mobile domains (Table 2).

The paper chose nine popular mobile sites whose resolution begins with a
CNAME — the signature of DNS-based load balancing.  The OCR of the paper
preserves only ``m.yelp.com`` in Table 2 (plus ``buzzfeed.com`` named in
Fig 10); the remaining entries are completed with popular CDN-served
mobile sites of the era and documented in DESIGN.md.

Each domain maps to one of the simulated CDNs; TTLs follow the paper's
observation that CDN A records are short-lived enough to defeat caches
~20% of the time (Fig 7), while the CNAME itself lives longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DomainSpec:
    """One measured domain and its CDN wiring."""

    name: str
    cdn_key: str
    #: TTL of the terminal A records (seconds).
    a_ttl: int
    #: TTL of the CNAME that hands the name to the CDN.
    cname_ttl: int
    #: Relative query popularity (drives background cache warmth).
    popularity: float
    #: How many replica addresses one response carries.
    answers_per_response: int = 2

    @property
    def edge_name(self) -> str:
        """The CDN-side CNAME target for this domain."""
        flattened = self.name.replace(".", "-")
        return f"{flattened}.edge.{self.cdn_key}-sim.net"


#: The nine domains measured in every experiment (Table 2).
MEASURED_DOMAINS: List[DomainSpec] = [
    DomainSpec("www.google.com", "globalcache", 60, 3600, 1.00),
    DomainSpec("m.facebook.com", "globalcache", 30, 3600, 0.95),
    DomainSpec("m.youtube.com", "globalcache", 45, 3600, 0.90),
    DomainSpec("m.twitter.com", "continental", 30, 1800, 0.70),
    DomainSpec("www.amazon.com", "continental", 60, 3600, 0.75),
    DomainSpec("m.yelp.com", "continental", 30, 1800, 0.45),
    DomainSpec("www.buzzfeed.com", "usonly", 20, 1800, 0.50),
    DomainSpec("m.espn.go.com", "usonly", 30, 1800, 0.55),
    DomainSpec("m.cnn.com", "usonly", 45, 1800, 0.60),
]


def domain_names() -> List[str]:
    """The nine hostnames, in catalogue order."""
    return [domain.name for domain in MEASURED_DOMAINS]


def domains_by_cdn() -> Dict[str, List[DomainSpec]]:
    """Catalogue grouped by hosting CDN."""
    grouped: Dict[str, List[DomainSpec]] = {}
    for domain in MEASURED_DOMAINS:
        grouped.setdefault(domain.cdn_key, []).append(domain)
    return grouped


def spec_for(name: str) -> DomainSpec:
    """Look a domain up by hostname."""
    for domain in MEASURED_DOMAINS:
        if domain.name == name:
            return domain
    raise KeyError(f"domain {name!r} is not in the measured catalogue")
