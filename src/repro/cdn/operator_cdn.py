"""On-net operator CDNs (the paper's Sec 7 outlook).

The paper closes by noting that "it is not surprising to see cellular
operators taking steps to offer their own content delivery solutions"
(Verizon had just acquired EdgeCast).  An operator CDN sidesteps both
problems the paper diagnoses:

* **no opaqueness** — the operator sees its own clients, so replica
  selection can key on the client's attachment instead of a churning
  resolver address;
* **no egress detour** — replicas sit *inside* the cellular network at
  the egress cities, so content never crosses the peering edge.

:func:`build_operator_cdn` grafts such a CDN onto an existing world:
replica clusters inside the operator's AS at its busiest egress cities,
plus an oracle selection policy driven by the device's attachment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cdn.catalog import DomainSpec
from repro.cdn.provider import CdnAuthority, CDNProvider, ReplicaCluster
from repro.cdn.mapping import MappingPolicy
from repro.cdn.replica import ReplicaServer
from repro.cellnet.operator import Attachment, CellularOperator
from repro.core.errors import ConfigError
from repro.core.node import Host
from repro.core.rng import stable_index
from repro.geo.regions import City


class OperatorCDN(CDNProvider):
    """A CDN the operator runs inside its own network."""

    def __init__(self, operator: CellularOperator, **kwargs) -> None:
        super().__init__(**kwargs)
        self.operator = operator
        self._cluster_for_egress: Dict[str, int] = {}

    def cluster_for_attachment(self, attachment: Attachment) -> ReplicaCluster:
        """The cluster nearest the device's current egress point.

        This is the oracle the paper says operators uniquely hold: the
        network *knows* where its client is attached.
        """
        cached = self._cluster_for_egress.get(attachment.egress.ip)
        if cached is None:
            cached = min(
                range(len(self.clusters)),
                key=lambda index: self.clusters[index].location.distance_km(
                    attachment.egress.location
                ),
            )
            self._cluster_for_egress[attachment.egress.ip] = cached
        return self.clusters[cached]

    def select_for_attachment(
        self, spec: DomainSpec, attachment: Attachment
    ) -> List[ReplicaServer]:
        """Replicas served to an attached device for one domain."""
        cluster = self.cluster_for_attachment(attachment)
        count = min(spec.answers_per_response, len(cluster.replicas))
        start = stable_index(
            self.seed, "onnet-window", spec.name, attachment.device_id,
            modulo=len(cluster.replicas),
        )
        return [
            cluster.replicas[(start + offset) % len(cluster.replicas)]
            for offset in range(count)
        ]


def build_operator_cdn(
    world,
    carrier_key: str,
    max_clusters: int = 64,
    replicas_per_cluster: int = 4,
) -> OperatorCDN:
    """Create and register an on-net CDN for one carrier.

    Clusters are placed at the operator's distinct egress cities (up to
    ``max_clusters``), inside the operator's own AS — reachable by its
    subscribers, invisible to the outside world like everything else in
    a cellular network.
    """
    operator: CellularOperator = world.operators.get(carrier_key)
    if operator is None:
        raise ConfigError(f"unknown carrier {carrier_key!r}")
    if world.allocator is None:
        raise ConfigError("world was built without a retained allocator")

    key = f"onnet-{carrier_key}"
    if key in world.cdns:
        return world.cdns[key]

    seen_cities: Dict[str, Host] = {}
    for egress in operator.egress_points:
        label = f"{egress.location.latitude:.2f},{egress.location.longitude:.2f}"
        seen_cities.setdefault(label, egress)
        if len(seen_cities) >= max_clusters:
            break

    clusters: List[ReplicaCluster] = []
    for index, egress in enumerate(seen_cities.values()):
        prefix = world.allocator.allocate24()
        operator.system.add_prefix(prefix)
        cluster = ReplicaCluster(
            index=index,
            city=City(
                name=f"{carrier_key}-egress-{index}",
                country=operator.country,
                location=egress.location,
            ),
            prefix=prefix,
        )
        for machine in range(replicas_per_cluster):
            host = Host(
                ip=prefix.host(machine + 1),
                name=f"edge.{key}.{index}.{machine}",
                asys=operator.system,
                location=egress.location,
                stack_latency_ms=0.2,
            )
            world.internet.register_host(host)
            cluster.replicas.append(
                ReplicaServer(host=host, cluster_index=index, cdn_key=key)
            )
        clusters.append(cluster)

    adns_prefix = world.allocator.allocate24()
    operator.system.add_prefix(adns_prefix)
    adns_host = Host(
        ip=adns_prefix.host(1),
        name=f"adns.{key}",
        asys=operator.system,
        location=clusters[0].location,
        stack_latency_ms=0.5,
    )
    world.internet.register_host(adns_host)

    mapping = MappingPolicy(
        locator=world.locate_ip,
        cluster_locations=[cluster.location for cluster in clusters],
        seed=operator.seed,
        wired_error_km=0.0,
        cellular_error_km=0.0,
        cellular_blunder_prob=0.0,
        anchor_canon=world.canonical_resolver_anchor,
    )
    authority = CdnAuthority(host=adns_host, zone_apex=f"{key}-sim.net")
    provider = OperatorCDN(
        operator=operator,
        key=key,
        system=operator.system,
        clusters=clusters,
        mapping=mapping,
        authority=authority,
        seed=operator.seed,
    )
    authority.provider = provider
    world.cdns[key] = provider
    return provider
