"""CDN substrate: replicas, mapping policy, providers, domain catalogue."""

from repro.cdn.catalog import DomainSpec, MEASURED_DOMAINS, domain_names
from repro.cdn.mapping import MappingPolicy, ResolverLocator
from repro.cdn.provider import CdnAuthority, CDNProvider, ReplicaCluster
from repro.cdn.replica import ReplicaServer, http_ttfb_ms

__all__ = [
    "DomainSpec",
    "MEASURED_DOMAINS",
    "domain_names",
    "MappingPolicy",
    "ResolverLocator",
    "CdnAuthority",
    "CDNProvider",
    "ReplicaCluster",
    "ReplicaServer",
    "http_ttfb_ms",
]
