"""Replica servers and the HTTP time-to-first-byte model.

The paper compares replicas by HTTP GET latency (time-to-first-byte) and
by ping, preferring latency over throughput because it is less sensitive
to device context (Gember et al. [8], Sec 3.3).  TTFB decomposes as one
RTT for the TCP handshake, one RTT for request/first response byte, plus
server processing time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.internet import RouteView, VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream


@dataclass
class ReplicaServer:
    """One CDN edge server."""

    host: Host
    cluster_index: int
    cdn_key: str
    #: Median request processing time at the edge.
    service_ms: float = 3.0

    @property
    def ip(self) -> str:
        """The replica's public address."""
        return self.host.ip

    @property
    def log_service_ms(self) -> float:
        """``ln(service_ms)``, memoised for the per-GET sampling path.

        Feeds :meth:`RandomStream.lognormal_from_log`, which is
        bit-identical to ``lognormal_ms(service_ms, sigma)`` — the log
        (and the positivity check) are hoisted out of every sample.
        """
        cached = self.__dict__.get("_log_service_ms")
        if cached is None:
            if self.service_ms <= 0:
                raise ValueError("median_ms must be positive")
            cached = math.log(self.service_ms)
            self.__dict__["_log_service_ms"] = cached
        return cached


def http_ttfb_ms(
    internet: VirtualInternet,
    origin: ProbeOrigin,
    replica: ReplicaServer,
    stream: RandomStream,
    route: Optional[RouteView] = None,
) -> Optional[float]:
    """Time-to-first-byte of an HTTP GET from ``origin`` to the replica.

    None when the replica is unreachable.  Handshake and request each pay
    a full (independently sampled) round trip.  ``route`` optionally
    carries the precomputed reachability verdict for this replica.
    """
    handshake = internet.flow_rtt(origin, replica.ip, stream, route=route)
    if handshake is None:
        return None
    request = internet.flow_rtt(origin, replica.ip, stream, route=route)
    if request is None:
        return None
    service = stream.lognormal_from_log(replica.log_service_ms, 0.5)
    return handshake + request + service


def ping_replica_ms(
    internet: VirtualInternet,
    origin: ProbeOrigin,
    replica: ReplicaServer,
    stream: RandomStream,
) -> Optional[float]:
    """Ping RTT to a replica (CDN edges answer pings)."""
    return internet.measure_rtt(origin, replica.ip, stream)
