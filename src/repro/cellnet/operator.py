"""Cellular operators: attachment, egress, addressing and local DNS.

The operator ties the substrates together for one carrier:

* it attaches devices — assigning an ephemeral client IP, an egress
  point and a configured DNS address (all epoch-keyed pure functions, so
  churn is reproducible);
* it builds :class:`~repro.core.node.ProbeOrigin` objects that carry the
  sampled radio + core latency of one probe;
* it answers local DNS queries through its indirect resolver deployment,
  accounting time for each leg (device -> client-facing front ->
  external resolver -> authorities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cellnet.architecture import (
    architecture_of,
    core_log_params,
    interior_hops_for,
)
from repro.cellnet.device import MobileDevice
from repro.cellnet.radio import (
    RadioProfile,
    RadioTechnology,
    access_log_params,
    promotion_cost_ms,
)
from repro.core.addressing import Prefix
from repro.core.asn import AutonomousSystem
from repro.core.internet import VirtualInternet
from repro.core.node import Host, ProbeOrigin
from repro.core.rng import RandomStream, stable_fraction, stable_index
from repro.core.transport import Transport
from repro.dns.indirect import DnsDeployment, ExternalResolver
from repro.dns.message import ResourceRecord, RRType
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import Country

#: Per-technology origin-latency parameters: ``(ln(access median),
#: access sigma, ln(core median), core sigma, interior hops)``.  Every
#: probe draws access-then-core; one lookup here replaces the
#: architecture mapping plus two latency-table hops, with draws
#: bit-identical to ``access_rtt_ms`` + ``core_rtt_ms``.
_ORIGIN_PARAMS = {
    technology: (
        *access_log_params(technology),
        *core_log_params(architecture_of(technology)),
        interior_hops_for(architecture_of(technology)),
    )
    for technology in RadioTechnology
}


@dataclass
class Attachment:
    """A device's point of attachment at one instant."""

    device_id: str
    client_ip: str
    egress: Host
    egress_index: int
    client_dns_ip: str
    at: float


class LocalResolution:
    """Outcome of one resolution through the operator's own DNS.

    A lazy view over the engine's result: ``records`` and ``addresses``
    materialise on first read.  Most probe flows consume only the
    addresses (and those come straight off the cached record templates),
    so warm cache hits allocate nothing per call.
    """

    __slots__ = (
        "qname",
        "total_ms",
        "cache_hit",
        "client_facing_ip",
        "external_ip",
        "_result",
        "_records",
        "_addresses",
    )

    def __init__(
        self,
        qname: str,
        total_ms: float,
        cache_hit: bool,
        client_facing_ip: str,
        external_ip: str,
        records: Optional[List[ResourceRecord]] = None,
        addresses: Optional[List[str]] = None,
        result=None,
    ) -> None:
        self.qname = qname
        self.total_ms = total_ms
        self.cache_hit = cache_hit
        self.client_facing_ip = client_facing_ip
        self.external_ip = external_ip
        self._result = result
        self._records = records
        self._addresses = addresses

    @property
    def records(self) -> List[ResourceRecord]:
        """The answer records (TTLs aged to the lookup instant)."""
        records = self._records
        if records is None:
            records = self._result.records
            self._records = records
        return records

    @property
    def addresses(self) -> List[str]:
        """What the answer's A records contain."""
        addresses = self._addresses
        if addresses is None:
            addresses = (
                self._result.addresses()
                if self._result is not None
                else [r.data for r in self.records if r.rtype is RRType.A]
            )
            self._addresses = addresses
        return addresses

    def cname_chain(self) -> List[str]:
        """CNAME targets in the answer, in chain order."""
        if self._result is not None:
            return self._result.cname_chain()
        return [r.data for r in self.records if r.rtype is RRType.CNAME]


@dataclass
class ChurnModel:
    """Epoch lengths controlling how sticky assignments are."""

    #: How often the device's NAT address rolls.
    ip_epoch_s: float = 6 * 3600.0
    #: How often the egress assignment re-rolls.
    egress_epoch_s: float = 24 * 3600.0
    #: How many nearest egress points the assignment spreads over.
    egress_breadth: int = 3
    #: How often DHCP hands the device a (possibly) new resolver address.
    dhcp_epoch_s: float = 20 * 24 * 3600.0


class CellularOperator:
    """One carrier's network."""

    def __init__(
        self,
        key: str,
        display_name: str,
        country: Country,
        system: AutonomousSystem,
        internet: VirtualInternet,
        egress_points: List[Host],
        deployment: DnsDeployment,
        radio_profile: RadioProfile,
        client_pool_prefix: Prefix,
        seed: int,
        churn: Optional[ChurnModel] = None,
        front_stack_ms: float = 0.4,
        ecs_enabled: bool = False,
        transport: Optional[Transport] = None,
    ) -> None:
        self.key = key
        self.display_name = display_name
        self.country = country
        self.system = system
        self.internet = internet
        self.egress_points = egress_points
        self.deployment = deployment
        self.radio_profile = radio_profile
        self.client_pool_prefix = client_pool_prefix
        self.seed = seed
        self.churn = churn or ChurnModel()
        self.front_stack_ms = front_stack_ms
        #: Whether the operator's resolvers attach EDNS Client Subnet
        #: options to upstream queries (the paper-era baseline is off).
        self.ecs_enabled = ecs_enabled
        #: The world's delivery layer; consulted for egress-failover
        #: windows.  None (direct construction) behaves fault-free.
        self.transport = transport
        if not egress_points:
            raise ValueError(f"{key}: operator needs egress points")
        #: Memo of egress rankings keyed by anchor city (the ranking only
        #: depends on coarse position, and computing it per probe is the
        #: campaign's hottest path).
        self._egress_ranking_memo: dict = {}
        #: Memo of the resolver site nearest each egress point.
        self._site_for_egress: dict = {}
        #: Memo of deployment client-address objects by their IP.
        self._client_address_memo: dict = {}
        #: Lazily collected prefixes across the operator's sibling ASes.
        self._owned_prefixes = None

    def _nearest_site_index(self, egress: Host) -> int:
        """The resolver site closest to an egress point.

        Resolver infrastructure clusters at egress points (Xu et al.
        [25]); queries from an egress are served by the site nearest it.
        """
        cached = self._site_for_egress.get(egress.ip)
        if cached is not None:
            return cached
        sites = self.deployment.sites
        best = min(
            range(len(sites)),
            key=lambda index: sites[index].location.distance_km(egress.location),
        )
        self._site_for_egress[egress.ip] = best
        return best

    # -- attachment -------------------------------------------------------

    def attachment(self, device: MobileDevice, now: float) -> Attachment:
        """The device's attachment at ``now`` (pure in device and time)."""
        egress_index = self._egress_index(device, now)
        return Attachment(
            device_id=device.device_id,
            client_ip=self._client_ip(device, now),
            egress=self.egress_points[egress_index],
            egress_index=egress_index,
            client_dns_ip=self._client_dns_ip(device, now),
            at=now,
        )

    def attachment_epoch_key(self, device: MobileDevice, now: float) -> tuple:
        """The epochs an attachment is a pure function of.

        Two instants with equal keys yield structurally identical
        attachments (up to the informational ``at`` stamp): every input
        to :meth:`attachment` — egress pick, NAT lease, DHCP resolver,
        and the mobility anchor feeding the egress ranking — is keyed by
        one of these quantised epochs.  Probe sessions use the key to
        reuse one attachment across a whole experiment instead of
        re-deriving it per probe.
        """
        key = (
            int(now // self.churn.egress_epoch_s),
            int(now // self.churn.ip_epoch_s),
            int(now // self.churn.dhcp_epoch_s),
            int(now // device.mobility.travel_epoch_s),
        )
        transport = self.transport
        if transport is not None and transport.faults is not None:
            # Fault windows (egress failover) cut across the churn
            # epochs; folding the active-window phase into the key keeps
            # cached attachments from straddling a failover boundary.
            key += (transport.faults.phase(now),)
        return key

    def _egress_index(self, device: MobileDevice, now: float) -> int:
        """Egress assignment: near the device, re-rolled per epoch.

        Ranked by distance from the device's location; the epoch hash
        spreads assignments over the nearest ``egress_breadth`` points.
        Devices are thus *usually* near their egress, but reassignment
        moves them between metros — the root cause of resolver churn for
        anycast deployments (Sec 4.5).
        """
        anchor = device.mobility.anchor_city(now)
        ranked = self._egress_ranking_memo.get(anchor.name)
        if ranked is None:
            ranked = sorted(
                range(len(self.egress_points)),
                key=lambda index: self.egress_points[index].location.distance_km(
                    anchor.location
                ),
            )
            self._egress_ranking_memo[anchor.name] = ranked
        breadth = min(self.churn.egress_breadth, len(ranked))
        epoch = int(now // self.churn.egress_epoch_s)
        pick = stable_index(
            self.seed, "egress", device.device_id, epoch, modulo=breadth
        )
        transport = self.transport
        if transport is not None and transport.faults is not None:
            failed = transport.faults.failed_egress(self.key, now)
            if failed is not None and pick == failed and len(ranked) > 1:
                # Failover: the device's preference slot is dark, so it
                # re-homes to the next-nearest egress for the window's
                # duration (deterministic in device + time).
                return ranked[(pick + 1) % len(ranked)]
        return ranked[pick]

    def _client_ip(self, device: MobileDevice, now: float) -> str:
        """Ephemeral NAT address, re-leased every ip_epoch.

        Pools are regionalised: each egress point owns a /24-aligned
        slice of the operator's client block, so a client address's /24
        identifies the egress it NATs through.  Addresses still churn
        within (and, on egress reassignment, across) those slices —
        Balakrishnan et al.'s ephemeral-IP behaviour [3].
        """
        egress_index = self._egress_index(device, now)
        epoch = int(now // self.churn.ip_epoch_s)
        slice_count = max(self.client_pool_prefix.size // 256, 1)
        base = (egress_index % slice_count) * 256
        offset = stable_index(
            self.seed, "client-ip", device.device_id, epoch, modulo=254
        )
        return self.client_pool_prefix.host(base + offset + 1)

    def locate_client_ip(self, address: str):
        """Egress location a client address NATs through, if it is ours.

        This is the knowledge EDNS Client Subnet unlocks for CDNs: a
        client /24 pins the egress region even though individual
        addresses churn.  Returns None for foreign addresses.
        """
        if not self.client_pool_prefix.contains(address):
            return None
        from repro.core.addressing import ip_to_int

        offset = ip_to_int(address) - self.client_pool_prefix.network
        egress_index = (offset // 256) % len(self.egress_points)
        return self.egress_points[egress_index].location

    def _client_dns_ip(self, device: MobileDevice, now: float) -> str:
        """The resolver address DHCP configured on the device."""
        epoch = int(now // self.churn.dhcp_epoch_s)
        anchor = device.mobility.anchor_city(now)
        address = self.deployment.client_address_for(
            f"{device.device_id}:{epoch}", self.seed, near=anchor.location
        )
        return address.ip

    # -- probe origins ----------------------------------------------------------

    def probe_origin(
        self,
        device: MobileDevice,
        now: float,
        stream: RandomStream,
        technology: Optional[RadioTechnology] = None,
        pay_promotion: bool = False,
        attachment: Optional[Attachment] = None,
    ) -> ProbeOrigin:
        """Build the origin for one probe, sampling radio + core latency.

        ``attachment`` lets callers that already derived the device's
        attachment for this instant (probe sessions cache it per epoch
        key) skip the re-derivation; it must equal what
        :meth:`attachment` would return for ``(device, now)``.
        """
        if technology is None:
            technology = device.active_technology or self.radio_profile.draw(stream)
        if attachment is None:
            attachment = self.attachment(device, now)
        log_access, sigma_access, log_core, sigma_core, hops = _ORIGIN_PARAMS[
            technology
        ]
        # lognormal_from_log inlined around the pooled Gaussian source
        # (same expression, bit-identical draws); one block fetch covers
        # both the radio and the core leg.
        z_access, z_core = stream.gauss_block(2)
        access = math.exp(log_access + sigma_access * z_access)
        access += math.exp(log_core + sigma_core * z_core)
        if pay_promotion:
            access += promotion_cost_ms(technology, device.rrc, now)
        else:
            device.rrc.touch(now)
        return ProbeOrigin(
            attachment.client_ip,
            self.system,
            device.location(now),
            access,
            attachment.egress,
            hops,
            device.device_id,
        )

    # -- local DNS ---------------------------------------------------------------

    def resolve_local(
        self,
        device: MobileDevice,
        origin: ProbeOrigin,
        attachment: Attachment,
        qname: str,
        qtype: RRType,
        now: float,
        stream: RandomStream,
    ) -> LocalResolution:
        """Resolve a name through the operator's configured DNS."""
        client_address = self._client_address_of(attachment)
        site_hint = self._nearest_site_index(attachment.egress)
        site = self.deployment.serving_site(client_address, site_hint)
        front_rtt = (
            origin.access_rtt_ms
            + self._intra_rtt(origin.location, site.location, stream)
            + self.front_stack_ms
        )
        external = self.deployment.external_for(
            client_address, device.device_id, site_hint, now
        )
        gap_ms = self._tier_gap_ms(site, external, stream)
        client_subnet = None
        if self.ecs_enabled:
            from repro.core.addressing import prefix24

            client_subnet = prefix24(attachment.client_ip)
        result = external.engine.resolve(
            qname,
            qtype,
            now,
            stream,
            client_subnet=client_subnet,
            # Range-scoped cache partition (None for non-campaign
            # devices) — the sub-carrier shard isolation contract.
            cache_scope=device.cache_scope,
        )
        total = front_rtt + gap_ms + result.upstream_ms
        return LocalResolution(
            qname=result.qname,
            total_ms=total,
            cache_hit=result.cache_hit,
            client_facing_ip=client_address.ip,
            external_ip=external.ip,
            result=result,
        )

    def _client_address_of(self, attachment: Attachment):
        cached = self._client_address_memo.get(attachment.client_dns_ip)
        if cached is not None:
            return cached
        found = None
        for address in self.deployment.client_addresses:
            if address.ip == attachment.client_dns_ip:
                found = address
                break
        if found is None:
            # DHCP epoch rolled between attachment and use; fall back to first.
            found = self.deployment.client_addresses[0]
        self._client_address_memo[attachment.client_dns_ip] = found
        return found

    def _intra_rtt(
        self, src: GeoPoint, dst: GeoPoint, stream: RandomStream
    ) -> float:
        """One operator-interior leg draw, inlined from the memoised
        ``(base, ln(base))`` parameters (same draw as ``rtt_ms``)."""
        intra = self.internet.intra_model
        base, log_base = intra.leg_params(src, dst)
        sigma = intra.jitter_sigma
        if sigma <= 0:
            return base
        return math.exp(log_base + sigma * stream.std_gauss())

    def _tier_gap_ms(
        self, site, external: ExternalResolver, stream: RandomStream
    ) -> float:
        """RTT between the client-facing front and the external tier."""
        if external.site.index == site.index:
            return self.deployment.tier_gap_ms
        return self.deployment.tier_gap_ms + self._intra_rtt(
            site.location, external.site.location, stream
        )

    # -- resolver probing -------------------------------------------------------

    def ping_client_resolver(
        self,
        origin: ProbeOrigin,
        attachment: Attachment,
        stream: RandomStream,
    ) -> Optional[float]:
        """Ping the configured (client-facing) resolver from a device.

        Anycast fronts answer from the serving site; fixed fronts from
        where they live.  All carriers' client-facing resolvers answered
        client pings in the study (Fig 4).
        """
        client_address = self._client_address_of(attachment)
        site_hint = self._nearest_site_index(attachment.egress)
        site = self.deployment.serving_site(client_address, site_hint)
        rtt = self._intra_rtt(origin.location, site.location, stream)
        return origin.access_rtt_ms + rtt + self.front_stack_ms

    def external_resolver_for(
        self, device: MobileDevice, attachment: Attachment, now: float
    ) -> ExternalResolver:
        """Which external resolver currently serves the device."""
        client_address = self._client_address_of(attachment)
        site_hint = self._nearest_site_index(attachment.egress)
        return self.deployment.external_for(
            client_address, device.device_id, site_hint, now
        )

    # -- structure accessors ------------------------------------------------------

    def egress_ips(self) -> List[str]:
        """Public addresses of all egress routers."""
        return [host.ip for host in self.egress_points]

    def owns_ip(self, address: str) -> bool:
        """True when the address sits in any prefix of this operator.

        Spans sibling ASes (Verizon's split resolver ASes share the
        operator even though the ASNs differ).
        """
        if self._owned_prefixes is None:
            prefixes = list(self.system.prefixes)
            seen_asns = {self.system.asn}
            for resolver in self.deployment.externals:
                asys = resolver.host.asys
                if asys.operator_key == self.key and asys.asn not in seen_asns:
                    seen_asns.add(asys.asn)
                    prefixes.extend(asys.prefixes)
            self._owned_prefixes = prefixes
        return any(prefix.contains(address) for prefix in self._owned_prefixes)

    def __str__(self) -> str:
        return f"{self.display_name} ({self.key})"
