"""Carrier presets: the six networks the paper profiles.

Each preset encodes the structure the paper *measured* for that carrier
(Sec 4, Tables 3-4, Figs 4 and 8), so that re-running the paper's
client-side methodology against the simulated network reproduces the
findings:

================  =========================================================
AT&T              Anycast client addresses; ~40 external resolvers behind a
                  single configured address; externals answer pings from
                  clients and (majority) from the Internet; relatively
                  stable client/external mappings.
Sprint            LDNS pools; >60% pairing consistency; pool members in
                  different /24s; only a small fraction externally open.
T-Mobile          Anycast front with heavy load balancing over externals in
                  many /24s; very unstable mappings; internally pingable
                  but externally silent.
Verizon           Tiered resolvers, fixed 1:1 pairs (100% consistency);
                  client-facing tier in AS 6167, external-facing in
                  AS 22394; externals ignore clients but answer the
                  Internet.
SK Telecom        LDNS pools; client and external addresses inside the same
                  /24; co-located tiers (near-equal client/external ping
                  latency); externally silent.
LG U+             LDNS pools; 5 client addresses, ~89 externals packed into
                  two /24s; rapid churn within those prefixes; resolvers
                  silent to everyone.
================  =========================================================

Egress-point counts follow Sec 5.2 (11 / 45 / 49 / 62 for AT&T, Sprint,
T-Mobile, Verizon — a 2-10x increase over the 4-6 of Xu et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cellnet.operator import CellularOperator, ChurnModel
from repro.cellnet.radio import RadioProfile, technologies_of
from repro.core.addressing import PrefixAllocator
from repro.core.asn import ASKind, AutonomousSystem, FirewallPolicy
from repro.core.errors import ConfigError
from repro.core.internet import VirtualInternet
from repro.core.node import ROLE_EGRESS, ROLE_RESOLVER, Host, PingPolicy
from repro.core.rng import stable_fraction
from repro.core.transport import Transport
from repro.dns.cache import DnsCache
from repro.dns.indirect import (
    AnycastPairing,
    ClientFacingAddress,
    DeploymentKind,
    DnsDeployment,
    ExternalResolver,
    LoadBalancedPairing,
    ResolverSite,
    StickyPoolPairing,
    TieredPairing,
    group_by_site,
)
from repro.dns.recursive import RecursiveEngine
from repro.dns.zone import ZoneDirectory
from repro.geo.regions import City, Country, cities_for


@dataclass
class CarrierConfig:
    """Everything needed to build one carrier."""

    key: str
    display_name: str
    country: Country
    asn: int
    client_count: int
    egress_count: int
    deployment_kind: DeploymentKind
    pairing_style: str  # "anycast" | "pool" | "tiered" | "loadbalance"
    n_client_addresses: int
    n_sites: int
    externals_per_site: int
    technologies: List[str] = field(default_factory=list)
    technology_weights: List[float] = field(default_factory=list)
    #: Number of /24s all externals share (None: one /24 per site).
    shared_external_prefixes: Optional[int] = None
    #: When set, externals are grouped N-per-/24 regardless of site
    #: (T-Mobile's prefix-diverse machines); overrides per-site layout.
    externals_per_prefix: Optional[int] = None
    #: Machine re-pick epoch for anycast pairing (None: sticky machine).
    anycast_machine_epoch_s: Optional[float] = None
    #: SK-style layout: client fronts drawn from the externals' /24.
    clients_share_external_prefix: bool = False
    #: Verizon-style split: externals in their own AS.
    external_asn: Optional[int] = None
    external_ping_policy: PingPolicy = PingPolicy.INTERNAL_ONLY
    #: Fraction of externals reachable from outside (Table 4).
    externally_open_fraction: float = 0.0
    external_interior_penalty_ms: float = 0.0
    tier_gap_ms: float = 1.0
    pool_stickiness: float = 0.7
    pool_rehome_hours: float = 72.0
    #: Shared pool primary (US pools) vs per-device homes (SK spray).
    pool_shared_home: bool = True
    lb_coherence_s: float = 600.0
    anycast_site_flutter: float = 0.05
    churn: ChurnModel = field(default_factory=ChurnModel)
    background_warm_prob: float = 0.92
    notes: str = ""


def _radio(profile_names: List[str], weights: List[float]) -> RadioProfile:
    return RadioProfile(technologies_of(profile_names), list(weights))


US_GSM_TECHNOLOGIES = ["EDGE", "GPRS", "HSDPA", "HSPA", "HSPAP", "LTE", "UTMS"]
US_CDMA_TECHNOLOGIES = ["1xRTT", "EHRPD", "EVDO_A", "LTE"]
SKT_TECHNOLOGIES = ["HSDPA", "HSPA", "HSPAP", "HSUPA", "LTE", "UTMS"]
LGU_TECHNOLOGIES = ["EHRPD", "LTE"]


def att_config() -> CarrierConfig:
    """AT&T: anycast, open externals, stable mappings."""
    return CarrierConfig(
        key="att",
        display_name="AT&T",
        country=Country.US,
        asn=20057,
        client_count=33,
        egress_count=11,
        deployment_kind=DeploymentKind.ANYCAST,
        pairing_style="anycast",
        n_client_addresses=2,
        n_sites=10,
        externals_per_site=4,
        technologies=US_GSM_TECHNOLOGIES,
        technology_weights=[0.015, 0.01, 0.04, 0.05, 0.12, 0.74, 0.025],
        external_ping_policy=PingPolicy.OPEN,
        externally_open_fraction=0.80,
        external_interior_penalty_ms=8.0,
        tier_gap_ms=1.0,
        anycast_site_flutter=0.04,
        churn=ChurnModel(
            ip_epoch_s=6 * 3600.0,
            egress_epoch_s=72 * 3600.0,
            egress_breadth=2,
        ),
        notes="anycast fronts; ~40 externals seen behind one address",
    )


def sprint_config() -> CarrierConfig:
    """Sprint: pools, >60% consistency, few externally open."""
    return CarrierConfig(
        key="sprint",
        display_name="Sprint",
        country=Country.US,
        asn=10507,
        client_count=9,
        egress_count=45,
        deployment_kind=DeploymentKind.POOL,
        pairing_style="pool",
        n_client_addresses=12,
        n_sites=12,
        externals_per_site=2,
        technologies=US_CDMA_TECHNOLOGIES,
        technology_weights=[0.03, 0.14, 0.15, 0.68],
        external_ping_policy=PingPolicy.OPEN,
        externally_open_fraction=0.12,
        external_interior_penalty_ms=5.0,
        tier_gap_ms=2.0,
        pool_stickiness=0.62,
        pool_rehome_hours=1440.0,
        churn=ChurnModel(
            ip_epoch_s=4 * 3600.0,
            egress_epoch_s=24 * 3600.0,
            egress_breadth=3,
        ),
        notes="LDNS pools, ~65% pairing consistency, pool members span /24s",
    )


def tmobile_config() -> CarrierConfig:
    """T-Mobile: anycast front, aggressive load balancing, heavy churn."""
    return CarrierConfig(
        key="tmobile",
        display_name="T-Mobile",
        country=Country.US,
        asn=21928,
        client_count=31,
        egress_count=49,
        deployment_kind=DeploymentKind.ANYCAST,
        pairing_style="anycast",
        n_client_addresses=2,
        n_sites=6,
        externals_per_site=8,
        technologies=US_GSM_TECHNOLOGIES,
        technology_weights=[0.015, 0.01, 0.05, 0.07, 0.17, 0.66, 0.025],
        externals_per_prefix=2,
        anycast_machine_epoch_s=2 * 3600.0,
        external_ping_policy=PingPolicy.INTERNAL_ONLY,
        externally_open_fraction=0.0,
        external_interior_penalty_ms=9.0,
        tier_gap_ms=1.5,
        anycast_site_flutter=0.12,
        churn=ChurnModel(
            ip_epoch_s=3 * 3600.0,
            egress_epoch_s=8 * 3600.0,
            egress_breadth=6,
        ),
        notes="anycast + heavy external load balancing across /24s",
    )


def verizon_config() -> CarrierConfig:
    """Verizon: tiered pairs in split ASes, 100% consistency."""
    return CarrierConfig(
        key="verizon",
        display_name="Verizon",
        country=Country.US,
        asn=6167,
        client_count=64,
        egress_count=62,
        deployment_kind=DeploymentKind.TIERED,
        pairing_style="tiered",
        n_client_addresses=12,
        n_sites=12,
        externals_per_site=1,
        technologies=US_CDMA_TECHNOLOGIES,
        technology_weights=[0.02, 0.12, 0.13, 0.73],
        external_asn=22394,
        external_ping_policy=PingPolicy.EXTERNAL_ONLY,
        externally_open_fraction=0.85,
        external_interior_penalty_ms=9.0,
        tier_gap_ms=7.0,
        churn=ChurnModel(
            ip_epoch_s=8 * 3600.0,
            egress_epoch_s=96 * 3600.0,
            egress_breadth=2,
        ),
        notes="tiered pairs; client AS 6167, external AS 22394",
    )


def sk_telecom_config() -> CarrierConfig:
    """SK Telecom: pools inside one /24, co-located tiers."""
    return CarrierConfig(
        key="skt",
        display_name="SK Telecom",
        country=Country.SOUTH_KOREA,
        asn=9644,
        client_count=17,
        egress_count=6,
        deployment_kind=DeploymentKind.POOL,
        pairing_style="pool",
        n_client_addresses=2,
        n_sites=2,
        externals_per_site=12,
        technologies=SKT_TECHNOLOGIES,
        technology_weights=[0.03, 0.05, 0.09, 0.03, 0.77, 0.03],
        shared_external_prefixes=2,
        clients_share_external_prefix=True,
        external_ping_policy=PingPolicy.INTERNAL_ONLY,
        externally_open_fraction=0.0,
        external_interior_penalty_ms=0.0,
        tier_gap_ms=0.3,
        pool_stickiness=0.45,
        pool_rehome_hours=48.0,
        pool_shared_home=False,
        churn=ChurnModel(
            ip_epoch_s=6 * 3600.0,
            egress_epoch_s=48 * 3600.0,
            egress_breadth=2,
        ),
        notes="pools; 2 client + 24 external addresses in one /24",
    )


def lg_uplus_config() -> CarrierConfig:
    """LG U+: dense pools in two /24s, rapid churn, silent resolvers."""
    return CarrierConfig(
        key="lgu",
        display_name="LG U+",
        country=Country.SOUTH_KOREA,
        asn=17858,
        client_count=4,
        egress_count=4,
        deployment_kind=DeploymentKind.POOL,
        pairing_style="pool",
        n_client_addresses=5,
        n_sites=2,
        externals_per_site=45,
        technologies=LGU_TECHNOLOGIES,
        technology_weights=[0.15, 0.85],
        shared_external_prefixes=2,
        clients_share_external_prefix=True,
        external_ping_policy=PingPolicy.SILENT,
        externally_open_fraction=0.0,
        external_interior_penalty_ms=0.0,
        tier_gap_ms=0.3,
        pool_stickiness=0.12,
        pool_rehome_hours=24.0,
        pool_shared_home=False,
        churn=ChurnModel(
            ip_epoch_s=4 * 3600.0,
            egress_epoch_s=36 * 3600.0,
            egress_breadth=2,
        ),
        notes="pools; 5 client + ~89 external addresses within two /24s",
    )


def default_carrier_configs() -> List[CarrierConfig]:
    """The six carriers of the study, US first (as in the paper)."""
    return [
        att_config(),
        sprint_config(),
        tmobile_config(),
        verizon_config(),
        sk_telecom_config(),
        lg_uplus_config(),
    ]


# -- builder --------------------------------------------------------------------


def _egress_cities(config: CarrierConfig) -> List[City]:
    """Cities hosting the carrier's egress points (round-robin by weight)."""
    cities = sorted(
        cities_for(config.country), key=lambda city: city.weight, reverse=True
    )
    return [cities[index % len(cities)] for index in range(config.egress_count)]


def build_operator(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    config: CarrierConfig,
    allocator: PrefixAllocator,
    seed: int,
    transport: Optional[Transport] = None,
) -> CellularOperator:
    """Instantiate and register one carrier network."""
    system = AutonomousSystem(
        asn=config.asn,
        name=config.display_name,
        kind=ASKind.CELLULAR,
        firewall=FirewallPolicy(blocks_inbound=True, tunneled_interior=True),
        operator_key=config.key,
    )
    internet.register_system(system)

    external_system = system
    if config.external_asn is not None:
        external_system = AutonomousSystem(
            asn=config.external_asn,
            name=f"{config.display_name} (resolver tier)",
            kind=ASKind.CELLULAR,
            firewall=FirewallPolicy(blocks_inbound=True, tunneled_interior=True),
            operator_key=config.key,
        )
        internet.register_system(external_system)

    # Address space: a /16 NAT pool, a /24 for egress routers, resolver /24s.
    client_pool = allocator.allocate(16)
    system.add_prefix(client_pool)
    egress_prefix = allocator.allocate24()
    system.add_prefix(egress_prefix)

    egress_cities = _egress_cities(config)
    egress_points = []
    for index, city in enumerate(egress_cities):
        host = Host(
            ip=egress_prefix.host(index + 1),
            name=f"egress-{config.key}-{index}",
            asys=system,
            location=city.location,
            stack_latency_ms=0.2,
            role=ROLE_EGRESS,
        )
        internet.register_host(host)
        egress_points.append(host)

    sites = [
        ResolverSite(index=index, city=egress_cities[index % len(egress_cities)])
        for index in range(config.n_sites)
    ]

    externals = _build_externals(
        internet, directory, config, allocator, external_system, sites, seed,
        transport=transport,
    )
    client_addresses = _build_client_addresses(
        internet, config, allocator, system, sites, externals
    )
    pairing = _build_pairing(config, client_addresses, externals, seed)

    deployment = DnsDeployment(
        kind=config.deployment_kind,
        client_addresses=client_addresses,
        externals=externals,
        sites=sites,
        pairing=pairing,
        tier_gap_ms=config.tier_gap_ms,
    )
    radio_profile = _radio(config.technologies, config.technology_weights)
    return CellularOperator(
        key=config.key,
        display_name=config.display_name,
        country=config.country,
        system=system,
        internet=internet,
        egress_points=egress_points,
        deployment=deployment,
        radio_profile=radio_profile,
        client_pool_prefix=client_pool,
        seed=seed,
        churn=config.churn,
        transport=transport,
    )


def _build_externals(
    internet: VirtualInternet,
    directory: ZoneDirectory,
    config: CarrierConfig,
    allocator: PrefixAllocator,
    external_system: AutonomousSystem,
    sites: List[ResolverSite],
    seed: int,
    transport: Optional[Transport] = None,
) -> List[ExternalResolver]:
    """Create external resolver hosts + engines with the /24 layout."""
    shared_prefixes = None
    if config.shared_external_prefixes:
        shared_prefixes = []
        for _ in range(config.shared_external_prefixes):
            prefix = allocator.allocate24()
            external_system.add_prefix(prefix)
            shared_prefixes.append([prefix, 0])

    externals: List[ExternalResolver] = []
    group_prefix = None
    group_used = 0
    for site in sites:
        if shared_prefixes is None and config.externals_per_prefix is None:
            site_prefix = allocator.allocate24()
            external_system.add_prefix(site_prefix)
            offset = 0
        for machine in range(config.externals_per_site):
            if shared_prefixes is not None:
                slot = shared_prefixes[
                    (site.index * config.externals_per_site + machine)
                    % len(shared_prefixes)
                ]
                prefix = slot[0]
                slot[1] += 1
                ip = prefix.host(slot[1] + 9)
            elif config.externals_per_prefix is not None:
                if group_prefix is None or group_used >= config.externals_per_prefix:
                    group_prefix = allocator.allocate24()
                    external_system.add_prefix(group_prefix)
                    group_used = 0
                group_used += 1
                ip = group_prefix.host(group_used)
            else:
                offset += 1
                ip = site_prefix.host(offset)
            serial = len(externals)
            open_draw = stable_fraction(seed, "open", config.key, serial)
            host = Host(
                ip=ip,
                name=f"ldns-ext-{config.key}-{serial}",
                asys=external_system,
                location=site.city.location,
                responds_to_ping=config.external_ping_policy is not PingPolicy.SILENT,
                ping_policy=config.external_ping_policy,
                externally_open=open_draw < config.externally_open_fraction,
                interior_penalty_ms=config.external_interior_penalty_ms,
                stack_latency_ms=0.4,
                role=ROLE_RESOLVER,
            )
            internet.register_host(host)
            engine = RecursiveEngine(
                host=host,
                directory=directory,
                internet=internet,
                cache=DnsCache(name=f"{config.key}:ext:{serial}"),
                background_warm_prob=config.background_warm_prob,
                transport=transport,
            )
            externals.append(ExternalResolver(host=host, engine=engine, site=site))
    return externals


def _build_client_addresses(
    internet: VirtualInternet,
    config: CarrierConfig,
    allocator: PrefixAllocator,
    system: AutonomousSystem,
    sites: List[ResolverSite],
    externals: List[ExternalResolver],
) -> List[ClientFacingAddress]:
    """Create the addresses devices are configured with."""
    addresses: List[ClientFacingAddress] = []
    anycast = config.pairing_style in ("anycast", "loadbalance")
    if config.clients_share_external_prefix and externals:
        # SK layout: fronts live in the externals' /24 (high host offsets).
        prefix = next(
            prefix
            for prefix in externals[0].host.asys.prefixes
            if prefix.contains(externals[0].ip)
        )
        for index in range(config.n_client_addresses):
            ip = prefix.host(200 + index)
            host = Host(
                ip=ip,
                name=f"ldns-front-{config.key}-{index}",
                asys=externals[0].host.asys,
                location=sites[index % len(sites)].city.location,
                ping_policy=PingPolicy.INTERNAL_ONLY,
                stack_latency_ms=0.4,
                role=ROLE_RESOLVER,
            )
            internet.register_host(host)
            addresses.append(
                ClientFacingAddress(
                    ip=ip, host=host, anycast=False, site_index=index % len(sites)
                )
            )
        return addresses

    front_prefix = allocator.allocate24()
    system.add_prefix(front_prefix)
    for index in range(config.n_client_addresses):
        ip = front_prefix.host(index + 1)
        host = Host(
            ip=ip,
            name=f"ldns-front-{config.key}-{index}",
            asys=system,
            location=sites[index % len(sites)].city.location,
            ping_policy=PingPolicy.SILENT if anycast else PingPolicy.INTERNAL_ONLY,
            stack_latency_ms=0.4,
            role=ROLE_RESOLVER,
        )
        internet.register_host(host)
        addresses.append(
            ClientFacingAddress(
                ip=ip,
                host=host,
                anycast=anycast,
                site_index=None if anycast else index % len(sites),
            )
        )
    return addresses


def _build_pairing(
    config: CarrierConfig,
    client_addresses: List[ClientFacingAddress],
    externals: List[ExternalResolver],
    seed: int,
):
    """Wire the pairing policy for the carrier's deployment style."""
    if config.pairing_style == "anycast":
        return AnycastPairing(
            by_site=group_by_site(externals),
            seed=seed,
            site_flutter=config.anycast_site_flutter,
            machine_epoch_s=config.anycast_machine_epoch_s,
        )
    if config.pairing_style == "loadbalance":
        return LoadBalancedPairing(
            externals=list(externals), seed=seed, coherence_s=config.lb_coherence_s
        )
    if config.pairing_style == "tiered":
        if len(externals) < len(client_addresses):
            raise ConfigError(f"{config.key}: tiered needs one external per front")
        pair_of = {
            address.ip: externals[index]
            for index, address in enumerate(client_addresses)
        }
        return TieredPairing(pair_of=pair_of)
    if config.pairing_style == "pool":
        # Partition externals into pools by proximity to each front, so a
        # front's pool members sit in its region (Fig 4: pool externals
        # are farther than the front, but not cross-country).
        pools: Dict[str, List[ExternalResolver]] = {
            address.ip: [] for address in client_addresses
        }
        share = max(1, len(externals) // len(client_addresses))
        remaining = list(externals)
        for address in client_addresses:
            front_location = (
                address.host.location if address.host is not None else None
            )
            if front_location is not None:
                remaining.sort(
                    key=lambda resolver: resolver.site.location.distance_km(
                        front_location
                    )
                )
            take = remaining[:share]
            pools[address.ip] = take
            remaining = remaining[share:]
        for position, resolver in enumerate(remaining):
            pools[client_addresses[position % len(client_addresses)].ip].append(
                resolver
            )
        for address in client_addresses:
            if not pools[address.ip]:
                pools[address.ip] = list(externals)
        return StickyPoolPairing(
            pools=pools,
            stickiness=config.pool_stickiness,
            rehome_period_s=config.pool_rehome_hours * 3600.0,
            seed=seed,
            shared_home=config.pool_shared_home,
        )
    raise ConfigError(f"unknown pairing style {config.pairing_style!r}")
