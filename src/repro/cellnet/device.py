"""Mobile measurement devices.

A device is a probe source, not a reachable host: it lives behind its
carrier's NAT with an ephemeral address (Balakrishnan et al. [3]), keeps
an RRC radio state machine, and moves according to its mobility model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cellnet.mobility import MobilityModel
from repro.cellnet.radio import RadioTechnology, RrcStateMachine
from repro.geo.coordinates import GeoPoint


@dataclass
class MobileDevice:
    """One volunteer device in the measurement campaign."""

    device_id: str
    carrier_key: str
    mobility: MobilityModel
    rrc: RrcStateMachine = field(default_factory=RrcStateMachine)
    #: Technology active during the current experiment (set by the
    #: experiment runner when it draws from the carrier's radio profile).
    active_technology: Optional[RadioTechnology] = None
    #: Position within the carrier's device population (the numeric
    #: suffix of ``device_id`` for campaign-built devices).  Part of the
    #: global probe-event key ``(timestamp, carrier, device_index, seq)``.
    device_index: int = 0
    #: DNS-cache partition label for this device's range of the carrier
    #: population (``"<carrier>/r<N>"``); None for devices built outside
    #: a campaign, where engines fall back to their legacy scoping.
    cache_scope: Optional[str] = None

    def location(self, now: float) -> GeoPoint:
        """Where the device is at virtual ``now``."""
        return self.mobility.location(now)

    def coarse_location(self, now: float, grid_km: float = 0.1) -> GeoPoint:
        """Location rounded to a coarse grid.

        The paper records client location "rounded up to a 100-meter
        radius area" for privacy; analyses like Fig 9 cluster on this.
        """
        exact = self.location(now)
        step = grid_km / 111.32
        return GeoPoint(
            round(exact.latitude / step) * step,
            round(exact.longitude / step) * step,
        )

    @property
    def home_city_name(self) -> str:
        """Name of the device's home city."""
        return self.mobility.home_city.name

    def __str__(self) -> str:
        return f"{self.device_id} ({self.carrier_key}, {self.home_city_name})"
