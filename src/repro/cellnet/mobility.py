"""Client mobility.

The paper records a coarse client location per experiment and shows that
resolver churn happens *even for stationary clients* (Fig 9, filtered to
a 10 km radius).  The mobility model therefore distinguishes:

* day-to-day wander around a home city (most users, most of the time),
* occasional trips to another city (travel epochs).

Positions are pure functions of (device, time), so any experiment replay
sees identical movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.clock import SECONDS_PER_DAY
from repro.core.rng import stable_fraction, stable_index
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import City


@dataclass
class MobilityModel:
    """Per-device movement over the study window."""

    home_city: City
    candidate_cities: Sequence[City]
    seed: int
    device_key: str
    #: Probability that a given travel epoch is spent away from home.
    travel_probability: float = 0.08
    #: Length of a travel decision epoch.
    travel_epoch_s: float = 4 * SECONDS_PER_DAY
    #: Radius of everyday wander around the anchor city, km.
    wander_km: float = 12.0
    #: Memo of anchor picks per travel epoch and positions per (epoch,
    #: hour).  Both are pure functions of quantised time, and every probe
    #: in an experiment re-asks within one hour, so recomputation is the
    #: campaign's hot path for no new information.
    _anchor_memo: Dict[int, City] = field(
        default_factory=dict, repr=False, compare=False
    )
    _location_memo: Dict[Tuple[int, int], GeoPoint] = field(
        default_factory=dict, repr=False, compare=False
    )

    def anchor_city(self, now: float) -> City:
        """The city the device is anchored to at ``now``."""
        epoch = int(now // self.travel_epoch_s)
        cached = self._anchor_memo.get(epoch)
        if cached is not None:
            return cached
        anchor = self._anchor_city_at(epoch)
        self._anchor_memo[epoch] = anchor
        return anchor

    def _anchor_city_at(self, epoch: int) -> City:
        draw = stable_fraction(self.seed, "travel", self.device_key, epoch)
        if draw >= self.travel_probability or len(self.candidate_cities) <= 1:
            return self.home_city
        away = [city for city in self.candidate_cities if city is not self.home_city]
        pick = stable_index(
            self.seed, "trip", self.device_key, epoch, modulo=len(away)
        )
        return away[pick]

    def location(self, now: float) -> GeoPoint:
        """The device's position at ``now``.

        Wander is re-drawn hourly within ``wander_km`` of the anchor, so
        consecutive experiments from a stationary user stay within the
        paper's 10 km clustering radius.
        """
        epoch = int(now // self.travel_epoch_s)
        hour = int(now // 3600.0)
        key = (epoch, hour)
        cached = self._location_memo.get(key)
        if cached is not None:
            return cached
        anchor = self.anchor_city(now)
        north = (
            stable_fraction(self.seed, "wander-n", self.device_key, hour) - 0.5
        ) * 2.0 * self.wander_km
        east = (
            stable_fraction(self.seed, "wander-e", self.device_key, hour) - 0.5
        ) * 2.0 * self.wander_km
        point = anchor.location.offset_km(north, east)
        self._location_memo[key] = point
        return point

    def is_travelling(self, now: float) -> bool:
        """True when the device is anchored away from home."""
        return self.anchor_city(now) is not self.home_city

    def stationary_windows(
        self, start: float, end: float, step_s: float = 3600.0
    ) -> List[float]:
        """Sample times in [start, end) during which the device is home.

        Convenience for the Fig 9 style analysis, which filters
        measurements to a static location cluster.
        """
        times = []
        now = start
        while now < end:
            if not self.is_travelling(now):
                times.append(now)
            now += step_s
        return times
