"""Cellular network substrate: radios, core architectures, operators."""

from repro.cellnet.radio import (
    Generation,
    RadioProfile,
    RadioState,
    RadioTechnology,
    RrcStateMachine,
)
from repro.cellnet.architecture import CoreArchitecture, interior_hops_for
from repro.cellnet.device import MobileDevice
from repro.cellnet.mobility import MobilityModel
from repro.cellnet.operator import Attachment, CellularOperator, LocalResolution

__all__ = [
    "Generation",
    "RadioProfile",
    "RadioState",
    "RadioTechnology",
    "RrcStateMachine",
    "CoreArchitecture",
    "interior_hops_for",
    "MobileDevice",
    "MobilityModel",
    "Attachment",
    "CellularOperator",
    "LocalResolution",
]
