"""Cellular core architectures: 3G hierarchy vs the flat LTE EPC.

Figure 1 of the paper contrasts the 2/3G core (NodeB -> RNC -> SGSN ->
GGSN) with LTE's Evolved Packet Core (eNodeB -> SGW -> PDN GW).  Two
consequences matter for the measurements:

* The flatter LTE core removes aggregation tiers, cutting interior
  latency (modelled as a per-architecture core RTT adder).
* Interior hops are invisible to traceroute either way — operators tunnel
  aggressively (Sec 4.2), so the hops appear as ``*`` lines.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cellnet.radio import Generation, RadioTechnology
from repro.core.node import PathHop
from repro.core.rng import RandomStream


class CoreArchitecture(str, enum.Enum):
    """Which packet core a session traverses."""

    UMTS_3G = "3g-core"
    LTE_EPC = "lte-epc"

    @classmethod
    def for_technology(cls, technology: RadioTechnology) -> "CoreArchitecture":
        """LTE sessions use the EPC; everything else rides the 3G core."""
        if technology.generation is Generation.G4:
            return cls.LTE_EPC
        return cls.UMTS_3G


@dataclass(frozen=True)
class CoreModel:
    """Latency and hop structure of one core architecture."""

    #: Element names device traffic traverses before the egress router.
    elements: List[str]
    #: Median extra RTT contributed by the core beyond geographic
    #: distance (aggregation, GTP tunnelling, serialisation).
    median_core_rtt_ms: float
    sigma: float


_MODELS = {
    CoreArchitecture.UMTS_3G: CoreModel(
        elements=["nodeb", "rnc", "sgsn", "ggsn"],
        median_core_rtt_ms=18.0,
        sigma=0.30,
    ),
    CoreArchitecture.LTE_EPC: CoreModel(
        elements=["enodeb", "sgw", "pgw"],
        median_core_rtt_ms=6.0,
        sigma=0.25,
    ),
}


def core_model(architecture: CoreArchitecture) -> CoreModel:
    """The latency/hop model for an architecture."""
    return _MODELS[architecture]


#: Precomputed ``(ln(median), sigma)`` per architecture — the core-RTT
#: draw runs once per probe (``lognormal_from_log`` is bit-identical to
#: ``lognormal_ms``).
_LOG_CORE: Dict[CoreArchitecture, Tuple[float, float]] = {
    architecture: (math.log(model.median_core_rtt_ms), model.sigma)
    for architecture, model in _MODELS.items()
}


def core_rtt_ms(architecture: CoreArchitecture, stream: RandomStream) -> float:
    """One sampled interior-core RTT contribution."""
    log_median, sigma = _LOG_CORE[architecture]
    return stream.lognormal_from_log(log_median, sigma)


def core_log_params(architecture: CoreArchitecture) -> Tuple[float, float]:
    """``(ln(median), sigma)`` of the core-RTT draw for an architecture."""
    return _LOG_CORE[architecture]


#: Technology -> architecture, precomputed: ``probe_origin`` asks once
#: per probe and the mapping is static.
_ARCH_OF: Dict[RadioTechnology, CoreArchitecture] = {
    technology: CoreArchitecture.for_technology(technology)
    for technology in RadioTechnology
}


def architecture_of(technology: RadioTechnology) -> CoreArchitecture:
    """:meth:`CoreArchitecture.for_technology`, via a precomputed table."""
    return _ARCH_OF[technology]


#: Shared, effectively-immutable hop tuples: the interior hops carry no
#: per-probe state (silent, zero-latency placeholders), and every probe
#: origin used to rebuild an identical list.
_INTERIOR_HOPS: Dict[CoreArchitecture, Tuple[PathHop, ...]] = {
    architecture: tuple(
        PathHop(host=None, ip=None, responds=False, cumulative_ms=0.0)
        for _ in model.elements
    )
    for architecture, model in _MODELS.items()
}


def interior_hops_for(architecture: CoreArchitecture) -> Sequence[PathHop]:
    """Traceroute-visible structure of the core: tunnelled, silent hops.

    Each core element occupies a TTL slot but never answers — the
    behaviour that "rendered irrelevant much of the structural
    information" the paper's traceroutes tried to gather (Sec 4.2).
    Hops are shared tuples; treat them as read-only.
    """
    return _INTERIOR_HOPS[architecture]
