"""Radio access technologies and the RRC state machine.

Fig 3 of the paper shows DNS resolution times falling into sharp bands by
radio technology: LTE fastest, 3G families roughly 50 ms slower at the
median, and 2G (1xRTT, GPRS) near a full second per resolution.  The
latency parameters below are calibrated to those bands (and to Huang et
al., MobiSys'12, which the paper cites for LTE's low, stable access
latency).

The RRC state machine models radio promotion: a device whose radio is
idle pays a promotion delay on its first packet.  The paper's experiment
script begins with a bootstrap ping precisely to absorb that cost
(Sec 3.2), and the measurement library reproduces that behaviour.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ConfigError
from repro.core.rng import RandomStream


class Generation(str, enum.Enum):
    """Cellular generation of a radio technology."""

    G2 = "2G"
    G3 = "3G"
    G4 = "4G"


@dataclass(frozen=True)
class RadioLatency:
    """Latency model of one radio technology.

    ``median_rtt_ms``/``sigma`` parameterise the log-normal access RTT;
    ``promotion_ms`` is the idle->active RRC promotion cost.
    """

    median_rtt_ms: float
    sigma: float
    promotion_ms: float


class RadioTechnology(str, enum.Enum):
    """Radio technologies reported by devices in the study (Fig 3)."""

    LTE = "LTE"
    EHRPD = "EHRPD"
    EVDO_A = "EVDO_A"
    ONE_X_RTT = "1xRTT"
    HSPAP = "HSPAP"
    HSPA = "HSPA"
    HSDPA = "HSDPA"
    HSUPA = "HSUPA"
    UMTS = "UTMS"  # the paper consistently spells it UTMS; we keep that label
    EDGE = "EDGE"
    GPRS = "GPRS"

    @property
    def generation(self) -> Generation:
        """Which generation the technology belongs to."""
        return _GENERATION[self]

    @property
    def latency(self) -> RadioLatency:
        """The technology's access-latency model."""
        return _LATENCY[self]


_GENERATION: Dict[RadioTechnology, Generation] = {
    RadioTechnology.LTE: Generation.G4,
    RadioTechnology.EHRPD: Generation.G3,
    RadioTechnology.EVDO_A: Generation.G3,
    RadioTechnology.ONE_X_RTT: Generation.G2,
    RadioTechnology.HSPAP: Generation.G3,
    RadioTechnology.HSPA: Generation.G3,
    RadioTechnology.HSDPA: Generation.G3,
    RadioTechnology.HSUPA: Generation.G3,
    RadioTechnology.UMTS: Generation.G3,
    RadioTechnology.EDGE: Generation.G2,
    RadioTechnology.GPRS: Generation.G2,
}

#: Access RTT parameters per technology.  Medians follow the banding in
#: Fig 3; sigmas give LTE its notably tighter distribution.
_LATENCY: Dict[RadioTechnology, RadioLatency] = {
    RadioTechnology.LTE: RadioLatency(28.0, 0.22, 260.0),
    RadioTechnology.EHRPD: RadioLatency(78.0, 0.35, 900.0),
    RadioTechnology.EVDO_A: RadioLatency(95.0, 0.38, 1100.0),
    RadioTechnology.ONE_X_RTT: RadioLatency(850.0, 0.40, 1800.0),
    RadioTechnology.HSPAP: RadioLatency(55.0, 0.32, 700.0),
    RadioTechnology.HSPA: RadioLatency(75.0, 0.35, 800.0),
    RadioTechnology.HSDPA: RadioLatency(85.0, 0.36, 850.0),
    RadioTechnology.HSUPA: RadioLatency(80.0, 0.36, 850.0),
    RadioTechnology.UMTS: RadioLatency(130.0, 0.38, 1200.0),
    RadioTechnology.EDGE: RadioLatency(420.0, 0.40, 1500.0),
    RadioTechnology.GPRS: RadioLatency(600.0, 0.42, 1700.0),
}

#: Precomputed ``(ln(median), sigma)`` per technology: the access-RTT
#: draw runs once per probe, so the log is hoisted out of the hot path
#: (``lognormal_from_log`` is bit-identical to ``lognormal_ms``).
_LOG_LATENCY: Dict[RadioTechnology, Tuple[float, float]] = {
    technology: (math.log(model.median_rtt_ms), model.sigma)
    for technology, model in _LATENCY.items()
}


def access_log_params(technology: RadioTechnology) -> Tuple[float, float]:
    """``(ln(median), sigma)`` of the access-RTT draw for a technology.

    Exposed so per-probe callers can fold the access and core draws into
    one precomputed table (see ``CellularOperator.probe_origin``).
    """
    return _LOG_LATENCY[technology]


class RadioState(str, enum.Enum):
    """RRC power states relevant to latency."""

    IDLE = "idle"
    CONNECTED = "connected"


@dataclass
class RrcStateMachine:
    """Tracks radio power state across a device's measurement session.

    After ``demotion_timeout_s`` without traffic the radio falls back to
    IDLE and the next packet pays the promotion delay.
    """

    demotion_timeout_s: float = 11.0
    state: RadioState = RadioState.IDLE
    last_activity: float = float("-inf")

    def touch(self, now: float) -> float:
        """Register traffic at ``now``; returns the promotion cost paid."""
        promotion = 0.0
        if (
            self.state is RadioState.IDLE
            or now - self.last_activity > self.demotion_timeout_s
        ):
            promotion = 1.0  # caller scales by the technology's promotion_ms
            self.state = RadioState.CONNECTED
        self.last_activity = now
        return promotion

    def is_connected(self, now: float) -> bool:
        """Whether the radio is still in the high-power state at ``now``."""
        return (
            self.state is RadioState.CONNECTED
            and now - self.last_activity <= self.demotion_timeout_s
        )


@dataclass
class RadioProfile:
    """A carrier's mix of radio technologies.

    ``weights`` give the probability that a device observes each
    technology during an experiment; coverage varies with location and
    time, which the per-experiment draw models.
    """

    technologies: List[RadioTechnology]
    weights: List[float] = field(default_factory=list)
    #: Probability that a device mid-experiment is on its drawn RAT's
    #: band; the remainder re-draws (handoff during the experiment).
    stability: float = 0.97

    def __post_init__(self) -> None:
        if not self.technologies:
            raise ConfigError("radio profile needs at least one technology")
        if not self.weights:
            self.weights = [1.0] * len(self.technologies)
        if len(self.weights) != len(self.technologies):
            raise ConfigError("weights must match technologies")
        # Frozen weights for the per-experiment draw: tuple(t) on a
        # tuple is the same object, so the weighted_choice memo key
        # costs nothing per call.
        self._weights_tuple = tuple(self.weights)

    def draw(self, stream: RandomStream) -> RadioTechnology:
        """The active technology for one experiment."""
        return stream.weighted_choice(self.technologies, self._weights_tuple)

    def access_rtt_ms(
        self, technology: RadioTechnology, stream: RandomStream
    ) -> float:
        """One sampled access RTT on the given technology."""
        log_median, sigma = _LOG_LATENCY[technology]
        return stream.lognormal_from_log(log_median, sigma)

    def lte_share(self) -> float:
        """Fraction of weight on LTE (used in reports)."""
        total = sum(self.weights)
        lte = sum(
            weight
            for technology, weight in zip(self.technologies, self.weights)
            if technology is RadioTechnology.LTE
        )
        return lte / total if total else 0.0


def technologies_of(names: Sequence[str]) -> List[RadioTechnology]:
    """Parse technology labels as they appear in the paper's figures."""
    by_value = {technology.value: technology for technology in RadioTechnology}
    result = []
    for name in names:
        if name not in by_value:
            raise ConfigError(f"unknown radio technology {name!r}")
        result.append(by_value[name])
    return result


def promotion_cost_ms(
    technology: RadioTechnology, machine: RrcStateMachine, now: float
) -> float:
    """Promotion delay paid by a packet sent at ``now`` (0 when warm)."""
    return machine.touch(now) * technology.latency.promotion_ms


def band_medians() -> List[Tuple[str, float]]:
    """(label, median access RTT) pairs, sorted fastest first."""
    pairs = [
        (technology.value, technology.latency.median_rtt_ms)
        for technology in RadioTechnology
    ]
    return sorted(pairs, key=lambda pair: pair[1])
