"""Sec 5.2: egress-point counts from device traceroutes.

Paper: "a substantial increase (2-10x) in the number of network egress
points across all US mobile operators" over the 4-6 reported by Xu et
al. [25] — 11 identified in AT&T, 45 in Sprint, 49 in T-Mobile and 62
in Verizon.  The bench reports both what our scaled-down client
population *observed* and what the simulated networks *deploy*.
"""

from repro.analysis.report import format_table

PAPER_OBSERVED = {"att": 11, "sprint": 45, "tmobile": 49, "verizon": 62}
XU_ET_AL_RANGE = (4, 6)


def bench_egress_points(benchmark, bench_study, emit):
    counts = benchmark(bench_study.egress_point_counts)
    rows = []
    for carrier in ("att", "sprint", "tmobile", "verizon", "skt", "lgu"):
        entry = counts.get(carrier)
        deployed = len(bench_study.world.operators[carrier].egress_points)
        rows.append(
            (
                carrier,
                entry.count if entry else 0,
                deployed,
                PAPER_OBSERVED.get(carrier, "-"),
                entry.traceroutes_used if entry else 0,
            )
        )
    rendered = format_table(
        ["carrier", "observed egress", "deployed egress", "paper", "traceroutes"],
        rows,
        title=(
            "Sec 5.2: egress points (vs Xu et al.'s 4-6 per US carrier)\n"
            "Observed counts grow with client population; deployed counts\n"
            "equal the paper's identified totals by construction."
        ),
    )
    emit("egress_points", rendered)
    by_carrier = {row[0]: row for row in rows}
    # The US carriers with dense egress must observably exceed Xu et al.
    assert max(by_carrier[c][1] for c in ("sprint", "tmobile", "verizon")) > 6
    for carrier, paper in PAPER_OBSERVED.items():
        assert by_carrier[carrier][2] == paper
