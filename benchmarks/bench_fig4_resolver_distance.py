"""Fig 4: client latency to client-facing vs external-facing resolvers.

Paper: SK Telecom's tiers are co-located (near-equal latency); AT&T,
Sprint and T-Mobile's external tiers sit measurably farther from
clients; Verizon's and LG U+'s external resolvers never answer client
probes at all.
"""

from repro.analysis.report import format_cdfs
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _all_distances(study):
    return {
        carrier: study.fig4_resolver_distance(carrier)
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    }


def bench_fig4_resolver_distance(benchmark, bench_study, emit):
    distances = benchmark(_all_distances, bench_study)
    sections = []
    for carrier, curves in distances.items():
        labelled = {
            "client-facing": curves.get("client"),
            "external-facing": curves.get("external"),
        }
        sections.append(
            format_cdfs(labelled, title=f"Fig 4 [{carrier}]: resolver pings")
        )
    emit("fig4_resolver_distance", "\n\n".join(sections))
    assert "external" not in distances["verizon"]
    assert "external" not in distances["lgu"]
    for carrier in ("att", "sprint", "tmobile"):
        curves = distances[carrier]
        assert curves["external"].median > curves["client"].median
    skt = distances["skt"]
    assert abs(skt["external"].median - skt["client"].median) < 15.0
