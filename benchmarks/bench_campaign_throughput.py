"""Campaign throughput: serial loop vs per-carrier shard workers.

Unlike the figure/table benches, this one times the *measurement* stage
itself.  It drives :mod:`repro.measure.bench` at a reduced scale (the
repo-root ``BENCH_campaign.json`` trajectory uses the full default
scale via ``repro-study bench``) and asserts the two execution
strategies agree bit-for-bit — a faster campaign that drifted from the
serial semantics is a correctness bug, not a win.

Standalone use::

    PYTHONPATH=src python benchmarks/bench_campaign_throughput.py
"""

from repro.measure.bench import BenchScale, format_report, run_benchmarks

#: Scaled down so the bench session stays quick; the CLI default
#: (device_scale=0.5) is the number the README quotes.
SMOKE_SCALE = BenchScale(device_scale=0.1, duration_days=7.0)


def bench_campaign_throughput(emit):
    report = run_benchmarks(SMOKE_SCALE, output_path=None)
    emit("campaign_throughput", format_report(report))
    campaign = report["campaign"]
    assert campaign["hash_match"], "parallel dataset diverged from serial"
    assert campaign["serial_exp_per_s"] > 0
    assert report["asn_lookup"]["speedup"] >= 10.0


if __name__ == "__main__":
    print(format_report(run_benchmarks(SMOKE_SCALE, output_path=None)))
