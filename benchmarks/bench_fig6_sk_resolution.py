"""Fig 6: DNS resolution time CDFs for the two South Korean carriers.

Paper: comparable medians to the US carriers, but bimodal above the
50th percentile — a cache miss sends the query across the Pacific to
the (US-hosted) authorities.
"""

from repro.analysis.report import format_cdfs


def bench_fig6_sk_resolution(benchmark, bench_study, emit):
    curves = benchmark(bench_study.fig6_sk_resolution)
    rendered = format_cdfs(
        curves,
        title=(
            "Fig 6: DNS resolution time, SK carriers\n"
            "Paper shape: ~30-50 ms medians, bimodal above p50."
        ),
    )
    emit("fig6_sk_resolution", rendered)
    for carrier, ecdf in curves.items():
        assert 25.0 < ecdf.median < 80.0, carrier
        # Bimodality: the p90 sits far above the median.
        assert ecdf.quantile(0.9) > 3.0 * ecdf.median, carrier
