"""Appendix: longitudinal discovery (the study-design argument).

The paper argues longitudinal data is what separates it from prior
one-shot studies: resolver estates and egress sets keep growing as the
observation window extends.  This bench reports, per carrier, how long
the campaign took to discover half vs. all of what it ever saw — churny
carriers keep revealing new resolvers until the end.
"""

from repro.analysis.egress import world_ownership_oracle
from repro.analysis.longitudinal import (
    configuration_changes,
    egress_discovery_curve,
    resolver_discovery_curve,
    resolver_inventory_over_time,
)
from repro.analysis.report import format_table
from repro.core.clock import SECONDS_PER_DAY


def _rows(study):
    owns = world_ownership_oracle(study.world)
    rows = []
    for carrier in study.world.operators:
        resolvers = resolver_discovery_curve(study.dataset, carrier)
        egress = egress_discovery_curve(study.dataset, carrier, owns)
        inventories = resolver_inventory_over_time(study.dataset, carrier)
        changes = configuration_changes(inventories)
        half = resolvers.time_to_fraction(0.5)
        full = resolvers.time_to_fraction(1.0)
        rows.append(
            (
                carrier,
                resolvers.total,
                f"{half / SECONDS_PER_DAY:.0f}d" if half is not None else "-",
                f"{full / SECONDS_PER_DAY:.0f}d" if full is not None else "-",
                egress.total,
                len(changes),
            )
        )
    return rows


def bench_longitudinal_discovery(benchmark, bench_study, emit):
    rows = benchmark(_rows, bench_study)
    rendered = format_table(
        [
            "carrier",
            "resolvers found",
            "50% by",
            "100% by",
            "egress found",
            "/24-estate changes",
        ],
        rows,
        title=(
            "Appendix: cumulative discovery over the 90-day campaign.\n"
            "Churny carriers keep revealing new resolvers late into the\n"
            "window — the longitudinal coverage the paper leans on."
        ),
    )
    emit("longitudinal_discovery", rendered)
    by_carrier = {row[0]: row for row in rows}
    # T-Mobile's estate takes most of the campaign to enumerate.
    assert by_carrier["tmobile"][1] > by_carrier["verizon"][1]
    for carrier in ("tmobile", "skt"):
        full_label = by_carrier[carrier][3]
        assert full_label.endswith("d") and int(full_label[:-1]) > 10
