"""Extension: EDNS Client Subnet as the localization fix.

The paper's discussion ends with "we have started to explore
alternative approaches for improving CDN performance through better
client localization".  EDNS Client Subnet (RFC 7871, deployed widely
after the paper) is that fix: resolvers forward the client's /24, and
the CDN maps on it directly instead of on the churning resolver
address.  This bench runs the same campaign with ECS off and on and
measures how much of the paper's replica-selection pathology disappears.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.localization import replica_differentials
from repro.analysis.report import format_table
from repro.core.world import WorldConfig

CARRIERS = ("att", "tmobile", "verizon", "skt")


@pytest.fixture(scope="module")
def ecs_pair():
    """Two identically seeded campaigns: baseline and ECS-enabled."""

    def run(ecs_enabled):
        study = CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.08,
                duration_days=45.0,
                interval_hours=12.0,
                world=WorldConfig(ecs_enabled=ecs_enabled),
            )
        )
        study.dataset
        return study

    return run(False), run(True)


def _differential_rows(pair):
    baseline, ecs = pair
    rows = []
    for carrier in CARRIERS:
        base = replica_differentials(
            baseline.dataset, carrier, resolver_kind="local"
        ).ecdf()
        with_ecs = replica_differentials(
            ecs.dataset, carrier, resolver_kind="local"
        ).ecdf()
        rows.append(
            (
                carrier,
                f"+{base.median:.0f}%" if not base.is_empty else "-",
                f"+{with_ecs.median:.0f}%" if not with_ecs.is_empty else "-",
                f"{base.fraction_above(100.0) * 100:.0f}%"
                if not base.is_empty else "-",
                f"{with_ecs.fraction_above(100.0) * 100:.0f}%"
                if not with_ecs.is_empty else "-",
            )
        )
    return rows


def bench_extension_ecs(benchmark, ecs_pair, emit):
    rows = benchmark(_differential_rows, ecs_pair)
    rendered = format_table(
        [
            "carrier",
            "p50 differential (baseline)",
            "p50 differential (ECS)",
            ">100% share (baseline)",
            ">100% share (ECS)",
        ],
        rows,
        title=(
            "Extension: cellular-DNS replica differentials with and without\n"
            "EDNS Client Subnet.  ECS keys CDN mapping on the client's /24\n"
            "(which pins the egress region), neutralising resolver churn."
        ),
    )
    emit("extension_ecs", rendered)
    baseline, ecs = ecs_pair
    improved = 0
    for carrier in CARRIERS:
        base = replica_differentials(
            baseline.dataset, carrier, resolver_kind="local"
        ).ecdf()
        with_ecs = replica_differentials(
            ecs.dataset, carrier, resolver_kind="local"
        ).ecdf()
        if base.is_empty or with_ecs.is_empty:
            continue
        if with_ecs.median < base.median:
            improved += 1
    assert improved >= 3
