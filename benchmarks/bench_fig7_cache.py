"""Fig 7: cache performance via back-to-back lookups (US carriers).

Paper: "we see DNS cache misses for nearly 20% of DNS requests on
cellular", despite querying very popular hostnames — the short TTLs
CDNs use defeat the caches, explaining Fig 5's tails.
"""

from repro.analysis.report import format_cdfs, format_fractions


def bench_fig7_cache(benchmark, bench_study, emit):
    comparison = benchmark(bench_study.fig7_cache)
    rendered = "\n\n".join(
        [
            format_cdfs(
                {"1st lookup": comparison.first, "2nd lookup": comparison.second},
                title=(
                    "Fig 7: back-to-back lookups, US carriers\n"
                    "Paper shape: ~20% of first lookups miss the cache."
                ),
            ),
            format_fractions(
                {"estimated first-lookup miss rate": comparison.miss_rate()},
            ),
        ]
    )
    emit("fig7_cache", rendered)
    assert 0.10 < comparison.miss_rate() < 0.40
    assert comparison.second.quantile(0.9) < comparison.first.quantile(0.9)
