"""Fig 11: ping latencies to public DNS vs the cellular external LDNS.

Paper: the cellular operator's external-facing LDNS is closer a
significant majority of the time (10-25 ms at the median for US
carriers; SK public resolution distance is roughly doubled) — except for
Verizon and LG U+, whose resolvers never answer client probes.
"""

from repro.analysis.report import format_cdfs
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _all_pings(study):
    return {
        carrier: study.fig11_public_distance(carrier)
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    }


def bench_fig11_public_distance(benchmark, bench_study, emit):
    pings = benchmark(_all_pings, bench_study)
    sections = []
    for carrier, curves in pings.items():
        sections.append(
            format_cdfs(
                {
                    "cell LDNS (external)": curves.get("local-external"),
                    "GoogleDNS": curves.get("google"),
                    "OpenDNS": curves.get("opendns"),
                },
                title=f"Fig 11 [{carrier}]: resolver ping latency",
            )
        )
    emit("fig11_public_distance", "\n\n".join(sections))
    for carrier in ("att", "skt"):
        curves = pings[carrier]
        assert curves["local-external"].median < curves["google"].median
    for carrier in ("verizon", "lgu"):
        assert "local-external" not in pings[carrier]
