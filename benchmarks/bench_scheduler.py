"""Event-driven scheduler throughput and streaming shard-merge memory.

Times the campaign's scheduling core in isolation: events per second
through the single probe-event queue that drives every executor, and
the peak allocation of packaging a sharded campaign via the streaming
JSONL merge versus the in-memory record merge.  Both merges must land
on the serial content hash — the streaming path's entire point is being
O(shards) in memory *without* being allowed to move a byte.

Standalone use::

    PYTHONPATH=src python benchmarks/bench_scheduler.py
"""

from repro.measure.bench import BenchScale, bench_scheduler

#: Scaled down so the bench session stays quick (the repo-root
#: ``BENCH_campaign.json`` carries the full-scale ``scheduler`` section).
SMOKE_SCALE = BenchScale(device_scale=0.05, duration_days=14.0)


def _format(report) -> str:
    return (
        f"queue: {report['queue_events_per_s']} events/s "
        f"({report['queue_events']} drained in "
        f"{report['queue_drain_s']}s)\n"
        f"merge: {report['merge_experiments']} experiments over "
        f"{report['merge_shards']} shards | peak "
        f"{report['streaming_peak_kb']}kb streaming vs "
        f"{report['in_memory_peak_kb']}kb in-memory "
        f"({report['streaming_memory_ratio']}x smaller)\n"
        f"hash match: {report['hash_match']}"
    )


def bench_scheduler_section(emit):
    report = bench_scheduler(SMOKE_SCALE)
    emit("scheduler", _format(report))
    assert report["hash_match"], "shard merge diverged from serial bytes"
    assert report["queue_events_per_s"] > 0
    # The streaming merge must hold blocks, not the campaign: anything
    # within an order of magnitude of the in-memory peak means a shard's
    # records are being accumulated somewhere.
    assert report["streaming_peak_kb"] < report["in_memory_peak_kb"]


if __name__ == "__main__":
    print(_format(bench_scheduler(SMOKE_SCALE)))
