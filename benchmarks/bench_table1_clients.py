"""Table 1: distribution of measurement clients per operator.

Paper: AT&T 33, Sprint 9, T-Mobile 31, Verizon 64 (US); SK Telecom 17,
LG U+ 4 (SK) — 158 clients total.  The bench campaign scales that
population down uniformly; proportions are what must hold.
"""

from repro.analysis.report import format_table

PAPER_COUNTS = {
    "AT&T": 33, "Sprint": 9, "T-Mobile": 31,
    "Verizon": 64, "SK Telecom": 17, "LG U+": 4,
}


def bench_table1_clients(benchmark, bench_study, emit):
    rows = benchmark(bench_study.table1_clients)
    rendered = format_table(
        ["Carrier", "# Clients (bench)", "# Clients (paper)", "Country"],
        [
            (name, count, PAPER_COUNTS[name], country)
            for name, count, country in rows
        ],
        title="Table 1: measurement clients per operator",
    )
    emit("table1_clients", rendered)
    measured = {name: count for name, count, _ in rows}
    # Verizon is the largest population, LG U+ the smallest (paper order).
    assert measured["Verizon"] == max(measured.values())
    assert measured["LG U+"] == min(measured.values())
