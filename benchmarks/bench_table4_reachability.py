"""Table 4: external reachability of cellular DNS resolvers.

Paper: from a university vantage, only Verizon's and AT&T's external
resolvers answer a majority of pings (a small fraction of Sprint's);
T-Mobile's and both SK carriers' answer none; *zero* traceroutes
penetrate any cellular network — opaqueness extends to the DNS tier.
"""

from repro.analysis.report import format_table


def bench_table4_reachability(benchmark, bench_study, emit):
    rows = benchmark(bench_study.table4_reachability)
    display = [
        (
            bench_study.world.operators[row.carrier].display_name,
            row.total,
            row.ping_responsive,
            row.traceroute_responsive,
            f"{row.ping_fraction * 100:.0f}%",
        )
        for row in rows
    ]
    rendered = format_table(
        ["Provider", "Total", "Ping", "Traceroute", "Ping %"],
        display,
        title=(
            "Table 4: externally reachable cellular resolvers\n"
            "Paper shape: Verizon & AT&T majority ping-reachable; Sprint a\n"
            "small fraction; others none; traceroutes always fail."
        ),
    )
    emit("table4_reachability", rendered)
    by_key = {row.carrier: row for row in rows}
    assert by_key["verizon"].ping_fraction > 0.5
    assert by_key["att"].ping_fraction > 0.5
    assert by_key["tmobile"].ping_responsive == 0
    assert all(row.traceroute_responsive == 0 for row in rows)
