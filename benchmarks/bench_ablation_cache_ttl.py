"""Ablation: CDN A-record TTLs drive the cache-miss rate (Fig 7's cause).

The paper attributes the ~20% first-lookup miss rate to "the short TTLs
used by CDNs".  Sweeping a forced TTL across all CDN answers shows the
miss rate collapsing as TTLs grow — and with it, the resolution-time
tail of Fig 5.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_table
from repro.core.world import WorldConfig

TTL_SWEEP = [5, 30, 300, 3600]


@pytest.fixture(scope="module")
def ttl_sweep():
    results = []
    for ttl in TTL_SWEEP:
        study = CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.05,
                duration_days=25.0,
                interval_hours=12.0,
                world=WorldConfig(cdn_a_ttl_override=ttl),
            )
        )
        study.dataset
        results.append((ttl, study))
    return results


def _ttl_rows(sweep):
    rows = []
    for ttl, study in sweep:
        comparison = study.fig7_cache()
        us = study.fig5_us_resolution()
        tail = max(ecdf.quantile(0.9) for ecdf in us.values())
        rows.append(
            (
                f"{ttl}s",
                f"{comparison.miss_rate() * 100:.0f}%",
                f"{comparison.first.median:.0f} ms",
                f"{tail:.0f} ms",
            )
        )
    return rows


def bench_ablation_cache_ttl(benchmark, ttl_sweep, emit):
    rows = benchmark(_ttl_rows, ttl_sweep)
    rendered = format_table(
        ["forced A TTL", "1st-lookup miss rate", "p50 1st lookup",
         "worst US p90 resolution"],
        rows,
        title=(
            "Ablation: CDN answer TTL vs cache behaviour.\n"
            "Short TTLs reproduce Fig 7's ~20% miss rate and Fig 5's tail;\n"
            "hour-long TTLs would make cellular DNS look flawless (and make\n"
            "DNS-based replica selection unresponsive)."
        ),
    )
    emit("ablation_cache_ttl", rendered)
    rates = [study.fig7_cache().miss_rate() for _, study in ttl_sweep]
    # Monotone improvement with TTL; very short TTLs devastate the cache.
    assert rates[0] > 0.40
    assert rates[0] > rates[1] >= rates[-1]
    # The floor never reaches zero: on churny carriers even back-to-back
    # queries can land on *different* external resolvers, whose caches
    # are independent — a miss no TTL can fix (Sec 4.5 meets Fig 7).
    assert rates[-1] > 0.05
