"""Ablation: why 4G makes replica selection matter (the paper's Sec 2).

Xu et al. concluded that in 3G networks, radio latency dominated so
thoroughly that "choosing content servers based on local DNS servers is
sufficiently accurate".  The paper's motivation is that LTE changes
this.  We rebuild the same carriers with their 4G-era radio mix and
with a forced 3G-only mix, and compare (a) absolute replica TTFBs and
(b) the share of the end-to-end budget a better replica choice could
save — the "CDN-controllable" share.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_table
from repro.cellnet.presets import default_carrier_configs
from repro.core.world import WorldConfig


def _force_3g(configs):
    for config in configs:
        weights = []
        for technology, weight in zip(
            config.technologies, config.technology_weights
        ):
            weights.append(0.0 if technology == "LTE" else weight)
        if sum(weights) == 0:
            # LG U+ is effectively LTE-only; keep its 3G fallback.
            weights = [1.0 if t == "EHRPD" else 0.0 for t in config.technologies]
        config.technology_weights = weights
    return configs


@pytest.fixture(scope="module")
def generation_pair():
    def run(force_3g):
        carriers = default_carrier_configs()
        if force_3g:
            carriers = _force_3g(carriers)
        study = CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.06,
                duration_days=30.0,
                interval_hours=12.0,
                world=WorldConfig(carriers=carriers),
            )
        )
        study.dataset
        return study

    return run(False), run(True)


def _generation_rows(pair):
    lte_study, g3_study = pair
    rows = []
    for label, study in (("4G-era mix", lte_study), ("3G-only", g3_study)):
        for carrier in ("att", "verizon"):
            ttfbs = [
                http.ttfb_ms
                for record in study.dataset
                if record.carrier == carrier
                for http in record.http_gets
                if http.ttfb_ms is not None
            ]
            differential = study.fig2_replica_differentials(carrier)
            ecdf = differential.ecdf()
            if not ttfbs or ecdf.is_empty:
                continue
            ttfbs.sort()
            median_ttfb = ttfbs[len(ttfbs) // 2]
            # Median absolute saving of moving to the best replica:
            # differential% of the best-replica latency, approximated
            # against the median TTFB.
            controllable = ecdf.median / (100.0 + ecdf.median)
            rows.append(
                (
                    label,
                    carrier,
                    f"{median_ttfb:.0f} ms",
                    f"+{ecdf.median:.0f}%",
                    f"{controllable * 100:.0f}%",
                )
            )
    return rows


def bench_ablation_radio_generation(benchmark, generation_pair, emit):
    rows = benchmark(_generation_rows, generation_pair)
    rendered = format_table(
        [
            "radio mix",
            "carrier",
            "median replica TTFB",
            "p50 replica differential",
            "CDN-controllable share of TTFB",
        ],
        rows,
        title=(
            "Ablation: 4G vs 3G radio mixes.\n"
            "On 3G the radio inflates every replica's TTFB, shrinking the\n"
            "relative gain a better replica offers — Xu et al.'s world.\n"
            "On LTE the same mapping errors translate into large relative\n"
            "losses, which is the paper's motivation."
        ),
    )
    emit("ablation_radio_generation", rendered)
    lte_study, g3_study = generation_pair
    # Absolute latencies are much worse under 3G: the radio dominates
    # the budget, which is exactly Xu et al.'s 2011 world.
    lte_times = [
        h.ttfb_ms
        for r in lte_study.dataset if r.carrier == "verizon"
        for h in r.http_gets if h.ttfb_ms
    ]
    g3_times = [
        h.ttfb_ms
        for r in g3_study.dataset if r.carrier == "verizon"
        for h in r.http_gets if h.ttfb_ms
    ]
    lte_times.sort()
    g3_times.sort()
    assert g3_times[len(g3_times) // 2] > 1.8 * lte_times[len(lte_times) // 2]
    # Resolution latency bands shift the same way.
    from repro.analysis.latency import resolution_times

    lte_res = resolution_times(lte_study.dataset, "verizon")
    g3_res = resolution_times(g3_study.dataset, "verizon")
    assert g3_res.median > 1.5 * lte_res.median
    # Note: the *relative* Fig 2 differential is NOT asserted here — 3G's
    # large radio variance inflates per-replica mean estimates, a
    # measurement-noise effect that echoes why the paper leans on LTE's
    # stable latency for its comparisons (Sec 3.3, Gember et al.).
