"""Fig 8: external resolvers observed by a client over time.

Paper: AT&T and Verizon clients show relatively stable mappings; Sprint
and T-Mobile clients churn, with IP changes typically accompanied by /24
changes; SK clients churn rapidly *within* one or two /24s (one LG U+
client saw 65 external addresses inside two /24s in two weeks).
"""

from repro.analysis.report import format_table


def _churn_rows(study):
    rows = []
    for carrier in ("att", "sprint", "tmobile", "verizon", "skt", "lgu"):
        devices = study.campaign.devices_of(carrier)
        timelines = [
            study.fig8_resolver_churn(device.device_id) for device in devices
        ]
        busiest = max(timelines, key=lambda t: len(t.observations))
        rows.append(
            (
                carrier,
                busiest.device_id,
                len(busiest.observations),
                busiest.unique_ips(),
                busiest.unique_prefixes(),
                busiest.changes(),
            )
        )
    return rows


def bench_fig8_resolver_churn(benchmark, bench_study, emit):
    rows = benchmark(_churn_rows, bench_study)
    rendered = format_table(
        ["carrier", "device", "obs", "unique IPs", "unique /24s", "changes"],
        rows,
        title=(
            "Fig 8: per-device external resolver churn (busiest device)\n"
            "Paper shape: AT&T/Verizon stable; Sprint/T-Mobile churn across\n"
            "/24s; SK carriers churn heavily within <=2 /24s."
        ),
    )
    emit("fig8_resolver_churn", rendered)
    by_carrier = {row[0]: row for row in rows}
    assert by_carrier["tmobile"][3] > by_carrier["att"][3]  # unique IPs
    assert by_carrier["skt"][4] <= 2  # /24s
    assert by_carrier["lgu"][4] <= 2
