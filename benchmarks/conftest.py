"""Benchmark harness fixtures.

One campaign is simulated per benchmark session and shared by every
bench; each bench then times its *analysis* stage and prints the
reproduced table/figure next to the paper's expectation.  Artifacts are
also written to ``benchmarks/output/`` for inspection and for
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro import CellularDNSStudy, StudyConfig

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def bench_study() -> CellularDNSStudy:
    """The campaign all benches analyse (runs once per session)."""
    config = StudyConfig(
        seed=2014,
        device_scale=0.15,
        min_devices=1,
        duration_days=90.0,
        interval_hours=12.0,
    )
    study = CellularDNSStudy(config)
    study.dataset  # force the campaign now, outside any timer
    return study


@pytest.fixture(scope="session")
def emit():
    """Print an artifact and archive it under benchmarks/output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    def _emit(artifact_id: str, text: str) -> None:
        print(f"\n===== {artifact_id} =====")
        print(text)
        path = os.path.join(OUTPUT_DIR, f"{artifact_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _emit
