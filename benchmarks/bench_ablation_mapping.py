"""Ablation: how CDN localization error shapes the paper's findings.

The substitution DESIGN.md calls out: the CDN's per-/24 location
estimate for cellular resolvers carries error (opaqueness) and
occasional blunders.  This sweep shows the two headline metrics trading
off against that error — tight estimates push Fig 14's equality share
up and Fig 2's differentials down; loose estimates do the opposite.
The defaults (160 km, 8%) sit where both paper shapes hold.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_table
from repro.core.world import WorldConfig

SWEEP = [
    ("oracle (60km, no blunders)", 60.0, 0.0),
    ("default (160km, 8%)", 160.0, 0.08),
    ("blind (600km, 30%)", 600.0, 0.30),
]


@pytest.fixture(scope="module")
def mapping_sweep():
    results = []
    for label, error_km, blunder in SWEEP:
        study = CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.06,
                duration_days=30.0,
                interval_hours=12.0,
                world=WorldConfig(
                    cdn_mapping_overrides={
                        "cellular_error_km": error_km,
                        "cellular_blunder_prob": blunder,
                    }
                ),
            )
        )
        study.dataset
        results.append((label, study))
    return results


def _sweep_rows(sweep):
    rows = []
    for label, study in sweep:
        fig2 = study.fig2_replica_differentials("tmobile").ecdf()
        fig14 = study.fig14_public_replicas("tmobile")
        rows.append(
            (
                label,
                f"+{fig2.median:.0f}%" if not fig2.is_empty else "-",
                f"{fig14.fraction_equal() * 100:.0f}%",
                f"{fig14.fraction_public_not_worse() * 100:.0f}%",
            )
        )
    return rows


def bench_ablation_mapping(benchmark, mapping_sweep, emit):
    rows = benchmark(_sweep_rows, mapping_sweep)
    rendered = format_table(
        [
            "mapping accuracy",
            "Fig2 p50 differential (tmobile)",
            "Fig14 equal share",
            "Fig14 public<=local",
        ],
        rows,
        title=(
            "Ablation: CDN localization error for cellular /24s.\n"
            "Paper shapes require the middle ground: errors large enough\n"
            "to produce Fig 2's differentials, small enough for Fig 14's\n"
            "60-80% equality."
        ),
    )
    emit("ablation_mapping", rendered)
    # Equality share must fall monotonically as mapping degrades.
    shares = []
    for _, study in mapping_sweep:
        shares.append(study.fig14_public_replicas("tmobile").fraction_equal())
    assert shares[0] > shares[-1]
