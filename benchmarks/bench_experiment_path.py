"""Per-stage profile of the experiment hot path.

Times one serial campaign with an instrumented probe session and
reports where an experiment's wall time goes: DNS resolutions, pings,
traceroutes, HTTP GETs, and JSONL serialization.  This is the profile
that motivated the serial fast path (slotted records, the zero-asdict
serializer, and the per-experiment session caches); keeping it in the
bench suite makes regressions in any single stage visible instead of
smeared into one throughput number.

Standalone use::

    PYTHONPATH=src python benchmarks/bench_experiment_path.py
"""

from repro.measure.bench import STAGES, bench_stage_breakdown, smoke_scale


def _render(report) -> str:
    lines = [
        f"experiments: {report['experiments']} "
        f"in {report['total_s']}s (serial, instrumented)"
    ]
    for stage in STAGES:
        lines.append(
            f"  {stage:<10} {report[f'{stage}_s']:>7.3f}s  "
            f"{report[f'{stage}_calls']:>6} calls  "
            f"{report[f'{stage}_us_per_call']:>8.1f} us/call"
        )
    lines.append(f"  {'other':<10} {report['other_s']:>7.3f}s")
    return "\n".join(lines)


def bench_experiment_path(emit):
    report = bench_stage_breakdown(smoke_scale())
    emit("experiment_path", _render(report))
    assert report["experiments"] > 0
    # Every stage must actually have been exercised by the script.
    for stage in STAGES:
        assert report[f"{stage}_calls"] > 0, stage
        assert report[f"{stage}_s"] >= 0.0, stage


if __name__ == "__main__":
    print(_render(bench_stage_breakdown(smoke_scale())))
