"""Fig 12: Google DNS resolver consistency over time, per carrier.

Paper: despite 8.8.8.8 being anycast, devices are directed to multiple
distinct /24 clusters over time — each /24 being one of Google's ~30
geographically distinct resolver sites — plausibly due to operator
tunnelling wobbling the anycast routing.
"""

from repro.analysis.report import format_table


def _google_churn_rows(study):
    rows = []
    for carrier in ("att", "sprint", "tmobile", "verizon", "skt", "lgu"):
        devices = study.campaign.devices_of(carrier)
        timelines = [
            study.fig12_google_churn(device.device_id) for device in devices
        ]
        busiest = max(timelines, key=lambda t: len(t.observations))
        rows.append(
            (
                carrier,
                busiest.device_id,
                len(busiest.observations),
                busiest.unique_ips(),
                busiest.unique_prefixes(),
            )
        )
    return rows


def bench_fig12_google_churn(benchmark, bench_study, emit):
    rows = benchmark(_google_churn_rows, bench_study)
    rendered = format_table(
        ["carrier", "device", "obs", "google IPs", "google /24 clusters"],
        rows,
        title=(
            "Fig 12: Google resolver churn per device\n"
            "Paper shape: devices see multiple /24 clusters over time even\n"
            "though the configured address (8.8.8.8) never changes."
        ),
    )
    emit("fig12_google_churn", rendered)
    assert max(row[4] for row in rows) >= 3
