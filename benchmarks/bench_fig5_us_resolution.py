"""Fig 5: DNS resolution time CDFs for the four US carriers.

Paper: medians between 30 and 50 ms (comparable to wired broadband),
with long tails above the 80th percentile caused by cache misses.
"""

from repro.analysis.report import format_cdfs


def bench_fig5_us_resolution(benchmark, bench_study, emit):
    curves = benchmark(bench_study.fig5_us_resolution)
    rendered = format_cdfs(
        curves,
        title=(
            "Fig 5: DNS resolution time, US carriers\n"
            "Paper shape: 30-50 ms medians, long tail above p80."
        ),
    )
    emit("fig5_us_resolution", rendered)
    for carrier, ecdf in curves.items():
        assert 25.0 < ecdf.median < 120.0, carrier
        assert ecdf.quantile(0.99) > 2.0 * ecdf.median, carrier
