"""Fig 14: relative replica latency, public vs cellular DNS.

Paper: aggregating replicas by /24, 60-80% of comparisons tie at exactly
0% for every carrier; overall the replicas chosen via public DNS are
equal or better a majority of the time (the abstract says >75%), with
cellular DNS strictly better in roughly a quarter of cases — the
headline "cellular DNS localizes no better than public DNS" result.
"""

from repro.analysis.report import format_table
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _comparisons(study):
    results = {}
    for carrier in (*US_CARRIERS, *SK_CARRIERS):
        for kind in ("google", "opendns"):
            results[(carrier, kind)] = study.fig14_public_replicas(carrier, kind)
    return results


def bench_fig14_public_replicas(benchmark, bench_study, emit):
    results = benchmark(_comparisons, bench_study)
    rows = []
    for (carrier, kind), result in results.items():
        ecdf = result.ecdf()
        rows.append(
            (
                carrier,
                kind,
                len(result.percent_changes),
                f"{result.fraction_equal() * 100:.0f}%",
                f"{result.fraction_public_not_worse() * 100:.0f}%",
                f"{ecdf.quantile(0.9):.0f}%" if not ecdf.is_empty else "-",
            )
        )
    rendered = format_table(
        ["carrier", "public", "n", "equal (0%)", "public<=local", "p90 change"],
        rows,
        title=(
            "Fig 14: relative replica latency, public vs cellular DNS\n"
            "Paper shape: 60-80% exactly equal after /24 aggregation; public\n"
            "equal-or-better >75% of the time."
        ),
    )
    emit("fig14_public_replicas", rendered)
    for carrier in (*US_CARRIERS, *SK_CARRIERS):
        result = results[(carrier, "google")]
        assert result.fraction_public_not_worse() > 0.7, carrier
    equal_rates = [
        results[(carrier, "google")].fraction_equal()
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    ]
    assert max(equal_rates) > 0.6
