"""Fig 13: resolution time through local vs public resolvers.

Paper: "in a majority of cases, the locally configured resolver provides
faster domain name resolutions"; public resolvers are slower on average
(they sit outside the cellular network) but show lower variance and a
shorter tail.
"""

from repro.analysis.report import format_cdfs
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _all_kinds(study):
    return {
        carrier: study.fig13_public_resolution(carrier)
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    }


def bench_fig13_public_resolution(benchmark, bench_study, emit):
    results = benchmark(_all_kinds, bench_study)
    sections = []
    for carrier, curves in results.items():
        sections.append(
            format_cdfs(
                curves, title=f"Fig 13 [{carrier}]: local vs public resolution"
            )
        )
    emit("fig13_public_resolution", "\n\n".join(sections))
    for carrier, curves in results.items():
        assert curves["local"].median < curves["google"].median, carrier
    for carrier in SK_CARRIERS:
        curves = results[carrier]
        # SK cache misses cross the Pacific either way; public resolvers'
        # warmer caches give them the shorter tail (Sec 6.2).
        assert curves["opendns"].quantile(0.9) < curves["local"].quantile(0.9)
