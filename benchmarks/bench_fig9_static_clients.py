"""Fig 9: resolver associations for clients at a static location.

Paper: even filtering measurements to a 10 km radius around a client's
home cluster, resolvers keep shifting across IPs and /24 prefixes —
churn is not explained by mobility.
"""

from repro.analysis.report import format_table


def _static_rows(study):
    rows = []
    for carrier in ("att", "tmobile", "skt", "lgu"):
        for device in study.campaign.devices_of(carrier):
            timeline = study.fig9_static_timeline(device.device_id)
            if len(timeline.observations) < 20:
                continue
            rows.append(
                (
                    carrier,
                    device.device_id,
                    len(timeline.observations),
                    timeline.unique_ips(),
                    timeline.unique_prefixes(),
                )
            )
            break
    return rows


def bench_fig9_static_clients(benchmark, bench_study, emit):
    rows = benchmark(_static_rows, bench_study)
    rendered = format_table(
        ["carrier", "device", "obs (within 10km)", "unique IPs", "unique /24s"],
        rows,
        title=(
            "Fig 9: resolver churn for stationary clients (10 km filter)\n"
            "Paper shape: churn persists without any client movement."
        ),
    )
    emit("fig9_static_clients", rendered)
    churny = [row for row in rows if row[0] in ("tmobile", "lgu")]
    assert churny
    assert all(row[3] > 2 for row in churny)  # many IPs while static
