"""Fig 3: DNS resolution time by radio technology, per carrier.

Paper: "very defined performance boundaries between different radio
technologies" — LTE fastest, a ~50 ms gap to 3G (e.g. EHRPD/EVDO on the
CDMA carriers), and 2G (1xRTT) near a full second.
"""

from repro.analysis.report import format_cdfs
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _per_carrier_bands(study):
    return {
        carrier: study.fig3_resolution_by_technology(carrier)
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    }


def bench_fig3_rat_bands(benchmark, bench_study, emit):
    bands = benchmark(_per_carrier_bands, bench_study)
    sections = []
    for carrier, curves in bands.items():
        ordered = dict(
            sorted(curves.items(), key=lambda item: item[1].median)
        )
        sections.append(
            format_cdfs(ordered, title=f"Fig 3 [{carrier}]: resolution by RAT")
        )
    rendered = "\n\n".join(sections)
    emit("fig3_rat_bands", rendered)
    for carrier in ("verizon", "att", "skt"):
        curves = bands[carrier]
        non_lte = [
            ecdf.median
            for name, ecdf in curves.items()
            if name != "LTE" and len(ecdf) >= 10
        ]
        if non_lte:
            assert curves["LTE"].median < min(non_lte), carrier
