"""Table 3: LDNS pairs and pairing consistency.

Paper shape: every carrier resolves indirectly; Verizon is 100%
consistent (fixed tiered pairs); Sprint's pools are >60% consistent;
T-Mobile balances heavily (low consistency, many externals); AT&T's
anycast addresses fan out to ~40 externals; the SK carriers pack many
externals into one or two /24s.
"""

from repro.analysis.report import format_table


def bench_table3_ldns_pairs(benchmark, bench_study, emit):
    rows = benchmark(bench_study.table3_ldns_pairs)
    display = [
        (
            bench_study.world.operators[row.carrier].display_name,
            row.client_addresses,
            row.external_addresses,
            row.pairs,
            f"{row.consistency_pct:.1f}",
        )
        for row in rows
    ]
    rendered = format_table(
        ["Provider", "Client", "External", "Pairs", "Consistency %"],
        display,
        title=(
            "Table 3: LDNS pairs seen by mobile clients\n"
            "Paper shape: Verizon 100%; Sprint >60%; T-Mobile lowest; all\n"
            "carriers show more external than client-facing addresses."
        ),
    )
    emit("table3_ldns_pairs", rendered)
    by_key = {row.carrier: row for row in rows}
    assert by_key["verizon"].consistency_pct == 100.0
    assert by_key["sprint"].consistency_pct > 60.0
    assert by_key["tmobile"].consistency_pct < 30.0
