"""Table 2: the nine measured mobile domains.

Paper: nine popular mobile sites, each chosen because its resolution
"initially resulted in a canonical name (CNAME) record".  The bench
verifies the CNAME criterion against the live DNS substrate for every
catalogue entry.
"""

from repro.analysis.report import format_table
from repro.dns.message import RRType


def _verify_cname_criterion(study):
    rows = []
    for name, cdn_key, edge_name, a_ttl in study.table2_domains():
        authority = study.world.directory.authority_for(name)
        from repro.dns.message import make_query

        response = authority.answer(make_query(name, RRType.A), "198.18.0.1", 0.0)
        has_cname = bool(response.cname_chain())
        rows.append((name, cdn_key, "yes" if has_cname else "NO", a_ttl))
    return rows


def bench_table2_domains(benchmark, bench_study, emit):
    rows = benchmark(_verify_cname_criterion, bench_study)
    rendered = format_table(
        ["Domain", "CDN", "CNAME first?", "A TTL (s)"],
        rows,
        title="Table 2: measured mobile domains (paper preserves m.yelp.com; "
        "rest reconstructed, see DESIGN.md)",
    )
    emit("table2_domains", rendered)
    assert len(rows) == 9
    assert all(flag == "yes" for _, _, flag, _ in rows)
