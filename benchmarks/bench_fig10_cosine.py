"""Fig 10: cosine similarity of replica sets for www.buzzfeed.com.

Paper: resolvers in the same /24 see near-identical replica sets
(similarity ~1); resolvers in different /24s see highly independent
sets, with over 60% of pairs at similarity 0 — CDNs group replica
mappings by resolver /24.
"""

from repro.analysis.report import format_table


def _similarities(study):
    results = {}
    for carrier in ("att", "sprint", "tmobile", "verizon", "skt", "lgu"):
        results[carrier] = study.fig10_similarity(carrier)
    return results


def bench_fig10_cosine(benchmark, bench_study, emit):
    results = benchmark(_similarities, bench_study)
    rows = []
    for carrier, result in results.items():
        rows.append(
            (
                carrier,
                len(result.same_prefix),
                f"{result.median_same_prefix():.2f}" if result.same_prefix else "-",
                len(result.different_prefix),
                f"{result.fraction_disjoint() * 100:.0f}%"
                if result.different_prefix
                else "-",
            )
        )
    rendered = format_table(
        ["carrier", "same-/24 pairs", "median sim", "diff-/24 pairs", "sim=0 share"],
        rows,
        title=(
            "Fig 10: replica-set cosine similarity, www.buzzfeed.com\n"
            "Paper shape: same-/24 similarity ~1; >60% of different-/24\n"
            "pairs fully disjoint."
        ),
    )
    emit("fig10_cosine", rendered)
    tmobile = results["tmobile"]
    assert tmobile.median_same_prefix() > 0.9
    assert tmobile.fraction_disjoint() > 0.6
