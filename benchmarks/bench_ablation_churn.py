"""Ablation: resolver churn is the mechanism behind Fig 2.

Freeze every carrier's assignment epochs (egress, pairing, balancing)
to effectively infinite and the replica differentials collapse: a
client that keeps one external resolver keeps one replica set.  This
isolates *churn* — not mapping error alone — as the paper's causal
chain from Sec 4.5 to Sec 5.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.localization import replica_differentials
from repro.analysis.report import format_table
from repro.cellnet.presets import default_carrier_configs
from repro.core.world import WorldConfig

FROZEN = 1e9  # seconds; no epoch ever rolls within a campaign


def _freeze(configs):
    for config in configs:
        config.churn.egress_epoch_s = FROZEN
        config.churn.dhcp_epoch_s = FROZEN
        config.pool_rehome_hours = FROZEN / 3600.0
        config.pool_stickiness = 1.0
        config.lb_coherence_s = FROZEN
        config.anycast_machine_epoch_s = None
        config.anycast_site_flutter = 0.0
    return configs


@pytest.fixture(scope="module")
def churn_pair():
    def run(frozen):
        carriers = default_carrier_configs()
        if frozen:
            carriers = _freeze(carriers)
        study = CellularDNSStudy(
            StudyConfig(
                seed=2014,
                device_scale=0.06,
                duration_days=30.0,
                interval_hours=12.0,
                world=WorldConfig(carriers=carriers),
            )
        )
        study.dataset
        return study

    return run(False), run(True)


def _churn_rows(pair):
    normal, frozen = pair
    rows = []
    for carrier in ("att", "tmobile", "skt"):
        live = replica_differentials(
            normal.dataset, carrier, resolver_kind="local"
        ).ecdf()
        static = replica_differentials(
            frozen.dataset, carrier, resolver_kind="local"
        ).ecdf()
        live_timeline = max(
            (
                normal.fig8_resolver_churn(d.device_id)
                for d in normal.campaign.devices_of(carrier)
            ),
            key=lambda t: len(t.observations),
        )
        frozen_timeline = max(
            (
                frozen.fig8_resolver_churn(d.device_id)
                for d in frozen.campaign.devices_of(carrier)
            ),
            key=lambda t: len(t.observations),
        )
        rows.append(
            (
                carrier,
                live_timeline.unique_ips(),
                frozen_timeline.unique_ips(),
                f"+{live.median:.0f}%" if not live.is_empty else "-",
                f"+{static.median:.0f}%" if not static.is_empty else "-",
            )
        )
    return rows


def bench_ablation_churn(benchmark, churn_pair, emit):
    rows = benchmark(_churn_rows, churn_pair)
    rendered = format_table(
        [
            "carrier",
            "resolver IPs seen (churning)",
            "resolver IPs seen (frozen)",
            "Fig2 p50 (churning)",
            "Fig2 p50 (frozen)",
        ],
        rows,
        title=(
            "Ablation: freezing client->resolver assignments.\n"
            "Without churn each client sticks to one replica mapping and\n"
            "the Fig 2 differentials largely vanish — churn, not mapping\n"
            "noise alone, drives the paper's headline pathology."
        ),
    )
    emit("ablation_churn", rendered)
    normal, frozen = churn_pair
    for carrier in ("tmobile",):
        live = replica_differentials(
            normal.dataset, carrier, resolver_kind="local"
        ).ecdf()
        static = replica_differentials(
            frozen.dataset, carrier, resolver_kind="local"
        ).ecdf()
        if not live.is_empty and not static.is_empty:
            assert static.median < live.median
