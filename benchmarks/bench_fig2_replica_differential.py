"""Fig 2: client-observed performance of all replica servers seen.

Paper: per user and domain, each replica's mean TTFB is scored as the
percent increase over the user's best replica.  "We find replica latency
increases ranging from 50% to 100% in all networks"; in an extreme case
clients see >400% increases in a substantial share of accesses.
"""

from repro.analysis.report import format_table
from repro.core.study import SK_CARRIERS, US_CARRIERS


def _all_differentials(study):
    return {
        carrier: study.fig2_replica_differentials(carrier)
        for carrier in (*US_CARRIERS, *SK_CARRIERS)
    }


def bench_fig2_replica_differential(benchmark, bench_study, emit):
    results = benchmark(_all_differentials, bench_study)
    rows = []
    for carrier, result in results.items():
        ecdf = result.ecdf()
        if ecdf.is_empty:
            rows.append((carrier, 0, "-", "-", "-", "-"))
            continue
        rows.append(
            (
                carrier,
                len(ecdf),
                f"{ecdf.median:.0f}%",
                f"{ecdf.quantile(0.9):.0f}%",
                f"{ecdf.fraction_above(100.0) * 100:.0f}%",
                f"{ecdf.fraction_above(400.0) * 100:.0f}%",
            )
        )
    rendered = format_table(
        ["carrier", "n", "p50 incr", "p90 incr", ">100% share", ">400% share"],
        rows,
        title=(
            "Fig 2: replica latency increase over each user's best replica\n"
            "Paper shape: 50-100% increases in all networks; an extreme\n"
            "carrier/domain pair sees >400% in a large share of accesses."
        ),
    )
    emit("fig2_replica_differential", rendered)
    medians = [
        results[carrier].ecdf().median
        for carrier in results
        if not results[carrier].ecdf().is_empty
    ]
    assert max(medians) > 40.0
