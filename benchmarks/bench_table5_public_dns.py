"""Table 5: unique resolver IPs and /24s per provider and resolver kind.

Paper: anycast public services expose many more unique resolver
*addresses* than the cellular DNS (Google >4x for US carriers), but
aggregated by /24 the counts become comparable, because each public
cluster is one /24 (Google documents 30 such sites).
"""

from repro.analysis.report import format_table


def bench_table5_public_dns(benchmark, bench_study, emit):
    rows = benchmark(bench_study.table5_resolver_counts)
    cells = {}
    for row in rows:
        cells[(row.carrier, row.resolver_kind)] = row
    carriers = ("att", "sprint", "tmobile", "verizon", "skt", "lgu")
    display = []
    for carrier in carriers:
        local = cells.get((carrier, "local"))
        google = cells.get((carrier, "google"))
        opendns = cells.get((carrier, "opendns"))
        display.append(
            (
                carrier,
                f"{local.unique_ips}/{local.unique_prefixes}" if local else "-",
                f"{google.unique_ips}/{google.unique_prefixes}" if google else "-",
                f"{opendns.unique_ips}/{opendns.unique_prefixes}" if opendns else "-",
            )
        )
    rendered = format_table(
        ["carrier", "local ip//24", "google ip//24", "opendns ip//24"],
        display,
        title=(
            "Table 5: unique resolver addresses and /24s per provider\n"
            "Paper shape: public services show many more IPs but /24 counts\n"
            "comparable; SK locals concentrate many IPs in 1-2 /24s."
        ),
    )
    emit("table5_public_dns", rendered)
    verizon_google = cells[("verizon", "google")]
    verizon_local = cells[("verizon", "local")]
    assert verizon_google.unique_ips > verizon_local.unique_ips
    for carrier in ("skt", "lgu"):
        local = cells[(carrier, "local")]
        assert local.unique_prefixes <= 2
