"""Extension: an operator-run CDN at the egress points (Sec 7 outlook).

The paper's discussion notes operators moving into content delivery
(Verizon's EdgeCast acquisition).  An on-net CDN enjoys the two things
commercial CDNs lack in cellular networks: exact knowledge of client
attachment, and placement *inside* the network.  This bench grafts such
a CDN onto Verizon and compares replica TTFB against what the campaign
measured through commercial CDNs.
"""

import pytest

from repro import CellularDNSStudy, StudyConfig
from repro.analysis.report import format_table
from repro.analysis.stats import ECDF
from repro.cdn.catalog import spec_for
from repro.cdn.operator_cdn import build_operator_cdn
from repro.cdn.replica import http_ttfb_ms
from repro.cellnet.radio import RadioTechnology

CARRIER = "verizon"


@pytest.fixture(scope="module")
def onnet_study():
    study = CellularDNSStudy(
        StudyConfig(
            seed=2014, device_scale=0.1, duration_days=30.0, interval_hours=12.0
        )
    )
    study.dataset
    build_operator_cdn(study.world, CARRIER)
    return study


def _compare(study):
    """Measured commercial TTFBs vs probed on-net TTFBs."""
    commercial = [
        http.ttfb_ms
        for record in study.dataset
        if record.carrier == CARRIER
        for http in record.http_gets
        if http.ttfb_ms is not None
    ]
    provider = study.world.cdns[f"onnet-{CARRIER}"]
    operator = study.world.operators[CARRIER]
    stream = study.world.rng.stream("bench", "onnet")
    spec = spec_for("m.cnn.com")
    onnet = []
    for device in study.campaign.devices_of(CARRIER):
        for trial in range(40):
            now = trial * 3600.0
            attachment = operator.attachment(device, now)
            origin = operator.probe_origin(
                device, now, stream, technology=RadioTechnology.LTE
            )
            replica = provider.select_for_attachment(spec, attachment)[0]
            ttfb = http_ttfb_ms(study.world.internet, origin, replica, stream)
            if ttfb is not None:
                onnet.append(ttfb)
    return ECDF.from_values(commercial), ECDF.from_values(onnet)


def bench_extension_operator_cdn(benchmark, onnet_study, emit):
    commercial, onnet = benchmark(_compare, onnet_study)
    rows = [
        ("commercial CDNs (measured)", len(commercial),
         f"{commercial.median:.0f}", f"{commercial.quantile(0.9):.0f}"),
        ("on-net operator CDN", len(onnet),
         f"{onnet.median:.0f}", f"{onnet.quantile(0.9):.0f}"),
    ]
    rendered = format_table(
        ["replica source", "n", "p50 TTFB (ms)", "p90 TTFB (ms)"],
        rows,
        title=(
            "Extension: on-net operator CDN for Verizon.\n"
            "Replicas at the egress points, selected from the attachment\n"
            "oracle, cut TTFB versus commercial CDNs steered by churning\n"
            "resolver addresses — quantifying why operators moved into\n"
            "content delivery (Sec 7)."
        ),
    )
    emit("extension_operator_cdn", rendered)
    assert not onnet.is_empty and not commercial.is_empty
    assert onnet.median < commercial.median
    assert onnet.quantile(0.9) < commercial.quantile(0.9)
