#!/usr/bin/env python
"""Pre-merge gate: tier-1 tests plus a campaign determinism smoke.

Runs, in order:

1. the tier-1 test suite (``pytest -x -q`` with ``src`` on the path);
2. a ~30 s benchmark smoke at ``device_scale=0.05`` over 14 days,
   failing hard if the per-carrier parallel or sub-carrier sharded
   campaign's dataset hash differs from the serial one, if the
   fault-free dataset hash drifts from the pinned
   ``SMOKE_DATASET_SHA256`` golden (the transport layer's
   byte-identity contract) — and, on a multi-core box, if the sharded
   executor stays *slower* than the serial one across three attempts
   (an executor regression; noise only slows a leg down, so the best
   attempt gates; single-core boxes only note the expected slowdown —
   ``--executor auto`` runs serial there);
3. the warm worker-pool gate: snapshot boots must beat world rebuilds
   (best-of-3 each), a repeat run must reuse the live pool, and the
   overlapped tailing merge must hash identically to the
   wait-then-merge reference path;
4. the probe fast-path gates: one stage-breakdown smoke whose
   ``dns_us_per_call`` must stay within 25% — and ``ping_us_per_call``
   / ``http_us_per_call`` / ``serialize_us_per_call`` within 50% — of
   the committed ``BENCH_campaign.json`` figures (guards the
   compiled-plan, vectorized draw-pool and batched-serializer fast
   paths against silent regression; the headroom absorbs box noise,
   wider for the shorter stages, and a stage reading over its limit is
   re-measured up to three times — steal-noise is additive, so the
   per-stage minimum is what gates), and whose sampler pool counters
   must show at least one refill (the block-sampling layer is actually
   in play);
5. the analysis fast-path gate: the fused table+figure regeneration
   must render **byte-identical** to the reference per-function walks
   (hard failure — correctness, not speed), and its steady-state
   ``us_per_record`` must stay within 50% of the committed figure
   (more headroom than the DNS gate: the measured interval is
   shorter, so box noise is proportionally larger);
6. the dataset backends gate: every storage backend (JSONL, SQLite,
   columnar) must roundtrip the smoke dataset hash-identically (hard
   failure — a backend that changes bytes corrupts archives), and the
   JSONL reference writer's append/load us-per-record must stay within
   50% of the committed ``bench_backends`` figures;
7. the pipelined campaign→report gate: the streaming-merge report must
   render byte-identical to the post-hoc path (hard failure), and the
   streaming leg must beat campaign-then-report wall-clock by at least
   the committed ``analysis.load_s + engine_scan_s`` — the archive
   re-read and re-scan the pipeline eliminates (up to three attempts,
   keeping the maximum advantage: noise can only hide a real saving).

Exit status is non-zero on any test failure, on a determinism-hash
mismatch, on a multi-core parallel slowdown, on an analysis identity
break, or on a fast-path regression, so CI (or a pre-push hook) can
call this one script.

Usage::

    python scripts/bench_check.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def run_tier1() -> int:
    """The repo's tier-1 suite, exactly as the roadmap specifies it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    print("== tier-1 test suite ==", flush=True)
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )
    return result.returncode


def run_bench_smoke() -> int:
    """Small campaign, serial/parallel/sharded, hashes must match."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import (
        SMOKE_DATASET_SHA256,
        BenchScale,
        bench_campaign,
    )

    print("== campaign determinism smoke ==", flush=True)
    report = bench_campaign(
        BenchScale(device_scale=0.05, duration_days=14.0, interval_hours=12.0)
    )
    print(
        f"{report['experiments']} experiments | "
        f"serial {report['serial_exp_per_s']}/s | "
        f"parallel(x{report['workers']}) {report['parallel_exp_per_s']}/s | "
        f"sharded(x{report['workers']}/{report['shards']}) "
        f"{report['sharded_exp_per_s']}/s | "
        f"hash {report['dataset_hash'][:16]}…",
        flush=True,
    )
    if not report["hash_match"]:
        print(
            "FAIL: a multiprocess dataset hash differs from serial "
            "(parallel and/or sharded)",
            file=sys.stderr,
        )
        return 1
    print("determinism: OK (serial == parallel == sharded)")
    if report["dataset_hash"] != SMOKE_DATASET_SHA256:
        print(
            f"FAIL: fault-free smoke hash {report['dataset_hash'][:16]}… "
            f"drifted from the pinned golden "
            f"{SMOKE_DATASET_SHA256[:16]}… — the transport layer's "
            f"byte-identity contract is broken",
            file=sys.stderr,
        )
        return 1
    print("fault-free golden hash: OK")
    cores = os.cpu_count() or 1
    if report["sharded_s"] > report["serial_s"]:
        if cores >= 2:
            # Timing noise can only slow a leg down, so the best of a
            # few attempts is the honest reading: one clean win proves
            # the warm-pool executor earns its keep on this box.
            best = report
            for attempt in range(2, SHARDED_GATE_ATTEMPTS + 1):
                print(
                    f"note: sharded ({best['sharded_s']}s) slower than "
                    f"serial ({best['serial_s']}s) — re-measuring "
                    f"(attempt {attempt}/{SHARDED_GATE_ATTEMPTS})",
                    flush=True,
                )
                retry = bench_campaign(
                    BenchScale(
                        device_scale=0.05,
                        duration_days=14.0,
                        interval_hours=12.0,
                    )
                )
                if retry["sharded_speedup"] > best["sharded_speedup"]:
                    best = retry
                if best["sharded_s"] <= best["serial_s"]:
                    break
            if best["sharded_s"] > best["serial_s"]:
                print(
                    f"FAIL: sharded ({best['sharded_s']}s) stayed slower "
                    f"than serial ({best['serial_s']}s) on a {cores}-core "
                    f"box across {SHARDED_GATE_ATTEMPTS} attempts",
                    file=sys.stderr,
                )
                return 1
            report = best
        else:
            print(
                "note: multiprocess executors slower than serial on 1 core "
                "(expected; `--executor auto` runs serial here)"
            )
            return 0
    print(
        f"speedups on {cores} cores: "
        f"parallel {report['parallel_speedup']}x, "
        f"sharded {report['sharded_speedup']}x"
    )
    return 0


#: Multi-core sharded-vs-serial attempts before the smoke may fail.
#: Noise only ever slows a leg down, so the best attempt is what gates.
SHARDED_GATE_ATTEMPTS = 3


def run_workers_gate() -> int:
    """The warm worker-pool mechanics must actually pay off.

    Runs :func:`~repro.measure.bench.bench_workers` at the smoke scale
    and requires:

    * **snapshot beats rebuild** (hard failure): booting a worker world
      from the parent's snapshot must be faster than re-running
      ``build_world`` (both best-of-3) — otherwise the snapshot
      machinery is pure overhead;
    * **pool reuse** (hard failure): the second streaming run must have
      reused the first run's live pool;
    * **byte identity** (hard failure): the overlapped tailing merge
      and the wait-then-merge reference path must hash identically.

    The overlap advantage is reported but not gated — on small smokes
    it sits inside timer noise; ``BENCH_campaign.json`` carries the
    full-scale figure.
    """
    sys.path.insert(0, SRC)
    from repro.measure.bench import BenchScale, bench_workers

    print("== warm worker-pool gate ==", flush=True)
    report = bench_workers(
        BenchScale(device_scale=0.05, duration_days=14.0, interval_hours=12.0)
    )
    print(
        f"snapshot boot {report['snapshot_boot_us']}us vs rebuild "
        f"{report['rebuild_boot_us']}us ({report['snapshot_speedup']}x) | "
        f"ctx {report['mp_context']} | pools created "
        f"{report['pools_created']}, reused {report['pool_reuse_hits']} | "
        f"overlap advantage {report['overlap_advantage_s']}s | "
        f"hash match: {report['hash_match']}",
        flush=True,
    )
    if report["snapshot_bytes"] <= 0:
        print(
            "FAIL: no world snapshot was produced for a pristine world — "
            "workers are paying full rebuilds",
            file=sys.stderr,
        )
        return 1
    if report["snapshot_boot_us"] >= report["rebuild_boot_us"]:
        print(
            f"FAIL: snapshot boot ({report['snapshot_boot_us']}us) did not "
            f"beat world rebuild ({report['rebuild_boot_us']}us); the "
            f"snapshot bootstrap is pure overhead",
            file=sys.stderr,
        )
        return 1
    if report["pool_reuse_hits"] < 1:
        print(
            "FAIL: the second streaming run did not reuse the warm pool "
            f"(created {report['pools_created']}, reused "
            f"{report['pool_reuse_hits']})",
            file=sys.stderr,
        )
        return 1
    if not report["hash_match"]:
        print(
            "FAIL: overlapped tailing merge hashed differently from the "
            "wait-then-merge reference path",
            file=sys.stderr,
        )
        return 1
    print("workers gate: OK")
    return 0


#: Allowed us-per-call slack over the committed benchmark before the
#: gate fails, per probe stage (1.25 == a ≥25% regression fails).  The
#: dns stage runs the longest interval so its figure is the most
#: stable; ping and http intervals are a few hundred milliseconds, so
#: proportionally more box noise is absorbed before failing.
STAGE_REGRESSION_LIMITS = {
    "dns": 1.25,
    "ping": 1.5,
    "http": 1.5,
    "serialize": 1.5,
}


#: Stage-breakdown attempts before a pace gate may fail.  Timing noise
#: on a shared box (CPU steal) is strictly additive — a spike can only
#: make a stage *look* slower — so the minimum over attempts is the
#: robust statistic: one quiet reading proves the code path's pace, and
#: only a stage that stays over its limit across every attempt fails.
STAGE_GATE_ATTEMPTS = 3


def run_stage_gates() -> int:
    """Probe fast paths must stay near the committed benchmark, and the
    vectorized sampler must actually be in play.

    One stage-breakdown smoke feeds every check: per-stage us-per-call
    regression gates for dns/ping/http (re-measured up to
    ``STAGE_GATE_ATTEMPTS`` times, keeping per-stage minimums, so an
    unlucky CPU-steal window doesn't fail a healthy path), plus a
    sampler sanity gate — the campaign must have refilled draw pools at
    least once (pool counters all zero would mean the block-sampling
    layer silently stopped being exercised, e.g. every probe fell back
    to the scalar path).
    """
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_stage_breakdown

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping stage gates")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    stages = committed.get("stages", {})
    print("== probe fast-path gates ==", flush=True)
    report = bench_stage_breakdown()
    print(
        f"(dns split: cache-hit {report['dns_cache_hit_s']}s, "
        f"walk {report['dns_walk_s']}s, "
        f"cdn-select {report['dns_cdn_select_s']}s)",
        flush=True,
    )
    best = {
        stage: report[f"{stage}_us_per_call"]
        for stage in STAGE_REGRESSION_LIMITS
    }
    limits = {}
    for stage, slack in STAGE_REGRESSION_LIMITS.items():
        baseline = stages.get(f"{stage}_us_per_call")
        if not baseline:
            print(
                f"note: committed benchmark lacks {stage}_us_per_call; "
                f"skipping {stage} gate"
            )
            continue
        limits[stage] = baseline * slack
    attempts = 1
    while (
        any(best[stage] >= limit for stage, limit in limits.items())
        and attempts < STAGE_GATE_ATTEMPTS
    ):
        over = [s for s, lim in limits.items() if best[s] >= lim]
        print(
            f"note: {', '.join(over)} over limit on attempt {attempts} — "
            f"re-measuring (box noise is additive; the minimum counts)",
            flush=True,
        )
        retry = bench_stage_breakdown()
        for stage in best:
            value = retry[f"{stage}_us_per_call"]
            if value < best[stage]:
                best[stage] = value
        attempts += 1
    failed = False
    for stage, limit in limits.items():
        baseline = stages[f"{stage}_us_per_call"]
        measured = best[stage]
        print(
            f"{stage} {measured} us/call (best of {attempts}) | "
            f"committed {baseline} us/call | limit {round(limit, 1)}",
            flush=True,
        )
        if measured >= limit:
            slack = STAGE_REGRESSION_LIMITS[stage]
            print(
                f"FAIL: {stage}_us_per_call {measured} regressed "
                f">={round((slack - 1) * 100)}% over the committed "
                f"{baseline} (limit {round(limit, 1)}) across "
                f"{attempts} attempts",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    sampler = report.get("sampler")
    if not sampler or sampler.get("pool_refills", 0) <= 0:
        print(
            "FAIL: sampler pool counters report zero refills — the "
            "vectorized draw-pool layer was never exercised",
            file=sys.stderr,
        )
        return 1
    print(
        f"sampler: {sampler['pool_hits']} pool hits over "
        f"{sampler['pool_refills']} refills "
        f"({sampler['pool_realignments']} realignments)"
    )
    print("stage gates: OK")
    return 0


#: Allowed analysis us_per_record slack over the committed benchmark
#: (1.5 == a ≥50% regression fails; the regeneration interval is short,
#: so the gate leaves more room for box noise than the DNS gate).
ANALYSIS_REGRESSION_LIMIT = 1.5


def run_analysis_gate() -> int:
    """Fused analysis must stay byte-identical and near the committed pace."""
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_analysis

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping analysis gate")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    baseline = committed.get("analysis", {}).get("us_per_record")
    if not baseline:
        print(
            "note: committed benchmark lacks analysis.us_per_record; "
            "skipping analysis gate"
        )
        return 0
    print("== analysis fast-path gate ==", flush=True)
    report = bench_analysis()
    measured = report["us_per_record"]
    limit = baseline * ANALYSIS_REGRESSION_LIMIT
    print(
        f"analysis {measured} us/record over {report['experiments']} "
        f"experiments | committed {baseline} us/record | "
        f"limit {round(limit, 1)} | "
        f"regen speedup {report['regeneration_speedup']}x | "
        f"ingest speedup {report['load_speedup']}x | "
        f"byte identical: {report['byte_identical']}",
        flush=True,
    )
    if not report["byte_identical"]:
        print(
            "FAIL: fused analysis output diverged from the reference "
            "walks (byte identity broken)",
            file=sys.stderr,
        )
        return 1
    if measured >= limit:
        print(
            f"FAIL: analysis us_per_record {measured} regressed >=50% over "
            f"the committed {baseline} (limit {round(limit, 1)})",
            file=sys.stderr,
        )
        return 1
    print("analysis gate: OK")
    return 0


#: Allowed backend append/load us-per-record slack over the committed
#: ``bench_backends`` figures (1.5 == a ≥50% regression fails).  Only
#: the JSONL backend gates — it is the byte reference and the format
#: every existing golden pins; the alternate backends' figures are
#: informational until they grow goldens of their own.
BACKENDS_REGRESSION_LIMIT = 1.5

#: Backend-gate attempts: CPU-steal noise is additive, so per-metric
#: minimums over attempts are the robust statistic (same reasoning as
#: the stage gates).
BACKENDS_GATE_ATTEMPTS = 3


def run_backends_gate() -> int:
    """Storage backends must roundtrip hash-identically, and the JSONL
    reference writer must stay near its committed pace.

    Runs :func:`~repro.measure.bench.bench_backends` at the smoke scale
    and requires:

    * **hash identity** (hard failure): the dataset loaded back from
      every backend must reproduce the in-memory
      ``Dataset.content_hash`` — a backend that changes bytes is
      corrupting archives, whatever its speed;
    * **JSONL pace**: append and load us-per-record must stay within
      ``BACKENDS_REGRESSION_LIMIT`` of the committed ``bench_backends``
      figures (best-of-``BACKENDS_GATE_ATTEMPTS``), so the backend
      refactor can never quietly tax the historical serialize path.
    """
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_backends

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping backends gate")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    baselines = committed.get("bench_backends", {}).get("jsonl", {})
    print("== dataset backends gate ==", flush=True)
    report = bench_backends()
    print(
        " | ".join(
            f"{name} append {report[name]['append_us_per_record']}us/rec, "
            f"load {report[name]['load_us_per_record']}us/rec"
            for name in ("jsonl", "sqlite", "columnar")
            if name in report
        )
        + f" | hash match: {report['hash_match']}",
        flush=True,
    )
    if not report["hash_match"]:
        print(
            "FAIL: a backend roundtrip changed Dataset.content_hash — "
            "storage is corrupting archives",
            file=sys.stderr,
        )
        return 1
    limits = {}
    for metric in ("append_us_per_record", "load_us_per_record"):
        baseline = baselines.get(metric)
        if not baseline:
            print(
                f"note: committed benchmark lacks bench_backends.jsonl."
                f"{metric}; skipping its gate"
            )
            continue
        limits[metric] = baseline * BACKENDS_REGRESSION_LIMIT
    best = {metric: report["jsonl"][metric] for metric in limits}
    attempts = 1
    while (
        any(best[metric] >= limit for metric, limit in limits.items())
        and attempts < BACKENDS_GATE_ATTEMPTS
    ):
        over = [m for m, lim in limits.items() if best[m] >= lim]
        print(
            f"note: jsonl {', '.join(over)} over limit on attempt "
            f"{attempts} — re-measuring (noise is additive; the minimum "
            f"counts)",
            flush=True,
        )
        retry = bench_backends()
        if not retry["hash_match"]:
            print(
                "FAIL: a backend roundtrip changed Dataset.content_hash "
                "on re-measure",
                file=sys.stderr,
            )
            return 1
        for metric in best:
            best[metric] = min(best[metric], retry["jsonl"][metric])
        attempts += 1
    failed = False
    for metric, limit in limits.items():
        baseline = baselines[metric]
        measured = best[metric]
        print(
            f"jsonl {metric} {measured} (best of {attempts}) | "
            f"committed {baseline} | limit {round(limit, 1)}",
            flush=True,
        )
        if measured >= limit:
            print(
                f"FAIL: jsonl {metric} {measured} regressed >=50% over "
                f"the committed {baseline} (limit {round(limit, 1)}) "
                f"across {attempts} attempts",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("backends gate: OK")
    return 0


#: Pipeline-gate attempts before the advantage check may fail.  Box
#: noise can deflate the measured advantage (a steal spike in the
#: streaming leg), so the *maximum* over attempts is the robust
#: statistic — one quiet reading proves the pipeline's saving is real.
PIPELINE_GATE_ATTEMPTS = 3


def run_pipeline_gate() -> int:
    """The pipelined campaign→report must actually absorb the analysis
    ingest + scan cost it replaces.

    Runs :func:`~repro.measure.bench.bench_pipeline` at the default
    benchmark scale and requires

    * **byte identity** (hard failure): the streaming-merge report and
      archive hash must equal the post-hoc path's;
    * **advantage**: the streaming leg must beat campaign-then-report
      by at least the committed ``analysis.load_s + engine_scan_s`` —
      the re-read and re-scan the pipeline exists to eliminate.
    """
    sys.path.insert(0, SRC)
    from repro.measure.bench import bench_pipeline

    committed_path = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    if not os.path.exists(committed_path):
        print("note: no committed BENCH_campaign.json; skipping pipeline gate")
        return 0
    with open(committed_path) as handle:
        committed = json.load(handle)
    analysis = committed.get("analysis", {})
    load_s = analysis.get("load_s")
    engine_scan_s = analysis.get("engine_scan_s")
    if load_s is None or engine_scan_s is None:
        print(
            "note: committed benchmark lacks analysis.load_s / "
            "engine_scan_s; skipping pipeline gate"
        )
        return 0
    threshold = load_s + engine_scan_s
    print("== pipelined campaign→report gate ==", flush=True)
    best_advantage = float("-inf")
    for attempt in range(1, PIPELINE_GATE_ATTEMPTS + 1):
        report = bench_pipeline()
        print(
            f"attempt {attempt}: streaming {report['streaming_total_s']}s "
            f"vs post-hoc {report['posthoc_total_s']}s over "
            f"{report['experiments']} experiments | advantage "
            f"{report['pipeline_advantage_s']}s | byte identical: "
            f"{report['byte_identical']}",
            flush=True,
        )
        if not report["byte_identical"]:
            print(
                "FAIL: streaming-merge report or archive hash diverged "
                "from the post-hoc path (byte identity broken)",
                file=sys.stderr,
            )
            return 1
        best_advantage = max(best_advantage, report["pipeline_advantage_s"])
        if best_advantage >= threshold:
            break
    print(
        f"pipeline advantage {best_advantage}s (best of {attempt}) | "
        f"required >= {round(threshold, 4)}s "
        f"(committed analysis load {load_s}s + scan {engine_scan_s}s)",
        flush=True,
    )
    if best_advantage < threshold:
        print(
            f"FAIL: pipeline advantage {best_advantage}s never reached the "
            f"committed analysis ingest+scan cost {round(threshold, 4)}s "
            f"across {attempt} attempts — the streaming fold is not "
            f"absorbing the re-read it replaces",
            file=sys.stderr,
        )
        return 1
    print("pipeline gate: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="run only the determinism smoke",
    )
    args = parser.parse_args()
    if not args.skip_tests:
        status = run_tier1()
        if status != 0:
            return status
    status = run_bench_smoke()
    if status != 0:
        return status
    status = run_workers_gate()
    if status != 0:
        return status
    status = run_stage_gates()
    if status != 0:
        return status
    status = run_analysis_gate()
    if status != 0:
        return status
    status = run_backends_gate()
    if status != 0:
        return status
    return run_pipeline_gate()


if __name__ == "__main__":
    raise SystemExit(main())
